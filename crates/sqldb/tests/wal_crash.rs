//! Crash-consistency suite for the write-ahead log.
//!
//! The property under test: no matter where a crash lands — between
//! statements, in the middle of a frame write, or as byte-level truncation
//! of the log file — recovery yields exactly a *prefix* of the logged
//! statement sequence, and the recovered engine state is identical to a
//! fresh engine executing that same prefix. Zero partially-applied
//! statements, ever.
//!
//! The suite drives well over 50 distinct kill points (the ISSUE 3
//! acceptance floor) across four fault families:
//!
//! * clean crash after k frames ([`IoFailpoint::crash_after_frames`]),
//! * torn write at byte N ([`IoFailpoint::torn_write_after`]),
//! * byte-level truncation of a complete log (simulating a kernel that
//!   flushed only part of the tail page),
//! * a kill inside checkpoint, after the dump rename but before the log
//!   compaction ([`IoFailpoint::crash_before_compact`]) — the window where
//!   dump and log both hold every frame and a naive recovery would apply
//!   each statement twice.

use sqldb::cluster::{Cluster, LatencyModel};
use sqldb::{Engine, IoFailpoint, SyncPolicy, Wal, WalOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p =
            std::env::temp_dir().join(format!("perfbase_walcrash_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Tiny deterministic PRNG (xorshift64*) so kill points are randomized but
/// reproducible without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A deterministic import-like workload: DDL, indexed inserts (some with
/// text that needs escaped literals), updates, deletes, and a drop. Every
/// statement is durable, so the logged sequence equals this list exactly.
fn workload() -> Vec<String> {
    let mut stmts = vec![
        "CREATE TABLE runs (id INTEGER, tag TEXT, bw FLOAT)".to_string(),
        "CREATE INDEX IF NOT EXISTS ix_runs_id ON runs (id)".to_string(),
        "CREATE TABLE notes (run INTEGER, body TEXT)".to_string(),
    ];
    for i in 0..24i64 {
        stmts.push(format!(
            "INSERT INTO runs VALUES ({i}, 'fs{}', {}.5)",
            i % 3,
            100 + i
        ));
        if i % 5 == 0 {
            // Embedded newline, tab and quote: exercises E'…' literals on
            // the replay path.
            stmts.push(format!(
                "INSERT INTO notes VALUES ({i}, E'line1\\nit''s\\ttabbed')"
            ));
        }
        if i % 7 == 3 {
            stmts.push(format!(
                "UPDATE runs SET bw = bw + 1.0 WHERE id = {}",
                i / 2
            ));
        }
        if i % 9 == 4 {
            stmts.push(format!("DELETE FROM notes WHERE run = {}", i - 4));
        }
    }
    stmts.push("DROP TABLE notes".to_string());
    stmts
}

/// Recover `wal_path` and assert the core crash-consistency property:
/// the surviving statements are exactly `full_log[..n]` for some n, and
/// replaying them reaches the same state as executing that prefix on a
/// fresh engine. Returns the recovered prefix length.
fn recover_and_check(wal_path: &Path, full_log: &[String]) -> usize {
    let (wal, stmts, report) = Wal::open_recover(wal_path, WalOptions::default()).unwrap();
    drop(wal);
    assert_eq!(stmts.len() as u64, report.frames_replayed);
    assert!(
        stmts.len() <= full_log.len(),
        "recovered {} statements from a {}-statement workload",
        stmts.len(),
        full_log.len()
    );
    assert_eq!(
        stmts[..],
        full_log[..stmts.len()],
        "recovered log must be an exact prefix of the written sequence"
    );

    let replayed = Engine::new();
    for s in &stmts {
        replayed.execute(s).unwrap();
    }
    let reference = Engine::new();
    for s in &full_log[..stmts.len()] {
        reference.execute(s).unwrap();
    }
    assert_eq!(
        replayed.dump_sql(),
        reference.dump_sql(),
        "recovered state must equal a fresh prefix execution"
    );
    stmts.len()
}

/// Apply the workload through an engine whose WAL is armed with `fp`,
/// stopping at the first simulated-crash error (as a dying process would).
fn run_until_crash(wal_path: &Path, fp: Arc<IoFailpoint>, full_log: &[String]) {
    let opts = WalOptions {
        sync: SyncPolicy::Always,
        failpoint: fp,
    };
    let wal = Wal::create(wal_path, opts, 1).unwrap();
    let eng = Engine::new();
    eng.attach_wal(wal);
    for s in full_log {
        if let Err(e) = eng.execute(s) {
            assert!(e.to_string().contains("simulated crash"), "{e}");
            break;
        }
    }
    // The "process" dies here: the engine and its WAL are dropped with
    // whatever the fault left on disk.
}

#[test]
fn fifty_plus_randomized_kill_points_recover_a_consistent_prefix() {
    let dir = TempDir::new("killpoints");
    let full_log = workload();
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    let mut kill_points = 0usize;

    // Family 1: clean crash after k frames. Recovery must surface exactly
    // the k statements that made it to the log.
    for k in (0..full_log.len() as u64).step_by(2) {
        let wal_path = dir.path(&format!("frames_{k}.wal"));
        run_until_crash(
            &wal_path,
            Arc::new(IoFailpoint::crash_after_frames(k)),
            &full_log,
        );
        let n = recover_and_check(&wal_path, &full_log);
        assert_eq!(
            n as u64, k,
            "with sync=always, every appended frame survives"
        );
        kill_points += 1;
    }

    // A clean full run, as the reference for byte-level faults.
    let master = dir.path("master.wal");
    run_until_crash(&master, Arc::new(IoFailpoint::none()), &full_log);
    let master_bytes = std::fs::read(&master).unwrap();
    assert_eq!(recover_and_check(&master, &full_log), full_log.len());
    let len = master_bytes.len() as u64;

    // Family 2: torn write at a randomized byte budget. The append that
    // crosses the budget leaves a partial frame; recovery truncates it.
    for i in 0..20 {
        let budget = 17 + rng.below(len - 17);
        let wal_path = dir.path(&format!("torn_{i}.wal"));
        run_until_crash(
            &wal_path,
            Arc::new(IoFailpoint::torn_write_after(budget)),
            &full_log,
        );
        recover_and_check(&wal_path, &full_log);
        kill_points += 1;
    }

    // Family 3: byte-level truncation of the complete log — including
    // mid-header cuts (t < 16), which must rebuild an empty log rather
    // than error.
    for i in 0..25 {
        let t = rng.below(len + 1) as usize;
        let wal_path = dir.path(&format!("trunc_{i}.wal"));
        std::fs::write(&wal_path, &master_bytes[..t]).unwrap();
        recover_and_check(&wal_path, &full_log);
        kill_points += 1;
    }

    assert!(
        kill_points >= 50,
        "only {kill_points} kill points exercised"
    );
}

/// The checkpoint kill point: `Engine::checkpoint` renames the new dump
/// into place and only then compacts the log. A crash in between leaves
/// dump AND log both holding every frame — recovery must skip the frames
/// the dump's recorded checkpoint sequence already covers instead of
/// double-applying them (every INSERT would otherwise be duplicated).
#[test]
fn kill_between_checkpoint_dump_and_compaction_never_double_applies() {
    let dir = TempDir::new("ckptkill");
    let full_log = workload();

    for (i, k) in [1usize, 3, 7, 12, 20, full_log.len()]
        .into_iter()
        .enumerate()
    {
        let dump = dir.path(&format!("ckpt_{i}.sql"));
        let wal_path = dir.path(&format!("ckpt_{i}.wal"));
        let fp = Arc::new(IoFailpoint::crash_before_compact());
        let opts = WalOptions {
            sync: SyncPolicy::Always,
            failpoint: fp.clone(),
        };
        let (eng, _) = Engine::open_durable(&dump, &wal_path, opts).unwrap();
        for s in &full_log[..k] {
            eng.execute(s).unwrap();
        }
        let err = eng.checkpoint(&dump).unwrap_err();
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(
            fp.is_crashed(),
            "checkpoint kill point must trip the failpoint"
        );
        drop(eng);

        // Restart: the dump reflects all k statements and the log still
        // holds all k frames — each statement must be applied exactly once.
        let (eng2, report) =
            Engine::open_durable(&dump, &wal_path, WalOptions::with_sync(SyncPolicy::Always))
                .unwrap();
        assert_eq!(
            report.frames_skipped, k as u64,
            "every logged frame is already in the dump"
        );
        assert_eq!(report.frames_replayed, 0, "nothing left to replay");
        assert_eq!(
            report.replay_errors, 0,
            "skipped frames must not even be attempted"
        );
        let reference = Engine::new();
        for s in &full_log[..k] {
            reference.execute(s).unwrap();
        }
        assert_eq!(
            eng2.dump_sql(),
            reference.dump_sql(),
            "checkpoint kill point k={k}"
        );
    }
}

/// After a checkpoint kill, the database keeps working: the stale log
/// segment is skipped on open, new writes append behind it, and the next
/// clean checkpoint folds everything and compacts the log for real.
#[test]
fn recovery_after_checkpoint_kill_continues_the_log() {
    let dir = TempDir::new("ckptresume");
    let full_log = workload();
    let dump = dir.path("db.sql");
    let wal_path = dir.path("db.wal");
    let half = full_log.len() / 2;

    let fp = Arc::new(IoFailpoint::crash_before_compact());
    let opts = WalOptions {
        sync: SyncPolicy::Always,
        failpoint: fp,
    };
    let (eng, _) = Engine::open_durable(&dump, &wal_path, opts).unwrap();
    for s in &full_log[..half] {
        eng.execute(s).unwrap();
    }
    assert!(eng.checkpoint(&dump).is_err(), "armed kill point must fire");
    drop(eng);

    // Restart, finish the workload, checkpoint cleanly this time.
    let (eng2, report) =
        Engine::open_durable(&dump, &wal_path, WalOptions::with_sync(SyncPolicy::Always)).unwrap();
    assert_eq!(report.frames_skipped, half as u64);
    for s in &full_log[half..] {
        eng2.execute(s).unwrap();
    }
    eng2.checkpoint(&dump).unwrap();
    drop(eng2);

    let (eng3, report) =
        Engine::open_durable(&dump, &wal_path, WalOptions::with_sync(SyncPolicy::Always)).unwrap();
    assert_eq!(
        report.frames_skipped, 0,
        "clean checkpoint compacted the log"
    );
    assert_eq!(report.frames_replayed, 0);
    let reference = Engine::new();
    for s in &full_log {
        reference.execute(s).unwrap();
    }
    assert_eq!(eng3.dump_sql(), reference.dump_sql());
}

#[test]
fn short_reads_during_recovery_are_torn_tails_not_errors() {
    let dir = TempDir::new("shortread");
    let full_log = workload();
    let master = dir.path("master.wal");
    run_until_crash(&master, Arc::new(IoFailpoint::none()), &full_log);
    let len = std::fs::metadata(&master).unwrap().len();

    let mut rng = Rng(0x5eed_cafe_f00d_0002);
    for i in 0..8 {
        let budget = 16 + rng.below(len - 16);
        let wal_path = dir.path(&format!("sr_{i}.wal"));
        std::fs::copy(&master, &wal_path).unwrap();
        let opts = WalOptions {
            sync: SyncPolicy::Always,
            failpoint: Arc::new(IoFailpoint::short_read_after(budget)),
        };
        let (wal, stmts, _) = Wal::open_recover(&wal_path, opts).unwrap();
        drop(wal);
        assert!(stmts.len() <= full_log.len());
        assert_eq!(stmts[..], full_log[..stmts.len()]);
    }
}

/// An import-like workload against a columnar table: the `USING COLUMNAR`
/// DDL, inserts with NULL cells (null bitmaps), repeated tags (dictionary
/// codes), and updates/deletes that rewrite the typed vectors in place.
fn columnar_workload() -> Vec<String> {
    let mut stmts = vec![
        "CREATE TABLE runs (id INTEGER, tag TEXT, bw FLOAT) USING COLUMNAR".to_string(),
        "CREATE INDEX IF NOT EXISTS ix_runs_tag ON runs (tag)".to_string(),
    ];
    for i in 0..20i64 {
        stmts.push(format!(
            "INSERT INTO runs VALUES ({i}, 'fs{}', {}.25)",
            i % 3,
            50 + i
        ));
        if i % 4 == 1 {
            stmts.push(format!("INSERT INTO runs VALUES ({i}, NULL, NULL)"));
        }
        if i % 6 == 3 {
            stmts.push(format!(
                "UPDATE runs SET bw = bw * 2.0 WHERE id = {}",
                i / 2
            ));
        }
        if i % 8 == 5 {
            stmts.push(format!("DELETE FROM runs WHERE id = {}", i - 5));
        }
    }
    stmts
}

/// Columnar tables ride the same WAL frames as row tables (the `USING
/// COLUMNAR` DDL is logged verbatim), so every crash family must recover a
/// consistent prefix here too — and the recovered table must still be
/// columnar, with the vectorized path live.
#[test]
fn columnar_tables_survive_kill_points_and_checkpoint_kill() {
    let dir = TempDir::new("columnar");
    let full_log = columnar_workload();
    let mut rng = Rng(0x5eed_cafe_f00d_0003);

    // Clean crash after k frames.
    for k in (0..full_log.len() as u64).step_by(3) {
        let wal_path = dir.path(&format!("col_frames_{k}.wal"));
        run_until_crash(
            &wal_path,
            Arc::new(IoFailpoint::crash_after_frames(k)),
            &full_log,
        );
        assert_eq!(recover_and_check(&wal_path, &full_log) as u64, k);
    }

    // Clean full run as the byte-fault reference, then torn writes.
    let master = dir.path("col_master.wal");
    run_until_crash(&master, Arc::new(IoFailpoint::none()), &full_log);
    assert_eq!(recover_and_check(&master, &full_log), full_log.len());
    let len = std::fs::metadata(&master).unwrap().len();
    for i in 0..10 {
        let budget = 17 + rng.below(len - 17);
        let wal_path = dir.path(&format!("col_torn_{i}.wal"));
        run_until_crash(
            &wal_path,
            Arc::new(IoFailpoint::torn_write_after(budget)),
            &full_log,
        );
        recover_and_check(&wal_path, &full_log);
    }

    // The recovered table keeps its layout: the dump re-emits the clause
    // and EXPLAIN still reports the vectorized columnar path.
    let (wal, stmts, _) = Wal::open_recover(&master, WalOptions::default()).unwrap();
    drop(wal);
    let eng = Engine::new();
    for s in &stmts {
        eng.execute(s).unwrap();
    }
    assert!(eng.dump_sql().contains("USING COLUMNAR"));
    let plan = eng
        .query("EXPLAIN SELECT tag, count(*) FROM runs GROUP BY tag")
        .unwrap();
    let text = plan
        .rows()
        .iter()
        .map(|r| r[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("layout=columnar"), "{text}");

    // Checkpoint kill between the dump rename and the log compaction:
    // every frame is both in the dump and in the log, and must be applied
    // exactly once on restart.
    let dump = dir.path("col_ckpt.sql");
    let wal_path = dir.path("col_ckpt.wal");
    let opts = WalOptions {
        sync: SyncPolicy::Always,
        failpoint: Arc::new(IoFailpoint::crash_before_compact()),
    };
    let (eng, _) = Engine::open_durable(&dump, &wal_path, opts).unwrap();
    for s in &full_log {
        eng.execute(s).unwrap();
    }
    assert!(eng.checkpoint(&dump).is_err(), "armed kill point must fire");
    drop(eng);
    let (eng2, report) =
        Engine::open_durable(&dump, &wal_path, WalOptions::with_sync(SyncPolicy::Always)).unwrap();
    assert_eq!(report.frames_skipped, full_log.len() as u64);
    assert_eq!(report.frames_replayed, 0);
    let reference = Engine::new();
    for s in &full_log {
        reference.execute(s).unwrap();
    }
    assert_eq!(eng2.dump_sql(), reference.dump_sql());
}

/// Prefix property at the cluster level: each node keeps its own log, and
/// a torn tail on one node must not disturb the others. Exercised at the
/// 1-, 2- and 4-node sizes named by the issue.
#[test]
fn cluster_recovery_at_1_2_4_nodes() {
    for nodes in [1usize, 2, 4] {
        let dir = TempDir::new(&format!("cluster{nodes}"));
        let opts = WalOptions::with_sync(SyncPolicy::Always);

        let c = Cluster::new(nodes, LatencyModel::none());
        c.attach_wal_dir(&dir.0, &opts).unwrap();
        for i in 0..nodes {
            let eng = &c.node(i).engine;
            eng.execute("CREATE TABLE t (x INTEGER, s TEXT)").unwrap();
            for r in 0..=i as i64 {
                eng.execute(&format!("INSERT INTO t VALUES ({r}, 'node{i}')"))
                    .unwrap();
            }
        }
        drop(c);

        // Tear the last node's log mid-tail: it loses its final insert but
        // must still recover cleanly; other nodes recover everything.
        let victim = nodes - 1;
        let victim_wal = dir.path(&format!("node{victim}.wal"));
        let wal_len = std::fs::metadata(&victim_wal).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&victim_wal)
            .unwrap();
        f.set_len(wal_len - 3).unwrap();
        drop(f);

        let c2 = Cluster::new(nodes, LatencyModel::none());
        let reports = c2.attach_wal_dir(&dir.0, &opts).unwrap();
        for (i, r) in reports.iter().enumerate() {
            let r = r.as_ref().unwrap();
            let expect = if i == victim {
                i as u64 + 1
            } else {
                i as u64 + 2
            };
            assert_eq!(r.frames_replayed, expect, "node {i} of {nodes}");
            if i == victim {
                assert!(r.torn_bytes > 0, "victim must report the torn tail");
            }
        }
        for i in 0..nodes {
            let expect = if i == victim { i as i64 } else { i as i64 + 1 };
            let rs = c2.node(i).engine.query("SELECT count(*) FROM t").unwrap();
            assert_eq!(
                format!("{}", rs.rows()[0][0]),
                format!("{expect}"),
                "node {i} of {nodes}"
            );
        }
    }
}
