//! Shared deterministic generator for the randomized test suites.
//!
//! Replaces the former proptest dependency: each test draws a few hundred
//! random cases from a seeded splitmix64 stream, so failures reproduce
//! exactly and the suite runs offline.

// Shared by several test binaries; not every binary uses every helper.
#![allow(dead_code)]

pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn float(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Random string of `len` chars drawn from `alphabet`.
    pub fn string_from(&mut self, alphabet: &[u8], len: usize) -> String {
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize] as char)
            .collect()
    }

    /// Printable-ASCII string with length in `[0, max_len]`.
    pub fn printable(&mut self, max_len: usize) -> String {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len)
            .map(|_| (b' ' + self.below(95) as u8) as char)
            .collect()
    }
}
