//! Chaos suite for shard replication and failover (ISSUE 8).
//!
//! The property under test: a replica is always a *prefix-consistent* copy
//! of its primary at a known WAL sequence number, no matter where a node
//! death lands — mid-shipment, mid-compaction, or mid-promotion. After
//! every failover the promoted replica's state is byte-identical
//! (`dump_sql`) to a fresh engine executing exactly the statements the
//! primary shipped before dying.
//!
//! Kill points exercised (all whole-node kills via the per-node
//! [`IoFailpoint`] the cluster owns):
//!
//! * primary killed mid-shipment after k frames
//!   ([`IoFailpoint::arm_ship_kill`]), for a sweep of k;
//! * primary killed mid-compaction, between the checkpoint dump rename
//!   and the log truncation ([`IoFailpoint::arm_compact_kill`]);
//! * the most-caught-up replica killed while replaying its unapplied tail
//!   during promotion ([`IoFailpoint::arm_promotion_kill`]) — failover
//!   must fall back to the next candidate.
//!
//! Plus the satellite regression: frames buffered under the lag budget
//! must survive a checkpoint — the pre-compaction barrier ships and
//! applies them *before* compaction drops them from the log.

use sqldb::cluster::{Cluster, LatencyModel};
use sqldb::{Engine, ReplOptions, Replicator, SyncPolicy};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p =
            std::env::temp_dir().join(format!("perfbase_replchaos_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A deterministic import-like workload: DDL, an index, inserts (some with
/// escaped text), updates and deletes — every statement appends exactly
/// one WAL frame, so frame seq n is statement n.
fn workload() -> Vec<String> {
    let mut stmts = vec![
        "CREATE TABLE runs (id INTEGER, tag TEXT, bw FLOAT)".to_string(),
        "CREATE INDEX IF NOT EXISTS ix_runs_id ON runs (id)".to_string(),
    ];
    for i in 0..20i64 {
        stmts.push(format!(
            "INSERT INTO runs VALUES ({i}, 'fs{}', {}.5)",
            i % 3,
            100 + i
        ));
        if i % 5 == 2 {
            stmts.push(format!(
                "INSERT INTO runs VALUES ({i}, E'it''s\\ttag', NULL)"
            ));
        }
        if i % 7 == 3 {
            stmts.push(format!(
                "UPDATE runs SET bw = bw + 1.0 WHERE id = {}",
                i / 2
            ));
        }
        if i % 9 == 4 {
            stmts.push(format!("DELETE FROM runs WHERE id = {}", i - 4));
        }
    }
    stmts
}

/// A cluster with one WAL per node, each wired to that node's own kill
/// switch, plus a replicator over it.
fn repl_cluster(dir: &TempDir, nodes: usize, opts: ReplOptions) -> (Arc<Cluster>, Arc<Replicator>) {
    let cluster = Arc::new(Cluster::new(nodes, LatencyModel::none()));
    cluster
        .attach_wal_dir_with(&dir.0, |i| cluster.node_wal_options(i, SyncPolicy::Off))
        .unwrap();
    let repl = Replicator::attach(&cluster, opts);
    (cluster, repl)
}

/// The reference state for a shipped prefix: a fresh engine executing
/// exactly `full_log[..n]`.
fn reference_dump(full_log: &[String], n: usize) -> String {
    let eng = Engine::new();
    for s in &full_log[..n] {
        eng.execute(s).unwrap();
    }
    eng.dump_sql()
}

/// Baseline sanity: with commits flowing, a replica is a byte-identical
/// copy of its primary, and reads round-robin across both.
#[test]
fn committed_frames_replicate_byte_identically() {
    let dir = TempDir::new("baseline");
    let (cluster, repl) = repl_cluster(&dir, 4, ReplOptions::default());
    let full_log = workload();

    let primary = &cluster.node(1).engine;
    for (i, s) in full_log.iter().enumerate() {
        primary.execute(s).unwrap();
        if i % 3 == 2 {
            primary.wal_sync().unwrap();
        }
    }
    primary.wal_sync().unwrap();

    assert_eq!(
        cluster.node(2).engine.dump_sql(),
        primary.dump_sql(),
        "replica must be byte-identical to its primary after commit"
    );
    let rep = repl.report();
    assert_eq!(rep.frames_shipped, full_log.len() as u64);
    assert_eq!(rep.frames_applied, full_log.len() as u64);
}

/// Satellite regression: frames buffered below the lag budget must not be
/// lost when the primary checkpoints. The pre-compaction barrier ships
/// and applies them before the log is truncated.
#[test]
fn compaction_barrier_ships_pending_frames_before_truncation() {
    let dir = TempDir::new("compactbarrier");
    let (cluster, repl) = repl_cluster(
        &dir,
        4,
        ReplOptions {
            replicas: 1,
            lag_budget: 1000, // nothing ships on its own
        },
    );
    let full_log = workload();
    let primary = &cluster.node(1).engine;
    for s in &full_log {
        primary.execute(s).unwrap();
    }
    // Every frame is still pending: nothing shipped, nothing applied.
    assert_eq!(repl.report().frames_shipped, 0);

    // Checkpoint compacts the log. Without the barrier these frames would
    // vanish from the log *and* from the replica's future.
    let dropped = primary.checkpoint(&dir.0.join("node1.sql")).unwrap();
    assert_eq!(dropped, full_log.len() as u64);
    assert_eq!(primary.wal_frames(), 0, "log must be compacted");

    let rep = repl.report();
    assert!(rep.compact_barriers >= 1, "{rep:?}");
    assert_eq!(rep.frames_shipped, full_log.len() as u64);
    assert_eq!(rep.frames_applied, full_log.len() as u64);
    assert_eq!(
        cluster.node(2).engine.dump_sql(),
        reference_dump(&full_log, full_log.len()),
        "compaction must not drop frames the replica never saw"
    );
}

/// Kill the primary mid-shipment after k frames, for a sweep of k. The
/// promoted replica must equal a fresh engine executing exactly the
/// k-statement shipped prefix — never a torn or reordered state.
#[test]
fn kill_primary_mid_shipment_promotes_the_shipped_prefix() {
    let full_log = workload();
    for k in [0usize, 1, 2, 5, 9, 17, full_log.len() - 1] {
        let dir = TempDir::new(&format!("shipkill{k}"));
        let (cluster, repl) = repl_cluster(
            &dir,
            4,
            ReplOptions {
                replicas: 1,
                lag_budget: 1, // ship every frame as it is appended
            },
        );
        cluster.node_failpoint(1).arm_ship_kill(k as u64);

        let primary = &cluster.node(1).engine;
        for s in &full_log {
            if let Err(e) = primary.execute(s) {
                assert!(e.to_string().contains("simulated crash"), "{e}");
                break;
            }
        }
        assert!(!cluster.node_alive(1), "ship kill must trip the node");

        let p = repl.promote(&cluster, 1).unwrap();
        assert_eq!((p.dead, p.promoted), (1, 2), "k={k}");
        assert_eq!(p.applied_seq, k as u64, "k={k}");
        assert_eq!(
            cluster.node(2).engine.dump_sql(),
            reference_dump(&full_log, k),
            "promoted replica must equal the shipped prefix, k={k}"
        );
        // The dead node serves nothing; the promoted one serves its shard.
        assert!(cluster.fetch(1, 0, "SELECT count(*) FROM runs").is_err());
        assert_eq!(repl.report().failovers, 1);
    }
}

/// Kill the primary mid-compaction (between the checkpoint dump rename and
/// the log truncation). Everything committed before the checkpoint has
/// already crossed the commit barrier, so failover loses nothing.
#[test]
fn kill_primary_mid_compaction_loses_no_committed_frames() {
    let dir = TempDir::new("compactkill");
    let (cluster, repl) = repl_cluster(&dir, 4, ReplOptions::default());
    let full_log = workload();
    let primary = &cluster.node(1).engine;
    for s in &full_log {
        primary.execute(s).unwrap();
    }
    primary.wal_sync().unwrap();

    cluster.node_failpoint(1).arm_compact_kill();
    let err = primary.checkpoint(&dir.0.join("node1.sql")).unwrap_err();
    assert!(err.to_string().contains("simulated crash"), "{err}");
    assert!(!cluster.node_alive(1), "compact kill must trip the node");

    let p = repl.promote(&cluster, 1).unwrap();
    assert_eq!(p.promoted, 2);
    assert_eq!(p.frames_replayed, 0, "commit barrier already applied all");
    assert_eq!(
        cluster.node(2).engine.dump_sql(),
        reference_dump(&full_log, full_log.len()),
        "no committed frame may be lost to a mid-compaction kill"
    );
}

/// Kill the most-caught-up replica while it replays its unapplied tail
/// during promotion: failover must skip the dead candidate and promote
/// the next one, which replays the same tail successfully.
#[test]
fn kill_candidate_mid_promotion_falls_back_to_next_replica() {
    let dir = TempDir::new("promokill");
    let (cluster, repl) = repl_cluster(
        &dir,
        5, // 4 backends: node 1's replicas are nodes 2 and 3
        ReplOptions {
            replicas: 2,
            lag_budget: 1,
        },
    );
    let full_log = workload();
    let primary = &cluster.node(1).engine;
    for s in &full_log {
        primary.execute(s).unwrap();
    }
    // No commit: both replicas hold the full tail shipped-but-unapplied.
    let stream = repl.stream(1).unwrap();
    assert_eq!(stream.replica_node_ids(), vec![2, 3]);
    let (shipped, applied) = stream.replica_progress(2).unwrap();
    assert_eq!((shipped, applied), (full_log.len() as u64, 0));

    cluster.kill_node(1);
    cluster.node_failpoint(2).arm_promotion_kill();
    let p = repl.promote(&cluster, 1).unwrap();
    assert_eq!(p.promoted, 3, "first candidate died, second must win");
    assert_eq!(p.frames_replayed, full_log.len() as u64);
    assert!(!cluster.node_alive(2), "the armed candidate is dead");
    assert_eq!(
        cluster.node(3).engine.dump_sql(),
        reference_dump(&full_log, full_log.len()),
        "fallback candidate must replay the identical tail"
    );

    // With the whole replica set gone, promotion reports failure loudly.
    cluster.kill_node(3);
    assert!(repl.promote(&cluster, 1).is_err());
}

/// Multiple primaries shipping concurrently (each backend is both a
/// primary for its shard and a replica for its neighbor) must not
/// deadlock or cross streams: each replica ends byte-identical to its own
/// primary.
#[test]
fn every_backend_ships_its_own_stream_without_interference() {
    let dir = TempDir::new("allprimaries");
    let (cluster, repl) = repl_cluster(&dir, 4, ReplOptions::default());

    for node in 1..4usize {
        let eng = &cluster.node(node).engine;
        eng.execute(&format!("CREATE TABLE shard_{node} (x INTEGER, s TEXT)"))
            .unwrap();
        for r in 0..6i64 {
            eng.execute(&format!("INSERT INTO shard_{node} VALUES ({r}, 'n{node}')"))
                .unwrap();
        }
        eng.wal_sync().unwrap();
    }

    // Ring replica of node n is node (n % 3) + 1; each replica holds its
    // primary's shard table alongside its own.
    for node in 1..4usize {
        let replica = (node % 3) + 1;
        let rs = cluster
            .node(replica)
            .engine
            .query(&format!("SELECT count(*) FROM shard_{node}"))
            .unwrap();
        assert_eq!(format!("{}", rs.rows()[0][0]), "6", "replica of {node}");
    }
    let rep = repl.report();
    assert_eq!(rep.frames_shipped, rep.frames_applied);
    assert_eq!(rep.frames_shipped, 3 * 7);
}
