//! Equivalence between the optimized pipeline (`Engine::query`: compiled
//! expressions, streaming scans, index point lookups, hash joins, parallel
//! segments) and the reference pipeline (`Engine::query_reference`:
//! snapshots, interpreted evaluation, nested-loop joins).
//!
//! Both must return byte-identical result sets — same rows, same order —
//! for every query the engine accepts. Tables stay below the parallel-scan
//! threshold except in the dedicated large-table tests, so comparisons are
//! exact (parallel float aggregation may differ in the last ulp).

mod common;

use common::Rng;
use sqldb::{Engine, ResultSet, Value};

const FS_NAMES: [&str; 4] = ["ufs", "nfs", "pvfs", "unknown"];

/// Index setup for the randomized `runs` table.
#[derive(Clone, Copy, PartialEq)]
enum Ix {
    None,
    Hash,
    Ordered,
}

/// Engine with a randomized `runs` table (and an index on `run_index` per
/// `ix`), plus a small `hosts` table for joins.
fn random_engine(rng: &mut Rng, rows: usize, ix: Ix) -> Engine {
    let e = Engine::new();
    e.execute("CREATE TABLE runs (run_index INTEGER, fs TEXT, nodes INTEGER, bw FLOAT)")
        .unwrap();
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let null_slot = rng.below(8); // sprinkle NULLs across all columns
        data.push(vec![
            if null_slot == 0 {
                Value::Null
            } else {
                Value::Int(rng.int(0, 20))
            },
            if null_slot == 1 {
                Value::Null
            } else {
                Value::Text(FS_NAMES[rng.below(4) as usize].to_string())
            },
            if null_slot == 2 {
                Value::Null
            } else {
                Value::Int(1 << rng.below(5))
            },
            if null_slot == 3 {
                Value::Null
            } else {
                Value::Float(rng.float(0.0, 1000.0))
            },
        ]);
    }
    e.insert_rows("runs", data).unwrap();
    match ix {
        Ix::None => {}
        Ix::Hash => {
            e.execute("CREATE INDEX ix_eq_run_index ON runs (run_index)")
                .unwrap();
        }
        Ix::Ordered => {
            e.execute("CREATE ORDERED INDEX ix_eq_run_index ON runs (run_index)")
                .unwrap();
        }
    }
    e.execute("CREATE TABLE hosts (node_id INTEGER, rack TEXT)")
        .unwrap();
    let hosts: Vec<Vec<Value>> = (0..6)
        .map(|i| vec![Value::Int(1 << i), Value::Text(format!("rack{}", i % 3))])
        .collect();
    e.insert_rows("hosts", hosts).unwrap();
    e
}

fn assert_equivalent(e: &Engine, sql: &str) {
    let optimized: Result<ResultSet, _> = e.query(sql);
    let reference: Result<ResultSet, _> = e.query_reference(sql);
    match (optimized, reference) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "result mismatch on: {sql}"),
        (Err(a), Err(b)) => assert_eq!(a, b, "error mismatch on: {sql}"),
        (a, b) => panic!("outcome mismatch on {sql}: optimized={a:?} reference={b:?}"),
    }
}

/// Query shapes covering every optimized code path: point lookups,
/// compiled filters, projections, fast and general aggregation, DISTINCT,
/// ORDER BY, LIMIT.
fn query_corpus(rng: &mut Rng) -> Vec<String> {
    let k = rng.int(0, 20);
    let b = rng.float(0.0, 1000.0);
    vec![
        format!("SELECT * FROM runs WHERE run_index = {k}"),
        format!("SELECT * FROM runs WHERE {k} = run_index"),
        format!("SELECT fs, bw FROM runs WHERE run_index = {k} AND bw > {b:.3}"),
        format!("SELECT * FROM runs WHERE run_index = {k} OR bw > {b:.3}"),
        format!("SELECT count(*), avg(bw), min(bw), max(bw) FROM runs WHERE run_index = {k}"),
        format!("SELECT run_index, bw * 2 + 1 FROM runs WHERE bw > {b:.3} ORDER BY 2 DESC"),
        "SELECT fs, count(*), sum(bw) FROM runs GROUP BY fs ORDER BY fs".to_string(),
        "SELECT fs, nodes, avg(bw) FROM runs GROUP BY fs, nodes ORDER BY fs, nodes".to_string(),
        format!("SELECT fs, avg(bw) + 1 FROM runs WHERE nodes >= 4 GROUP BY fs ORDER BY fs"),
        "SELECT DISTINCT fs, nodes FROM runs ORDER BY fs, nodes LIMIT 7".to_string(),
        "SELECT DISTINCT bw FROM runs".to_string(),
        format!("SELECT upper(fs), abs(bw - {b:.3}) FROM runs WHERE fs IS NOT NULL LIMIT 11"),
        "SELECT * FROM runs WHERE fs LIKE 'u%' ORDER BY run_index, bw".to_string(),
        format!("SELECT * FROM runs WHERE nodes IN (1, 4, 16) AND run_index <> {k}"),
        "SELECT count(*) FROM runs WHERE fs = 'ufs' AND NOT (nodes = 2)".to_string(),
        "SELECT stddev(bw), variance(bw), median(bw) FROM runs".to_string(),
        format!("SELECT run_index FROM runs WHERE run_index = {k} LIMIT 2"),
        "SELECT run_index + nodes FROM runs WHERE bw IS NULL".to_string(),
        // IN lists and range conjuncts: served by the ordered index when one
        // exists, by the compiled scan otherwise — results must not differ.
        format!(
            "SELECT * FROM runs WHERE run_index IN ({k}, {}, 99)",
            rng.int(0, 20)
        ),
        format!("SELECT * FROM runs WHERE run_index IN ({k}, {k}, NULL)"),
        format!("SELECT count(*) FROM runs WHERE run_index NOT IN ({k}, 3)"),
        format!(
            "SELECT * FROM runs WHERE run_index >= {} AND run_index < {}",
            k / 2,
            k + 4
        ),
        format!("SELECT * FROM runs WHERE {k} > run_index"),
        format!("SELECT fs, sum(bw) FROM runs WHERE run_index > {k} GROUP BY fs ORDER BY fs"),
        format!(
            "SELECT * FROM runs WHERE run_index > {} AND run_index < {}",
            k + 4,
            k / 2
        ),
        format!("SELECT * FROM runs WHERE run_index <= {k} AND bw > {b:.3}"),
        "SELECT * FROM runs WHERE run_index < NULL".to_string(),
        "SELECT * FROM runs WHERE run_index < 'text'".to_string(),
    ]
}

#[test]
fn randomized_single_table_equivalence() {
    let mut rng = Rng::new(0xE051);
    for round in 0..24 {
        let rows = rng.int(0, 120) as usize;
        let ix = [Ix::None, Ix::Hash, Ix::Ordered][round % 3];
        let e = random_engine(&mut rng, rows, ix);
        for sql in query_corpus(&mut rng) {
            assert_equivalent(&e, &sql);
        }
    }
}

#[test]
fn join_equivalence_both_build_sides() {
    let mut rng = Rng::new(0x0101);
    // runs larger than hosts → build on hosts; reversed FROM order → build
    // flips to the accumulated side. Both must match the nested loop.
    for rows in [0, 1, 5, 40, 200] {
        let e = random_engine(&mut rng, rows, Ix::None);
        for sql in [
            "SELECT runs.fs, hosts.rack FROM runs JOIN hosts ON runs.nodes = hosts.node_id",
            "SELECT hosts.rack, runs.bw FROM hosts JOIN runs ON hosts.node_id = runs.nodes",
            "SELECT hosts.rack, count(*), avg(runs.bw) FROM runs \
             JOIN hosts ON runs.nodes = hosts.node_id GROUP BY hosts.rack ORDER BY hosts.rack",
            "SELECT DISTINCT hosts.rack FROM runs JOIN hosts ON runs.nodes = hosts.node_id",
        ] {
            assert_equivalent(&e, sql);
        }
    }
}

#[test]
fn index_maintenance_keeps_equivalence_through_mutations() {
    let mut rng = Rng::new(0x0DE1);
    let e = random_engine(&mut rng, 60, Ix::Ordered);
    let probes = |e: &Engine| {
        for k in [0, 3, 7, 19, 99] {
            assert_equivalent(e, &format!("SELECT * FROM runs WHERE run_index = {k}"));
            assert_equivalent(
                e,
                &format!("SELECT count(*), sum(bw) FROM runs WHERE run_index = {k}"),
            );
            assert_equivalent(
                e,
                &format!("SELECT * FROM runs WHERE run_index IN ({k}, 5)"),
            );
            assert_equivalent(
                e,
                &format!(
                    "SELECT * FROM runs WHERE run_index >= {k} AND run_index < {}",
                    k + 6
                ),
            );
        }
        assert_equivalent(e, "SELECT * FROM runs WHERE run_index = NULL");
        assert_equivalent(e, "SELECT * FROM runs WHERE run_index = 'text'");
        assert_equivalent(
            e,
            "SELECT * FROM runs WHERE run_index > 10 AND run_index < 3",
        );
    };
    probes(&e);
    // INSERT, including NULL keys.
    e.execute("INSERT INTO runs VALUES (3, 'ufs', 4, 1.5), (NULL, 'nfs', 2, 2.5)")
        .unwrap();
    probes(&e);
    // DELETE shifts row positions under the index.
    e.execute("DELETE FROM runs WHERE nodes = 4").unwrap();
    probes(&e);
    // UPDATE rewrites indexed keys (including to NULL).
    e.execute("UPDATE runs SET run_index = 7 WHERE fs = 'pvfs'")
        .unwrap();
    e.execute("UPDATE runs SET run_index = NULL WHERE fs = 'nfs'")
        .unwrap();
    probes(&e);
}

#[test]
fn large_table_parallel_scan_is_exact_for_plain_queries() {
    // Above the parallel threshold; plain filter/project and min/max/count
    // aggregation are order- and bit-exact regardless of segmentation.
    let mut rng = Rng::new(0x0B16);
    let e = random_engine(&mut rng, 10_000, Ix::Ordered);
    assert_equivalent(&e, "SELECT run_index, fs, bw FROM runs WHERE bw > 500.0");
    assert_equivalent(
        &e,
        "SELECT * FROM runs WHERE fs = 'ufs' ORDER BY bw DESC LIMIT 20",
    );
    assert_equivalent(
        &e,
        "SELECT count(*), min(bw), max(bw) FROM runs WHERE nodes >= 4",
    );
    assert_equivalent(&e, "SELECT fs, count(*) FROM runs GROUP BY fs ORDER BY fs");
    assert_equivalent(&e, "SELECT * FROM runs WHERE run_index = 13");
    assert_equivalent(&e, "SELECT * FROM runs WHERE run_index IN (2, 13, 17)");
    assert_equivalent(
        &e,
        "SELECT * FROM runs WHERE run_index >= 5 AND run_index <= 9",
    );
}

/// NaN rows under ORDER BY, GROUP BY, and ordered-index range scans: the
/// comparator fix makes NaN a real key that sorts last, groups as one key,
/// and stays consistent between the index path and the filter evaluator.
#[test]
fn nan_rows_are_deterministic_under_sort_group_and_index() {
    let e = Engine::new();
    e.execute("CREATE TABLE t (id INTEGER, x FLOAT)").unwrap();
    let mut rows = Vec::new();
    for i in 0..40 {
        let x = match i % 5 {
            0 => Value::Float(f64::NAN),
            1 => Value::Null,
            _ => Value::Float((i % 7) as f64 - 3.0),
        };
        rows.push(vec![Value::Int(i), x]);
    }
    e.insert_rows("t", rows).unwrap();
    e.execute("CREATE ORDERED INDEX ix_x ON t (x)").unwrap();

    // ORDER BY is deterministic and total: repeated queries agree exactly,
    // ascending is the reverse of descending, and NaN sorts after numbers.
    let asc = e.query("SELECT id, x FROM t ORDER BY x, id").unwrap();
    let asc2 = e.query("SELECT id, x FROM t ORDER BY x, id").unwrap();
    assert_eq!(asc, asc2);
    let desc = e
        .query("SELECT id, x FROM t ORDER BY x DESC, id DESC")
        .unwrap();
    let mut rev = desc.rows().to_vec();
    rev.reverse();
    assert_eq!(asc.rows(), rev.as_slice());
    let xs: Vec<&Value> = asc.rows().iter().map(|r| &r[1]).collect();
    let first_nan = xs
        .iter()
        .position(|v| matches!(v, Value::Float(f) if f.is_nan()))
        .unwrap();
    assert!(
        xs[first_nan..]
            .iter()
            .all(|v| matches!(v, Value::Float(f) if f.is_nan())),
        "NaN rows must sort last: {xs:?}"
    );

    // GROUP BY: all NaN rows collapse into one group with the right count.
    let gs = e
        .query("SELECT x, count(*) FROM t GROUP BY x ORDER BY x")
        .unwrap();
    let nan_groups: Vec<_> = gs
        .rows()
        .iter()
        .filter(|r| matches!(&r[0], Value::Float(f) if f.is_nan()))
        .collect();
    assert_eq!(nan_groups.len(), 1);
    assert_eq!(nan_groups[0][1], Value::Int(8));

    // Ordered-index range scans agree with the reference evaluator even
    // when NaN keys sit at the top of the index.
    assert_equivalent(&e, "SELECT id FROM t WHERE x > 1.0");
    assert_equivalent(&e, "SELECT id FROM t WHERE x >= -3.0 AND x < 2.0");
    assert_equivalent(&e, "SELECT id FROM t WHERE x IN (0.0, 2.0)");
}

#[test]
fn large_table_parallel_float_aggregates_within_tolerance() {
    let mut rng = Rng::new(0xF10A7);
    let e = random_engine(&mut rng, 10_000, Ix::None);
    let sql = "SELECT fs, avg(bw), sum(bw), stddev(bw) FROM runs GROUP BY fs ORDER BY fs";
    let a = e.query(sql).unwrap();
    let b = e.query_reference(sql).unwrap();
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        assert_eq!(ra[0], rb[0]);
        for (va, vb) in ra[1..].iter().zip(&rb[1..]) {
            match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() / scale < 1e-9, "{va:?} vs {vb:?} in {sql}");
                }
                _ => assert_eq!(va, vb, "{sql}"),
            }
        }
    }
}
