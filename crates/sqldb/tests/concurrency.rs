//! Concurrency stress tests: the engine must support the perfbase access
//! pattern — many concurrent readers over shared run tables while each
//! query element writes only its own temp table (paper §4.2/§4.3) — and,
//! since the MVCC work, serve snapshot-isolated analysts concurrently with
//! live imports.

mod common;

use common::Rng;
use sqldb::cluster::{Cluster, LatencyModel};
use sqldb::{Engine, Snapshot, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_readers_see_consistent_counts() {
    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE t (a INTEGER, b FLOAT)").unwrap();
    let rows: Vec<Vec<Value>> = (0..5_000)
        .map(|i| vec![Value::Int(i % 50), Value::Float(i as f64)])
        .collect();
    db.insert_rows("t", rows).unwrap();

    let handles: Vec<_> = (0..8)
        .map(|k| {
            let db = db.clone();
            thread::spawn(move || {
                for _ in 0..20 {
                    let rs = db
                        .query(&format!(
                            "SELECT count(*), sum(b) FROM t WHERE a = {}",
                            k % 50
                        ))
                        .unwrap();
                    assert_eq!(rs.rows()[0][0], Value::Int(100));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn writers_on_distinct_temp_tables_do_not_interfere() {
    let db = Arc::new(Engine::new());
    let handles: Vec<_> = (0..8)
        .map(|k| {
            let db = db.clone();
            thread::spawn(move || {
                let table = format!("pb_tmp_stress_{k}");
                db.execute(&format!("CREATE TEMP TABLE {table} (x INTEGER)"))
                    .unwrap();
                for i in 0..200 {
                    db.execute(&format!("INSERT INTO {table} VALUES ({i})"))
                        .unwrap();
                }
                let rs = db.query(&format!("SELECT count(*) FROM {table}")).unwrap();
                assert_eq!(rs.rows()[0][0], Value::Int(200));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.temp_table_names().len(), 8);
    db.drop_temp_tables();
    assert!(db.temp_table_names().is_empty());
}

#[test]
fn readers_concurrent_with_a_writer_never_see_torn_rows() {
    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE log (pair_lo INTEGER, pair_hi INTEGER)")
        .unwrap();

    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            for i in 0..400i64 {
                // Invariant: pair_hi == pair_lo + 1 in every committed row.
                db.execute(&format!("INSERT INTO log VALUES ({i}, {})", i + 1))
                    .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            thread::spawn(move || {
                for _ in 0..50 {
                    let rs = db
                        .query("SELECT count(*) FROM log WHERE pair_hi <> pair_lo + 1")
                        .unwrap();
                    assert_eq!(rs.rows()[0][0], Value::Int(0), "torn row observed");
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(db.row_count("log").unwrap(), 400);
}

#[test]
fn cluster_nodes_used_from_many_threads() {
    let cluster = Arc::new(Cluster::new(4, LatencyModel::none()));
    cluster
        .node(0)
        .engine
        .execute("CREATE TABLE src (x INTEGER)")
        .unwrap();
    cluster
        .node(0)
        .engine
        .execute("INSERT INTO src VALUES (1), (2), (3)")
        .unwrap();

    let handles: Vec<_> = (0..8)
        .map(|k| {
            let cluster = cluster.clone();
            thread::spawn(move || {
                let dst = 1 + (k % 3);
                let table = format!("copy_{k}");
                cluster.copy_table(0, "src", dst, &table).unwrap();
                let rs = cluster
                    .fetch(dst, 0, &format!("SELECT count(*) FROM {table}"))
                    .unwrap();
                assert_eq!(rs.rows()[0][0], Value::Int(3));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cluster.stats();
    assert_eq!(stats.messages, 24); // 8 copies (header + payload each) + 8 remote fetches
}

/// The 16-spec snapshot corpus: every optimized code path (point lookup,
/// compiled filter, fast and general aggregation, GROUP BY, DISTINCT,
/// ORDER BY, LIMIT, IN lists, ranges, joins) over the shared `runs` and
/// `hosts` tables. Results at a pinned snapshot must be byte-identical no
/// matter when they run or what writers do in the meantime.
fn snapshot_corpus() -> Vec<String> {
    vec![
        "SELECT * FROM runs WHERE run_index = 7".to_string(),
        "SELECT fs, bw FROM runs WHERE run_index = 3 AND bw > 250.0".to_string(),
        "SELECT * FROM runs WHERE run_index = 5 OR bw > 900.0".to_string(),
        "SELECT count(*), avg(bw), min(bw), max(bw) FROM runs".to_string(),
        "SELECT run_index, bw * 2 + 1 FROM runs WHERE bw > 600.0 ORDER BY 2 DESC".to_string(),
        "SELECT fs, count(*), sum(bw) FROM runs GROUP BY fs ORDER BY fs".to_string(),
        "SELECT fs, nodes, avg(bw) FROM runs GROUP BY fs, nodes ORDER BY fs, nodes".to_string(),
        "SELECT DISTINCT fs, nodes FROM runs ORDER BY fs, nodes LIMIT 7".to_string(),
        "SELECT upper(fs), abs(bw - 500.0) FROM runs WHERE fs IS NOT NULL LIMIT 11".to_string(),
        "SELECT * FROM runs WHERE fs LIKE 'u%' ORDER BY run_index, bw, nodes".to_string(),
        "SELECT * FROM runs WHERE nodes IN (1, 4, 16) AND run_index <> 2".to_string(),
        "SELECT stddev(bw), variance(bw), median(bw) FROM runs".to_string(),
        "SELECT * FROM runs WHERE run_index >= 4 AND run_index < 11".to_string(),
        "SELECT count(*) FROM runs WHERE run_index NOT IN (1, 3)".to_string(),
        "SELECT runs.fs, hosts.rack FROM runs JOIN hosts ON runs.nodes = hosts.node_id \
         ORDER BY runs.fs, hosts.rack LIMIT 40"
            .to_string(),
        "SELECT hosts.rack, count(*), avg(runs.bw) FROM runs \
         JOIN hosts ON runs.nodes = hosts.node_id GROUP BY hosts.rack ORDER BY hosts.rack"
            .to_string(),
    ]
}

/// One import batch: `batch` committed in a single statement, so a
/// snapshot either sees all of it or none of it.
fn import_batch(rng: &mut Rng, batch: usize) -> Vec<Vec<Value>> {
    const FS: [&str; 4] = ["ufs", "nfs", "pvfs", "unknown"];
    (0..batch)
        .map(|_| {
            vec![
                Value::Int(rng.int(0, 20)),
                Value::Text(FS[rng.below(4) as usize].to_string()),
                Value::Int(1 << rng.below(5)),
                Value::Float(rng.float(0.0, 1000.0)),
            ]
        })
        .collect()
}

/// Serial rerun of the corpus at a pinned snapshot, as TSV. This is the
/// ground truth a concurrent reader must reproduce byte-for-byte.
fn corpus_tsv_at(db: &Engine, snap: &Snapshot) -> Vec<String> {
    snapshot_corpus()
        .iter()
        .map(|sql| db.query_at(snap, sql).unwrap().render_tsv())
        .collect()
}

/// The tentpole isolation property: N writers continuously import batches
/// while M readers pin snapshots and run the 16-spec corpus against them.
/// Every reader must observe (a) results byte-identical to a serial rerun
/// of the same corpus at the same pinned snapshot — snapshot reads are
/// repeatable, (b) row counts that are exact batch multiples — imports are
/// never half-visible, and (c) agreement between the optimized and the
/// reference executor at the snapshot.
#[test]
fn snapshot_readers_match_serial_execution_under_concurrent_writers() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const BATCH: usize = 25;
    const BATCHES_PER_WRITER: usize = 40;

    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE runs (run_index INTEGER, fs TEXT, nodes INTEGER, bw FLOAT)")
        .unwrap();
    db.execute("CREATE INDEX ix_runs_ri ON runs (run_index)")
        .unwrap();
    db.execute("CREATE TABLE hosts (node_id INTEGER, rack TEXT)")
        .unwrap();
    let hosts: Vec<Vec<Value>> = (0..6)
        .map(|i| vec![Value::Int(1 << i), Value::Text(format!("rack{}", i % 3))])
        .collect();
    db.insert_rows("hosts", hosts).unwrap();
    // Seed data so early snapshots exercise every query shape.
    let mut rng = Rng::new(0x5EED);
    db.insert_rows("runs", import_batch(&mut rng, BATCH))
        .unwrap();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = db.clone();
            thread::spawn(move || {
                let mut rng = Rng::new(0xB00 + w as u64);
                for _ in 0..BATCHES_PER_WRITER {
                    db.insert_rows("runs", import_batch(&mut rng, BATCH))
                        .unwrap();
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let db = db.clone();
            thread::spawn(move || {
                for round in 0..12 {
                    let snap = db.snapshot();
                    // (b) Batch atomicity: committed imports are all-or-nothing.
                    let n = snap.row_count("runs").unwrap();
                    assert_eq!(
                        n % BATCH,
                        0,
                        "reader {r} round {round}: half-applied import visible ({n} rows)"
                    );
                    let rs = db.query_at(&snap, "SELECT count(*) FROM runs").unwrap();
                    assert_eq!(rs.rows()[0][0], Value::Int(n as i64));

                    // First pass over the corpus, racing the writers.
                    let live: Vec<String> = snapshot_corpus()
                        .iter()
                        .map(|sql| db.query_at(&snap, sql).unwrap().render_tsv())
                        .collect();
                    // (a) Serial rerun at the same snapshot: byte-identical.
                    assert_eq!(
                        live,
                        corpus_tsv_at(&db, &snap),
                        "reader {r} round {round}: snapshot read not repeatable"
                    );
                    // (c) Reference executor agrees at the snapshot.
                    for sql in &snapshot_corpus()[..6] {
                        assert_eq!(
                            db.query_at(&snap, sql).unwrap(),
                            db.query_reference_at(&snap, sql).unwrap(),
                            "reader {r} round {round}: executor mismatch on {sql}"
                        );
                    }
                }
            })
        })
        .collect();

    for h in writers {
        h.join().unwrap();
    }
    for h in readers {
        h.join().unwrap();
    }
    let total = (WRITERS * BATCHES_PER_WRITER + 1) * BATCH;
    assert_eq!(db.row_count("runs").unwrap(), total);

    // A snapshot pinned now is at the final epoch and sees everything.
    let last = db.snapshot();
    assert_eq!(last.row_count("runs").unwrap(), total);
    assert_eq!(last.epoch(), db.epoch());
}

/// Writer liveness: a long analytical scan over a pinned snapshot must not
/// block imports. The reader pins a snapshot of a large table and scans it
/// continuously; meanwhile a writer commits 50 batches and must finish
/// well within the watchdog window — if snapshot reads held table locks,
/// the writer would starve and the recv would time out.
#[test]
fn long_scan_does_not_block_imports() {
    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE big (run_index INTEGER, fs TEXT, nodes INTEGER, bw FLOAT)")
        .unwrap();
    let mut rng = Rng::new(0xB16);
    for _ in 0..10 {
        db.insert_rows("big", import_batch(&mut rng, 2_000))
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let scanner = {
        let db = db.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            // Pin once; every scan below reads this frozen version.
            let snap = db.snapshot();
            let expect = db
                .query_at(&snap, "SELECT count(*), sum(bw), stddev(bw) FROM big")
                .unwrap();
            let mut scans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let rs = db
                    .query_at(&snap, "SELECT count(*), sum(bw), stddev(bw) FROM big")
                    .unwrap();
                assert_eq!(rs, expect, "pinned snapshot drifted mid-scan");
                scans += 1;
            }
            scans
        })
    };

    let (tx, rx) = std::sync::mpsc::channel();
    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            let mut rng = Rng::new(0xF00D);
            for _ in 0..50 {
                db.insert_rows("big", import_batch(&mut rng, 100)).unwrap();
            }
            tx.send(()).unwrap();
        })
    };

    // The writer must not be starved by the scanning reader.
    rx.recv_timeout(std::time::Duration::from_secs(30))
        .expect("writer starved: imports blocked behind a snapshot scan");
    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let scans = scanner.join().unwrap();
    assert!(scans > 0, "scanner never completed a pass");
    assert_eq!(db.row_count("big").unwrap(), 10 * 2_000 + 50 * 100);
}

#[test]
fn dump_while_reading_is_consistent() {
    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    for i in 0..100 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            thread::spawn(move || {
                for _ in 0..10 {
                    let dump = db.dump_sql();
                    let restored = Engine::from_sql_dump(&dump).unwrap();
                    assert_eq!(restored.row_count("t").unwrap(), 100);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
