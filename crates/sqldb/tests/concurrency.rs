//! Concurrency stress tests: the engine must support the perfbase access
//! pattern — many concurrent readers over shared run tables while each
//! query element writes only its own temp table (paper §4.2/§4.3).

use sqldb::cluster::{Cluster, LatencyModel};
use sqldb::{Engine, Value};
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_readers_see_consistent_counts() {
    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE t (a INTEGER, b FLOAT)").unwrap();
    let rows: Vec<Vec<Value>> = (0..5_000)
        .map(|i| vec![Value::Int(i % 50), Value::Float(i as f64)])
        .collect();
    db.insert_rows("t", rows).unwrap();

    let handles: Vec<_> = (0..8)
        .map(|k| {
            let db = db.clone();
            thread::spawn(move || {
                for _ in 0..20 {
                    let rs = db
                        .query(&format!(
                            "SELECT count(*), sum(b) FROM t WHERE a = {}",
                            k % 50
                        ))
                        .unwrap();
                    assert_eq!(rs.rows()[0][0], Value::Int(100));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn writers_on_distinct_temp_tables_do_not_interfere() {
    let db = Arc::new(Engine::new());
    let handles: Vec<_> = (0..8)
        .map(|k| {
            let db = db.clone();
            thread::spawn(move || {
                let table = format!("pb_tmp_stress_{k}");
                db.execute(&format!("CREATE TEMP TABLE {table} (x INTEGER)"))
                    .unwrap();
                for i in 0..200 {
                    db.execute(&format!("INSERT INTO {table} VALUES ({i})"))
                        .unwrap();
                }
                let rs = db.query(&format!("SELECT count(*) FROM {table}")).unwrap();
                assert_eq!(rs.rows()[0][0], Value::Int(200));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.temp_table_names().len(), 8);
    db.drop_temp_tables();
    assert!(db.temp_table_names().is_empty());
}

#[test]
fn readers_concurrent_with_a_writer_never_see_torn_rows() {
    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE log (pair_lo INTEGER, pair_hi INTEGER)")
        .unwrap();

    let writer = {
        let db = db.clone();
        thread::spawn(move || {
            for i in 0..400i64 {
                // Invariant: pair_hi == pair_lo + 1 in every committed row.
                db.execute(&format!("INSERT INTO log VALUES ({i}, {})", i + 1))
                    .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            thread::spawn(move || {
                for _ in 0..50 {
                    let rs = db
                        .query("SELECT count(*) FROM log WHERE pair_hi <> pair_lo + 1")
                        .unwrap();
                    assert_eq!(rs.rows()[0][0], Value::Int(0), "torn row observed");
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(db.row_count("log").unwrap(), 400);
}

#[test]
fn cluster_nodes_used_from_many_threads() {
    let cluster = Arc::new(Cluster::new(4, LatencyModel::none()));
    cluster
        .node(0)
        .engine
        .execute("CREATE TABLE src (x INTEGER)")
        .unwrap();
    cluster
        .node(0)
        .engine
        .execute("INSERT INTO src VALUES (1), (2), (3)")
        .unwrap();

    let handles: Vec<_> = (0..8)
        .map(|k| {
            let cluster = cluster.clone();
            thread::spawn(move || {
                let dst = 1 + (k % 3);
                let table = format!("copy_{k}");
                cluster.copy_table(0, "src", dst, &table).unwrap();
                let rs = cluster
                    .fetch(dst, 0, &format!("SELECT count(*) FROM {table}"))
                    .unwrap();
                assert_eq!(rs.rows()[0][0], Value::Int(3));
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cluster.stats();
    assert_eq!(stats.messages, 24); // 8 copies (header + payload each) + 8 remote fetches
}

#[test]
fn dump_while_reading_is_consistent() {
    let db = Arc::new(Engine::new());
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    for i in 0..100 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            thread::spawn(move || {
                for _ in 0..10 {
                    let dump = db.dump_sql();
                    let restored = Engine::from_sql_dump(&dump).unwrap();
                    assert_eq!(restored.row_count("t").unwrap(), 100);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
