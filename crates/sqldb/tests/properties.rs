//! Randomized tests for the database engine: SQL-computed aggregates and
//! filters must agree with independently computed oracles.

mod common;

use std::ops::Bound;

use common::Rng;
use sqldb::{Column, DataType, Engine, Schema, Table, Value, ValueKey};

fn load(values: &[(i64, f64, bool)]) -> Engine {
    let db = Engine::new();
    db.execute("CREATE TABLE t (k INTEGER, v FLOAT, flag BOOLEAN)")
        .unwrap();
    for (k, v, b) in values {
        db.execute(&format!("INSERT INTO t VALUES ({k}, {v:?}, {b})"))
            .unwrap();
    }
    db
}

fn random_rows(
    rng: &mut Rng,
    max_k: i64,
    span: f64,
    min: usize,
    max: usize,
) -> Vec<(i64, f64, bool)> {
    let n = min + rng.below((max - min) as u64 + 1) as usize;
    (0..n)
        .map(|_| (rng.int(0, max_k), rng.float(-span, span), rng.bool()))
        .collect()
}

/// count / sum / min / max via SQL equal the straightforward fold.
#[test]
fn aggregates_match_oracle() {
    let mut rng = Rng::new(0xA66);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 5, 100.0, 1, 49);
        let db = load(&vals);
        let rs = db
            .query("SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t")
            .unwrap();
        let row = &rs.rows()[0];
        assert_eq!(&row[0], &Value::Int(vals.len() as i64));
        let sum: f64 = vals.iter().map(|x| x.1).sum();
        let min = vals.iter().map(|x| x.1).fold(f64::INFINITY, f64::min);
        let max = vals.iter().map(|x| x.1).fold(f64::NEG_INFINITY, f64::max);
        let avg = sum / vals.len() as f64;
        let get = |v: &Value| v.as_f64().unwrap();
        assert!((get(&row[1]) - sum).abs() < 1e-6);
        assert!((get(&row[2]) - min).abs() < 1e-12);
        assert!((get(&row[3]) - max).abs() < 1e-12);
        assert!((get(&row[4]) - avg).abs() < 1e-6);
    }
}

/// GROUP BY partitions the rows: per-group counts sum to the total, and
/// each group's count matches the oracle.
#[test]
fn group_by_partitions() {
    let mut rng = Rng::new(0x9B0);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 4, 10.0, 1, 59);
        let db = load(&vals);
        let rs = db
            .query("SELECT k, count(*) FROM t GROUP BY k ORDER BY k")
            .unwrap();
        let mut total = 0i64;
        for row in rs.rows() {
            let k = row[0].as_i64().unwrap();
            let c = row[1].as_i64().unwrap();
            let expect = vals.iter().filter(|x| x.0 == k).count() as i64;
            assert_eq!(c, expect);
            total += c;
        }
        assert_eq!(total, vals.len() as i64);
    }
}

/// WHERE filtering equals the oracle predicate.
#[test]
fn where_filter_matches() {
    let mut rng = Rng::new(0xF17);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 10, 10.0, 0, 49);
        let threshold = rng.int(-10, 10);
        let db = load(&vals);
        let rs = db
            .query(&format!(
                "SELECT count(*) FROM t WHERE k >= {threshold} AND flag = TRUE"
            ))
            .unwrap();
        let expect = vals.iter().filter(|x| x.0 >= threshold && x.2).count() as i64;
        assert_eq!(&rs.rows()[0][0], &Value::Int(expect));
    }
}

/// ORDER BY yields a sorted column; LIMIT never yields more rows than
/// asked for; DISTINCT never yields duplicates.
#[test]
fn order_limit_distinct() {
    let mut rng = Rng::new(0x0DD);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 6, 10.0, 0, 39);
        let limit = rng.below(20) as usize;
        let db = load(&vals);
        let rs = db
            .query(&format!("SELECT v FROM t ORDER BY v LIMIT {limit}"))
            .unwrap();
        assert!(rs.len() <= limit);
        let col: Vec<f64> = rs.rows().iter().map(|r| r[0].as_f64().unwrap()).collect();
        assert!(col.windows(2).all(|w| w[0] <= w[1]));

        let rs = db.query("SELECT DISTINCT k FROM t").unwrap();
        let mut ks: Vec<i64> = rs.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        let n = ks.len();
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(n, ks.len());
    }
}

/// DELETE removes exactly the matching rows.
#[test]
fn delete_matches_oracle() {
    let mut rng = Rng::new(0xDE1);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 5, 10.0, 0, 39);
        let cut = rng.int(0, 5);
        let db = load(&vals);
        let removed = db
            .execute(&format!("DELETE FROM t WHERE k = {cut}"))
            .unwrap();
        let expect_removed = vals.iter().filter(|x| x.0 == cut).count();
        assert_eq!(removed, expect_removed);
        assert_eq!(db.row_count("t").unwrap(), vals.len() - expect_removed);
    }
}

/// Text round-trips through SQL string literals unharmed (including
/// embedded quotes).
#[test]
fn text_roundtrip() {
    let mut rng = Rng::new(0x7E7);
    for _ in 0..200 {
        let s = rng.printable(30);
        let db = Engine::new();
        db.execute("CREATE TABLE s (x TEXT)").unwrap();
        let quoted = s.replace('\'', "''");
        db.execute(&format!("INSERT INTO s VALUES ('{quoted}')"))
            .unwrap();
        let rs = db.query("SELECT x FROM s").unwrap();
        assert_eq!(&rs.rows()[0][0], &Value::Text(s));
    }
}

/// Is `key` inside the `[lo, hi]` window under [`ValueKey`]'s total order?
/// Oracle for `Table::range_lookup`.
fn in_window(key: &ValueKey, lo: &Bound<ValueKey>, hi: &Bound<ValueKey>) -> bool {
    use std::cmp::Ordering;
    let lo_ok = match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => key.cmp(b) != Ordering::Less,
        Bound::Excluded(b) => key.cmp(b) == Ordering::Greater,
    };
    let hi_ok = match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => key.cmp(b) != Ordering::Greater,
        Bound::Excluded(b) => key.cmp(b) == Ordering::Less,
    };
    lo_ok && hi_ok
}

/// Row positions whose `column` key equals / falls inside the probe, by
/// brute-force scan over all rows. NULL keys never match (not indexed).
fn scan_eq(t: &Table, column: usize, key: &ValueKey) -> Vec<usize> {
    t.rows()
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            let k = ValueKey::of(&r[column]);
            !k.is_null() && k == *key
        })
        .map(|(i, _)| i)
        .collect()
}

fn scan_range(t: &Table, column: usize, lo: &Bound<ValueKey>, hi: &Bound<ValueKey>) -> Vec<usize> {
    t.rows()
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            let k = ValueKey::of(&r[column]);
            !k.is_null() && in_window(&k, lo, hi)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Incremental index maintenance under interleaved random insert / delete /
/// update batches: after every mutation, each point probe and range probe
/// must return positions identical to a full scan of the row store.
///
/// Columns: `k` ordered int index (duplicate-heavy), `v` ordered float index
/// (occasional NaN / NULL), `s` hash index (small alphabet).
#[test]
fn index_maintenance_matches_full_scan() {
    let mut rng = Rng::new(0x1DE7);
    for _case in 0..15 {
        let mut t = Table::new(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Float),
                Column::new("s", DataType::Text),
            ])
            .unwrap(),
        );
        t.create_index("ix_k", "k", true).unwrap();
        // Start `v` as a hash index and upgrade mid-run below.
        t.create_index("ix_v", "v", false).unwrap();
        t.create_index("ix_s", "s", false).unwrap();

        fn mk_row(rng: &mut Rng) -> Vec<Value> {
            let k = Value::Int(rng.int(0, 12));
            let v = match rng.below(12) {
                0 => Value::Null,
                1 => Value::Float(f64::NAN),
                2 => Value::Float(-0.0),
                _ => Value::Float(rng.float(-50.0, 50.0)),
            };
            let s = if rng.below(10) == 0 {
                Value::Null
            } else {
                let len = 1 + rng.below(2) as usize;
                Value::Text(rng.string_from(b"abc", len))
            };
            vec![k, v, s]
        }

        for step in 0..40 {
            if step == 20 {
                // Upgrade the hash index on `v` to ordered, in place.
                t.create_index("ix_v_again", "v", true).unwrap();
                assert!(t.has_ordered_index_on(1));
            }
            match rng.below(4) {
                // Insert a batch (insert_all: the atomic path).
                0 | 1 => {
                    let batch: Vec<Vec<Value>> =
                        (0..1 + rng.below(8)).map(|_| mk_row(&mut rng)).collect();
                    let n = batch.len();
                    assert_eq!(t.insert_all(batch).unwrap(), n);
                }
                // Delete rows matching a random predicate.
                2 => {
                    let cut = rng.int(0, 12);
                    let by_k = rng.bool();
                    let thr = rng.float(-50.0, 50.0);
                    t.delete_where(|r| {
                        if by_k {
                            r[0] == Value::Int(cut)
                        } else {
                            matches!(r[1], Value::Float(f) if f < thr)
                        }
                    });
                }
                // Update: rewrite indexed columns of matching rows.
                _ => {
                    let target = rng.int(0, 12);
                    let newk = rng.int(0, 12);
                    let newv = if rng.below(8) == 0 {
                        f64::NAN
                    } else {
                        rng.float(-50.0, 50.0)
                    };
                    t.update_where(|r| {
                        if r[0] == Value::Int(target) {
                            r[0] = Value::Int(newk);
                            r[1] = Value::Float(newv);
                            r[2] = Value::Text("z".into());
                            true
                        } else {
                            false
                        }
                    });
                }
            }

            // Point probes: every live key, plus probes that should miss.
            for col in [0usize, 1, 2] {
                let mut keys: Vec<ValueKey> = t
                    .rows()
                    .iter()
                    .map(|r| ValueKey::of(&r[col]))
                    .filter(|k| !k.is_null())
                    .collect();
                keys.sort();
                keys.dedup();
                for key in &keys {
                    assert_eq!(
                        t.index_lookup(col, key).unwrap(),
                        scan_eq(&t, col, key).as_slice(),
                        "col {col} key {key:?} after step {step}",
                    );
                }
                assert_eq!(
                    t.index_lookup(col, &ValueKey::of(&Value::Null)).unwrap(),
                    &[] as &[usize]
                );
            }
            assert_eq!(
                t.index_lookup(0, &ValueKey::of(&Value::Int(999))).unwrap(),
                &[] as &[usize]
            );

            // Range probes on the ordered int index (and the float index
            // once upgraded), random bound kinds, inverted bounds included.
            for _ in 0..6 {
                let (col, a, b) = if rng.bool() || step < 20 {
                    let a = ValueKey::of(&Value::Int(rng.int(-2, 14)));
                    let b = ValueKey::of(&Value::Int(rng.int(-2, 14)));
                    (0usize, a, b)
                } else {
                    let a = ValueKey::of(&Value::Float(rng.float(-60.0, 60.0)));
                    let b = ValueKey::of(&Value::Float(if rng.below(8) == 0 {
                        f64::NAN
                    } else {
                        rng.float(-60.0, 60.0)
                    }));
                    (1usize, a, b)
                };
                let mk = |rng: &mut Rng, k: ValueKey| match rng.below(3) {
                    0 => Bound::Included(k),
                    1 => Bound::Excluded(k),
                    _ => Bound::Unbounded,
                };
                let lo = mk(&mut rng, a);
                let hi = mk(&mut rng, b);
                let got = t
                    .range_lookup(col, as_bound_ref(&lo), as_bound_ref(&hi))
                    .expect("ordered index present");
                assert_eq!(
                    got,
                    scan_range(&t, col, &lo, &hi),
                    "range {lo:?}..{hi:?} step {step}"
                );
            }
        }
    }
}

fn as_bound_ref(b: &Bound<ValueKey>) -> Bound<&ValueKey> {
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// The SQL planner's index paths (`=`, `IN`, ranges over an ordered index)
/// return the same result sets as the same queries against an unindexed
/// copy of the data.
#[test]
fn planned_queries_match_unindexed_copy() {
    let mut rng = Rng::new(0x9A7E);
    for _case in 0..10 {
        let indexed = Engine::new();
        let plain = Engine::new();
        for db in [&indexed, &plain] {
            db.execute("CREATE TABLE t (k INTEGER, v FLOAT, s TEXT)")
                .unwrap();
        }
        indexed
            .execute("CREATE ORDERED INDEX ix_k ON t (k)")
            .unwrap();
        indexed.execute("CREATE INDEX ix_s ON t (s)").unwrap();
        for _ in 0..rng.below(120) + 20 {
            let k = rng.int(0, 25);
            let v = rng.float(-10.0, 10.0);
            let s = rng.string_from(b"abcd", 1);
            let stmt = format!("INSERT INTO t VALUES ({k}, {v:?}, '{s}')");
            indexed.execute(&stmt).unwrap();
            plain.execute(&stmt).unwrap();
        }
        let a = rng.int(0, 25);
        let b = rng.int(0, 25);
        let queries = [
            format!("SELECT k, v, s FROM t WHERE k = {a} ORDER BY v, s"),
            format!("SELECT k, s FROM t WHERE k IN ({a}, {b}, 99) ORDER BY k, s"),
            format!(
                "SELECT k FROM t WHERE k >= {} AND k < {} ORDER BY k",
                a.min(b),
                a.max(b)
            ),
            format!(
                "SELECT k FROM t WHERE k >= {} AND k <= {} ORDER BY k",
                a.min(b),
                a.max(b)
            ),
            format!("SELECT count(*) FROM t WHERE k > {a} AND s IN ('a', 'b')"),
            format!(
                "SELECT k FROM t WHERE k > {} AND k < {} ORDER BY k",
                a.max(b),
                a.min(b)
            ),
        ];
        for q in &queries {
            let want = plain.query(q).unwrap();
            let got = indexed.query(q).unwrap();
            assert_eq!(got.rows(), want.rows(), "{q}");
        }
        // Mutate through SQL, then re-check a probe query.
        for db in [&indexed, &plain] {
            db.execute(&format!("DELETE FROM t WHERE k = {a}")).unwrap();
            db.execute(&format!("UPDATE t SET k = {b} WHERE v < 0.0"))
                .unwrap();
        }
        let q = format!("SELECT k, v, s FROM t WHERE k IN ({a}, {b}) ORDER BY k, v, s");
        assert_eq!(
            indexed.query(&q).unwrap().rows(),
            plain.query(&q).unwrap().rows()
        );
    }
}

/// Every query in the corpus returns byte-identical results on a columnar
/// copy of the data vs the row-store original — including NULLs, NaN and
/// -0.0 payloads, dictionary-encoded text, aggregate outputs, and queries
/// that fall off the vectorized path (OR predicates, expression
/// projections). Results are compared through their debug rendering, which
/// distinguishes Int from Float and -0.0 from 0.0 and treats two NaNs as
/// equal text — stricter than `Value`'s `==` for this purpose.
///
/// Row counts stay below the parallel-scan threshold so the row engine's
/// aggregation is sequential too; both sides then produce bit-equal floats.
#[test]
fn columnar_copy_matches_row_store() {
    let mut rng = Rng::new(0xC01);
    for _case in 0..12 {
        let row = Engine::new();
        let col = Engine::new();
        row.execute("CREATE TABLE t (k INTEGER, v FLOAT, s TEXT, ok BOOLEAN)")
            .unwrap();
        col.execute("CREATE TABLE t (k INTEGER, v FLOAT, s TEXT, ok BOOLEAN) USING COLUMNAR")
            .unwrap();

        let n = 40 + rng.below(260);
        let data: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                let k = if rng.below(12) == 0 {
                    Value::Null
                } else {
                    Value::Int(rng.int(-5, 20))
                };
                let v = match rng.below(12) {
                    0 => Value::Null,
                    1 => Value::Float(f64::NAN),
                    2 => Value::Float(-0.0),
                    _ => Value::Float(rng.float(-100.0, 100.0)),
                };
                let s = if rng.below(8) == 0 {
                    Value::Null
                } else {
                    let len = 1 + rng.below(2) as usize;
                    Value::Text(rng.string_from(b"abc", len))
                };
                let ok = if rng.below(12) == 0 {
                    Value::Null
                } else {
                    Value::Bool(rng.bool())
                };
                vec![k, v, s, ok]
            })
            .collect();
        row.insert_rows("t", data.clone()).unwrap();
        col.insert_rows("t", data).unwrap();

        let a = rng.int(-5, 20);
        let thr = rng.float(-100.0, 100.0);
        let corpus = [
            "SELECT * FROM t".to_string(),
            format!("SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t WHERE k >= {a}"),
            "SELECT s, count(*), avg(v) FROM t GROUP BY s ORDER BY s".to_string(),
            format!("SELECT k, count(*) FROM t WHERE v > {thr:?} GROUP BY k ORDER BY k"),
            format!("SELECT k, v FROM t WHERE s = 'a' AND v <= {thr:?}"),
            "SELECT k FROM t WHERE s IN ('a', 'b', 'zz')".to_string(),
            "SELECT k FROM t WHERE s NOT IN ('a', 'ca')".to_string(),
            "SELECT k FROM t WHERE s LIKE 'a%'".to_string(),
            "SELECT k FROM t WHERE s IS NULL".to_string(),
            "SELECT k, v FROM t WHERE v IS NOT NULL AND ok = TRUE".to_string(),
            format!("SELECT k + 1, v * 2.0 FROM t WHERE k > {a}"),
            "SELECT DISTINCT s FROM t ORDER BY s".to_string(),
            format!("SELECT k, v FROM t WHERE k = {a} OR v < {thr:?}"),
            "SELECT min(s), max(s) FROM t".to_string(),
            "SELECT k, v FROM t ORDER BY v DESC LIMIT 7".to_string(),
            format!("SELECT ok, count(*), sum(k) FROM t WHERE v <> {thr:?} GROUP BY ok"),
        ];
        let check = |tag: &str| {
            for q in &corpus {
                let run = |db: &Engine| {
                    format!(
                        "{:?}",
                        db.query(q)
                            .unwrap_or_else(|e| panic!("{tag}: {q}: {e:?}"))
                            .rows()
                    )
                };
                assert_eq!(run(&col), run(&row), "{tag}: {q}");
            }
        };
        check("fresh");

        // The same mutations applied to both stores keep them equivalent.
        for db in [&row, &col] {
            db.execute(&format!("DELETE FROM t WHERE k = {a}")).unwrap();
            db.execute(&format!(
                "UPDATE t SET s = 'mut', v = 1.5 WHERE v > {thr:?}"
            ))
            .unwrap();
        }
        assert_eq!(row.row_count("t").unwrap(), col.row_count("t").unwrap());
        check("mutated");
    }
}

/// The SQL parser never panics on arbitrary input.
#[test]
fn parser_total() {
    let mut rng = Rng::new(0x90F);
    let db = Engine::new();
    for _ in 0..500 {
        let junk = rng.printable(64);
        let _ = db.execute(&junk);
        let _ = db.query(&junk);
    }
}
