//! Randomized tests for the database engine: SQL-computed aggregates and
//! filters must agree with independently computed oracles.

mod common;

use common::Rng;
use sqldb::{Engine, Value};

fn load(values: &[(i64, f64, bool)]) -> Engine {
    let db = Engine::new();
    db.execute("CREATE TABLE t (k INTEGER, v FLOAT, flag BOOLEAN)").unwrap();
    for (k, v, b) in values {
        db.execute(&format!("INSERT INTO t VALUES ({k}, {v:?}, {b})")).unwrap();
    }
    db
}

fn random_rows(
    rng: &mut Rng,
    max_k: i64,
    span: f64,
    min: usize,
    max: usize,
) -> Vec<(i64, f64, bool)> {
    let n = min + rng.below((max - min) as u64 + 1) as usize;
    (0..n).map(|_| (rng.int(0, max_k), rng.float(-span, span), rng.bool())).collect()
}

/// count / sum / min / max via SQL equal the straightforward fold.
#[test]
fn aggregates_match_oracle() {
    let mut rng = Rng::new(0xA66);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 5, 100.0, 1, 49);
        let db = load(&vals);
        let rs = db.query("SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t").unwrap();
        let row = &rs.rows()[0];
        assert_eq!(&row[0], &Value::Int(vals.len() as i64));
        let sum: f64 = vals.iter().map(|x| x.1).sum();
        let min = vals.iter().map(|x| x.1).fold(f64::INFINITY, f64::min);
        let max = vals.iter().map(|x| x.1).fold(f64::NEG_INFINITY, f64::max);
        let avg = sum / vals.len() as f64;
        let get = |v: &Value| v.as_f64().unwrap();
        assert!((get(&row[1]) - sum).abs() < 1e-6);
        assert!((get(&row[2]) - min).abs() < 1e-12);
        assert!((get(&row[3]) - max).abs() < 1e-12);
        assert!((get(&row[4]) - avg).abs() < 1e-6);
    }
}

/// GROUP BY partitions the rows: per-group counts sum to the total, and
/// each group's count matches the oracle.
#[test]
fn group_by_partitions() {
    let mut rng = Rng::new(0x9B0);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 4, 10.0, 1, 59);
        let db = load(&vals);
        let rs = db.query("SELECT k, count(*) FROM t GROUP BY k ORDER BY k").unwrap();
        let mut total = 0i64;
        for row in rs.rows() {
            let k = row[0].as_i64().unwrap();
            let c = row[1].as_i64().unwrap();
            let expect = vals.iter().filter(|x| x.0 == k).count() as i64;
            assert_eq!(c, expect);
            total += c;
        }
        assert_eq!(total, vals.len() as i64);
    }
}

/// WHERE filtering equals the oracle predicate.
#[test]
fn where_filter_matches() {
    let mut rng = Rng::new(0xF17);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 10, 10.0, 0, 49);
        let threshold = rng.int(-10, 10);
        let db = load(&vals);
        let rs = db
            .query(&format!("SELECT count(*) FROM t WHERE k >= {threshold} AND flag = TRUE"))
            .unwrap();
        let expect = vals.iter().filter(|x| x.0 >= threshold && x.2).count() as i64;
        assert_eq!(&rs.rows()[0][0], &Value::Int(expect));
    }
}

/// ORDER BY yields a sorted column; LIMIT never yields more rows than
/// asked for; DISTINCT never yields duplicates.
#[test]
fn order_limit_distinct() {
    let mut rng = Rng::new(0x0DD);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 6, 10.0, 0, 39);
        let limit = rng.below(20) as usize;
        let db = load(&vals);
        let rs = db.query(&format!("SELECT v FROM t ORDER BY v LIMIT {limit}")).unwrap();
        assert!(rs.len() <= limit);
        let col: Vec<f64> = rs.rows().iter().map(|r| r[0].as_f64().unwrap()).collect();
        assert!(col.windows(2).all(|w| w[0] <= w[1]));

        let rs = db.query("SELECT DISTINCT k FROM t").unwrap();
        let mut ks: Vec<i64> = rs.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        let n = ks.len();
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(n, ks.len());
    }
}

/// DELETE removes exactly the matching rows.
#[test]
fn delete_matches_oracle() {
    let mut rng = Rng::new(0xDE1);
    for _ in 0..100 {
        let vals = random_rows(&mut rng, 5, 10.0, 0, 39);
        let cut = rng.int(0, 5);
        let db = load(&vals);
        let removed = db.execute(&format!("DELETE FROM t WHERE k = {cut}")).unwrap();
        let expect_removed = vals.iter().filter(|x| x.0 == cut).count();
        assert_eq!(removed, expect_removed);
        assert_eq!(db.row_count("t").unwrap(), vals.len() - expect_removed);
    }
}

/// Text round-trips through SQL string literals unharmed (including
/// embedded quotes).
#[test]
fn text_roundtrip() {
    let mut rng = Rng::new(0x7E7);
    for _ in 0..200 {
        let s = rng.printable(30);
        let db = Engine::new();
        db.execute("CREATE TABLE s (x TEXT)").unwrap();
        let quoted = s.replace('\'', "''");
        db.execute(&format!("INSERT INTO s VALUES ('{quoted}')")).unwrap();
        let rs = db.query("SELECT x FROM s").unwrap();
        assert_eq!(&rs.rows()[0][0], &Value::Text(s));
    }
}

/// The SQL parser never panics on arbitrary input.
#[test]
fn parser_total() {
    let mut rng = Rng::new(0x90F);
    let db = Engine::new();
    for _ in 0..500 {
        let junk = rng.printable(64);
        let _ = db.execute(&junk);
        let _ = db.query(&junk);
    }
}
