//! Property-based tests for the database engine: SQL-computed aggregates and
//! filters must agree with independently computed oracles.

use proptest::prelude::*;
use sqldb::{Engine, Value};

fn load(values: &[(i64, f64, bool)]) -> Engine {
    let db = Engine::new();
    db.execute("CREATE TABLE t (k INTEGER, v FLOAT, flag BOOLEAN)").unwrap();
    for (k, v, b) in values {
        db.execute(&format!("INSERT INTO t VALUES ({k}, {v:?}, {b})")).unwrap();
    }
    db
}

proptest! {
    /// count / sum / min / max via SQL equal the straightforward fold.
    #[test]
    fn aggregates_match_oracle(vals in proptest::collection::vec((0i64..5, -100.0f64..100.0, any::<bool>()), 1..50)) {
        let db = load(&vals);
        let rs = db.query("SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t").unwrap();
        let row = &rs.rows()[0];
        prop_assert_eq!(&row[0], &Value::Int(vals.len() as i64));
        let sum: f64 = vals.iter().map(|x| x.1).sum();
        let min = vals.iter().map(|x| x.1).fold(f64::INFINITY, f64::min);
        let max = vals.iter().map(|x| x.1).fold(f64::NEG_INFINITY, f64::max);
        let avg = sum / vals.len() as f64;
        let get = |v: &Value| v.as_f64().unwrap();
        prop_assert!((get(&row[1]) - sum).abs() < 1e-6);
        prop_assert!((get(&row[2]) - min).abs() < 1e-12);
        prop_assert!((get(&row[3]) - max).abs() < 1e-12);
        prop_assert!((get(&row[4]) - avg).abs() < 1e-6);
    }

    /// GROUP BY partitions the rows: per-group counts sum to the total, and
    /// each group's count matches the oracle.
    #[test]
    fn group_by_partitions(vals in proptest::collection::vec((0i64..4, -10.0f64..10.0, any::<bool>()), 1..60)) {
        let db = load(&vals);
        let rs = db.query("SELECT k, count(*) FROM t GROUP BY k ORDER BY k").unwrap();
        let mut total = 0i64;
        for row in rs.rows() {
            let k = row[0].as_i64().unwrap();
            let c = row[1].as_i64().unwrap();
            let expect = vals.iter().filter(|x| x.0 == k).count() as i64;
            prop_assert_eq!(c, expect);
            total += c;
        }
        prop_assert_eq!(total, vals.len() as i64);
    }

    /// WHERE filtering equals the oracle predicate.
    #[test]
    fn where_filter_matches(vals in proptest::collection::vec((0i64..10, -10.0f64..10.0, any::<bool>()), 0..50), threshold in -10i64..10) {
        let db = load(&vals);
        let rs = db.query(&format!("SELECT count(*) FROM t WHERE k >= {threshold} AND flag = TRUE")).unwrap();
        let expect = vals.iter().filter(|x| x.0 >= threshold && x.2).count() as i64;
        prop_assert_eq!(&rs.rows()[0][0], &Value::Int(expect));
    }

    /// ORDER BY yields a sorted column; LIMIT never yields more rows than
    /// asked for; DISTINCT never yields duplicates.
    #[test]
    fn order_limit_distinct(vals in proptest::collection::vec((0i64..6, -10.0f64..10.0, any::<bool>()), 0..40), limit in 0usize..20) {
        let db = load(&vals);
        let rs = db.query(&format!("SELECT v FROM t ORDER BY v LIMIT {limit}")).unwrap();
        prop_assert!(rs.len() <= limit);
        let col: Vec<f64> = rs.rows().iter().map(|r| r[0].as_f64().unwrap()).collect();
        prop_assert!(col.windows(2).all(|w| w[0] <= w[1]));

        let rs = db.query("SELECT DISTINCT k FROM t").unwrap();
        let mut ks: Vec<i64> = rs.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        let n = ks.len();
        ks.sort_unstable();
        ks.dedup();
        prop_assert_eq!(n, ks.len());
    }

    /// DELETE removes exactly the matching rows.
    #[test]
    fn delete_matches_oracle(vals in proptest::collection::vec((0i64..5, -10.0f64..10.0, any::<bool>()), 0..40), cut in 0i64..5) {
        let db = load(&vals);
        let removed = db.execute(&format!("DELETE FROM t WHERE k = {cut}")).unwrap();
        let expect_removed = vals.iter().filter(|x| x.0 == cut).count();
        prop_assert_eq!(removed, expect_removed);
        prop_assert_eq!(db.row_count("t").unwrap(), vals.len() - expect_removed);
    }

    /// Text round-trips through SQL string literals unharmed (including
    /// embedded quotes).
    #[test]
    fn text_roundtrip(s in "[ -~]{0,30}") {
        let db = Engine::new();
        db.execute("CREATE TABLE s (x TEXT)").unwrap();
        let quoted = s.replace('\'', "''");
        db.execute(&format!("INSERT INTO s VALUES ('{quoted}')")).unwrap();
        let rs = db.query("SELECT x FROM s").unwrap();
        prop_assert_eq!(&rs.rows()[0][0], &Value::Text(s));
    }

    /// The SQL parser never panics on arbitrary input.
    #[test]
    fn parser_total(junk in "[ -~]{0,64}") {
        let db = Engine::new();
        let _ = db.execute(&junk);
        let _ = db.query(&junk);
    }
}
