//! Thin wrappers over `std::sync` locks with non-poisoning ergonomics.
//!
//! The engine treats a panic while holding a lock as fatal to the invariant
//! anyway (a half-applied insert), so poison carries no information for us:
//! these wrappers recover the guard on poison instead of forcing every call
//! site to unwrap a `LockResult`. Exported so dependent crates share the
//! same locking discipline without an external dependency.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual-exclusion lock; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock and return the inner value, recovering from poison.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquire shared access, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
