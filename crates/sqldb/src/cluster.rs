//! Simulated database cluster (paper §4.3, Fig. 3).
//!
//! The paper proposes distributing perfbase query elements across cluster
//! nodes, each running an independent database server; an element's output
//! table lives **on the node that consumes it**, and remote access happens
//! "via sockets, possibly using a high-speed interconnection network".
//!
//! We do not have a cluster, so this module simulates one: every [`Node`]
//! owns an independent [`Engine`], and all cross-node data movement goes
//! through [`Cluster::copy_table`] / [`Cluster::fetch`], which charge a
//! configurable socket-latency cost (a real `thread::sleep`, so wall-clock
//! benchmarks see it) and record transfer statistics. Same-node access is
//! free, exactly like the paper's placement argument.

use crate::engine::{Engine, ResultSet};
use crate::error::DbError;
use crate::exec::infer_schema;
use crate::sync::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Cost model for the simulated interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed cost per message (connection + round trip).
    pub per_message: Duration,
    /// Marginal cost per transferred row.
    pub per_row: Duration,
}

impl LatencyModel {
    /// No simulated latency (unit tests).
    pub fn none() -> Self {
        LatencyModel { per_message: Duration::ZERO, per_row: Duration::ZERO }
    }

    /// A gigabit-Ethernet-like LAN: ~100 µs per message, ~1 µs per row.
    pub fn lan() -> Self {
        LatencyModel { per_message: Duration::from_micros(100), per_row: Duration::from_micros(1) }
    }

    /// A high-speed interconnect (the paper's preferred option): ~10 µs per
    /// message, ~100 ns per row.
    pub fn fast_interconnect() -> Self {
        LatencyModel { per_message: Duration::from_micros(10), per_row: Duration::from_nanos(100) }
    }

    /// Total cost of moving `rows` rows in one message.
    pub fn cost(&self, rows: usize) -> Duration {
        self.per_message + self.per_row * rows as u32
    }
}

/// Aggregate transfer statistics for a cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Cross-node messages sent.
    pub messages: u64,
    /// Rows moved between nodes.
    pub rows: u64,
    /// Total simulated socket time.
    pub simulated: Duration,
}

/// One cluster node: an id plus its own database engine.
#[derive(Debug)]
pub struct Node {
    /// Node index within the cluster.
    pub id: usize,
    /// The node-local database server.
    pub engine: Engine,
}

/// A set of independent database nodes joined by a simulated interconnect.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Arc<Node>>,
    latency: LatencyModel,
    stats: Mutex<TransferStats>,
}

impl Cluster {
    /// Build a cluster of `n` nodes (`n >= 1`). Node 0 plays the role of the
    /// frontend node holding the persistent experiment data.
    pub fn new(n: usize, latency: LatencyModel) -> Self {
        assert!(n >= 1, "a cluster needs at least one node");
        Cluster {
            nodes: (0..n).map(|id| Arc::new(Node { id, engine: Engine::new() })).collect(),
            latency,
            stats: Mutex::new(TransferStats::default()),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: clusters have ≥ 1 node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shared handle to node `i`.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        &self.nodes[i]
    }

    /// The frontend node (index 0).
    pub fn frontend(&self) -> &Arc<Node> {
        &self.nodes[0]
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    /// Publicly charge one cross-node message of `rows` rows — used by
    /// upper layers that move data between nodes through their own code
    /// path (e.g. perfbase materialising an element's output vector on the
    /// consuming node).
    pub fn charge_transfer(&self, rows: usize) {
        self.charge(rows);
    }

    fn charge(&self, rows: usize) {
        let cost = self.latency.cost(rows);
        {
            let mut s = self.stats.lock();
            s.messages += 1;
            s.rows += rows as u64;
            s.simulated += cost;
        }
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }

    /// Run a query on node `src` and return the result *here* (i.e. to the
    /// caller's node `dst`), charging socket cost when `src != dst`.
    pub fn fetch(&self, src: usize, dst: usize, sql: &str) -> Result<ResultSet, DbError> {
        let rs = self.nodes[src].engine.query(sql)?;
        if src != dst {
            self.charge(rs.len());
        }
        Ok(rs)
    }

    /// Copy a whole table from node `src` to node `dst` under `dst_name`
    /// (replacing it if present), charging socket cost when crossing nodes.
    /// Returns the number of rows moved.
    pub fn copy_table(
        &self,
        src: usize,
        src_name: &str,
        dst: usize,
        dst_name: &str,
    ) -> Result<usize, DbError> {
        let (schema, rows) = self.nodes[src].engine.read_snapshot(src_name)?;
        let n = rows.len();
        if src != dst {
            self.charge(n);
        }
        let dst_engine = &self.nodes[dst].engine;
        dst_engine.drop_table(dst_name, true)?;
        dst_engine.create_table_opts(dst_name, schema, true, false)?;
        dst_engine.insert_rows(dst_name, rows)?;
        Ok(n)
    }

    /// Materialise a result set as a TEMP table on node `dst`. This is how a
    /// query element stores its output vector "on the node on which the
    /// query element(s) run which use this data for their input".
    pub fn materialize(
        &self,
        dst: usize,
        table: &str,
        rs: &ResultSet,
    ) -> Result<(), DbError> {
        let schema = infer_schema(rs.column_names(), rs.rows())?;
        let engine = &self.nodes[dst].engine;
        engine.drop_table(table, true)?;
        engine.create_table_opts(table, schema, true, false)?;
        engine.insert_rows(table, rs.rows().to_vec())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn nodes_are_independent() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0).engine.execute("CREATE TABLE t (x INTEGER)").unwrap();
        assert!(c.node(0).engine.has_table("t"));
        assert!(!c.node(1).engine.has_table("t"));
    }

    #[test]
    fn copy_table_moves_rows_and_counts_stats() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0).engine.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.node(0).engine.execute("INSERT INTO t VALUES (1),(2),(3)").unwrap();
        let n = c.copy_table(0, "t", 1, "t_copy").unwrap();
        assert_eq!(n, 3);
        assert_eq!(c.node(1).engine.row_count("t_copy").unwrap(), 3);
        let s = c.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.rows, 3);
    }

    #[test]
    fn same_node_copy_is_free() {
        let c = Cluster::new(1, LatencyModel::lan());
        c.node(0).engine.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.node(0).engine.execute("INSERT INTO t VALUES (1)").unwrap();
        c.copy_table(0, "t", 0, "t2").unwrap();
        assert_eq!(c.stats().messages, 0);
    }

    #[test]
    fn fetch_remote_charges() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0).engine.execute("CREATE TABLE t (x INTEGER)").unwrap();
        c.node(0).engine.execute("INSERT INTO t VALUES (1),(2)").unwrap();
        let rs = c.fetch(0, 1, "SELECT x FROM t").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(c.stats().messages, 1);
        // Local fetch: no message.
        c.fetch(0, 0, "SELECT x FROM t").unwrap();
        assert_eq!(c.stats().messages, 1);
    }

    #[test]
    fn materialize_result_set() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0).engine.execute("CREATE TABLE t (x INTEGER, s TEXT)").unwrap();
        c.node(0).engine.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        let rs = c.node(0).engine.query("SELECT x, s FROM t").unwrap();
        c.materialize(1, "out", &rs).unwrap();
        let got = c.node(1).engine.query("SELECT x, s FROM out").unwrap();
        assert_eq!(got.rows()[0], vec![Value::Int(1), Value::Text("a".into())]);
        // materialize is temp: cleanup drops it
        c.node(1).engine.drop_temp_tables();
        assert!(!c.node(1).engine.has_table("out"));
    }

    #[test]
    fn latency_cost_arithmetic() {
        let m = LatencyModel::lan();
        assert_eq!(m.cost(0), Duration::from_micros(100));
        assert_eq!(m.cost(1000), Duration::from_micros(1100));
        assert_eq!(LatencyModel::none().cost(1_000_000), Duration::ZERO);
    }
}
