//! Simulated database cluster (paper §4.3, Fig. 3) with run-data sharding.
//!
//! The paper proposes distributing perfbase query elements across cluster
//! nodes, each running an independent database server; an element's output
//! table lives **on the node that consumes it**, and remote access happens
//! "via sockets, possibly using a high-speed interconnection network".
//!
//! We do not have a cluster, so this module simulates one: every [`Node`]
//! owns an independent [`Engine`], and all cross-node data movement goes
//! through [`Cluster::copy_table`] / [`Cluster::fetch`] /
//! [`Cluster::materialize`], which charge a configurable socket-latency
//! cost (a real `thread::sleep`, so wall-clock benchmarks see it) and
//! record transfer statistics. Same-node access is free, exactly like the
//! paper's placement argument.
//!
//! Beyond element-level placement, the cluster supports **data-level
//! sharding**: a [`ShardMap`] deterministically assigns each run id to an
//! owning node, so the per-run `pb_rundata_<id>` tables can be distributed
//! across the cluster and aggregations can execute where the data lives
//! (Fig. 3 at data scale). The frontend node (index 0) always keeps the
//! run index (`pb_runs`) and the shard map itself; [`Cluster::with_frontend`]
//! builds a cluster whose node 0 *is* an existing experiment engine, so
//! the same database can be queried sharded or unsharded.
#![warn(missing_docs)]

use crate::engine::{Engine, ResultSet};
use crate::error::DbError;
use crate::exec::infer_schema;
use crate::sync::Mutex;
use crate::wal::{IoFailpoint, RecoveryReport, SyncPolicy, Wal, WalOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Cost model for the simulated interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed cost per message (connection + round trip).
    pub per_message: Duration,
    /// Marginal cost per transferred row.
    pub per_row: Duration,
}

impl LatencyModel {
    /// No simulated latency (unit tests).
    pub fn none() -> Self {
        LatencyModel {
            per_message: Duration::ZERO,
            per_row: Duration::ZERO,
        }
    }

    /// A gigabit-Ethernet-like LAN: ~100 µs per message, ~1 µs per row.
    pub fn lan() -> Self {
        LatencyModel {
            per_message: Duration::from_micros(100),
            per_row: Duration::from_micros(1),
        }
    }

    /// A high-speed interconnect (the paper's preferred option): ~10 µs per
    /// message, ~100 ns per row.
    pub fn fast_interconnect() -> Self {
        LatencyModel {
            per_message: Duration::from_micros(10),
            per_row: Duration::from_nanos(100),
        }
    }

    /// Total cost of moving `rows` rows in one message.
    pub fn cost(&self, rows: usize) -> Duration {
        self.per_message + self.per_row * rows as u32
    }
}

/// Aggregate transfer statistics for a cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Cross-node messages sent.
    pub messages: u64,
    /// Rows moved between nodes.
    pub rows: u64,
    /// Total simulated socket time.
    pub simulated: Duration,
}

impl TransferStats {
    /// Traffic accrued since `earlier` (a snapshot taken from the same
    /// cluster) — the per-query accounting used by
    /// `QueryOutcome::transfer`.
    pub fn delta_since(&self, earlier: &TransferStats) -> TransferStats {
        TransferStats {
            messages: self.messages.saturating_sub(earlier.messages),
            rows: self.rows.saturating_sub(earlier.rows),
            simulated: self.simulated.saturating_sub(earlier.simulated),
        }
    }
}

/// Deterministic placement of run ids onto cluster nodes.
///
/// New runs are placed by an FNV-1a hash of the run id modulo the node
/// count; every placement decision is **recorded**, and recorded
/// assignments always win over the hash. That makes the map *stable under
/// node-count changes*: reattaching a grown cluster keeps every existing
/// run where its data already lives (only ids whose recorded node no
/// longer exists are re-hashed), so growing from 2 to 4 nodes never
/// reshuffles old data.
#[derive(Debug)]
pub struct ShardMap {
    nodes: usize,
    /// Replica copies each shard keeps beyond its primary (0 = none).
    replicas: usize,
    assigned: Mutex<HashMap<i64, usize>>,
    /// Failover redirects: a retired (dead) node and the node promoted in
    /// its place. [`ShardMap::place`] follows these so a *new* run id
    /// whose hash lands on a dead node is assigned to its successor.
    retired: Mutex<HashMap<usize, usize>>,
}

impl ShardMap {
    /// An empty map over `nodes` nodes (`nodes >= 1`).
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 1, "a shard map needs at least one node");
        ShardMap {
            nodes,
            replicas: 0,
            assigned: Mutex::new(HashMap::new()),
            retired: Mutex::new(HashMap::new()),
        }
    }

    /// The same map, with each shard keeping `replicas` replica copies on
    /// nodes distinct from the primary (capped by the backend count — see
    /// [`crate::repl::replica_nodes`]).
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Replica copies per shard (0 = unreplicated).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The nodes holding replica copies of `primary`'s shards.
    pub fn replica_nodes(&self, primary: usize) -> Vec<usize> {
        crate::repl::replica_nodes(primary, self.nodes, self.replicas)
    }

    /// Fail node `from` over to node `to`: every run assigned to `from` is
    /// reassigned to `to`, and a redirect is recorded so future hash
    /// placements that land on `from` also resolve to `to`. Returns the
    /// run ids that moved, sorted.
    pub fn reassign_node(&self, from: usize, to: usize) -> Vec<i64> {
        let mut moved = Vec::new();
        {
            let mut a = self.assigned.lock();
            for (&run_id, node) in a.iter_mut() {
                if *node == from {
                    *node = to;
                    moved.push(run_id);
                }
            }
        }
        self.retired.lock().insert(from, to);
        moved.sort_unstable();
        moved
    }

    /// A map over `nodes` nodes seeded with previously recorded
    /// assignments (e.g. reloaded from the frontend's `pb_shards` table).
    /// Assignments pointing at a node index `>= nodes` are dropped and
    /// will be re-hashed on the next [`ShardMap::place`].
    pub fn with_assignments(
        nodes: usize,
        existing: impl IntoIterator<Item = (i64, usize)>,
    ) -> Self {
        let map = ShardMap::new(nodes);
        {
            let mut a = map.assigned.lock();
            for (run_id, node) in existing {
                if node < nodes {
                    a.insert(run_id, node);
                }
            }
        }
        map
    }

    /// Number of nodes this map distributes over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The owning node for `run_id`, assigning (and recording) one via the
    /// deterministic hash if the run was never placed before. Hash
    /// placements landing on a failed-over node follow its recorded
    /// redirect (chains allowed: two successive failovers compose).
    pub fn place(&self, run_id: i64) -> usize {
        let node = {
            let mut a = self.assigned.lock();
            match a.get(&run_id) {
                Some(&n) => n,
                None => {
                    let n = self.resolve_retired(Self::hash_node(run_id, self.nodes));
                    a.insert(run_id, n);
                    n
                }
            }
        };
        // Recorded assignments were rewritten by reassign_node, but guard
        // against a record that raced in pointing at a retired node.
        self.resolve_retired(node)
    }

    /// Follow failover redirects until a live (never-retired) node is
    /// reached; chains compose across successive failovers.
    fn resolve_retired(&self, mut node: usize) -> usize {
        let retired = self.retired.lock();
        let mut hops = 0;
        while let Some(&to) = retired.get(&node) {
            node = to;
            hops += 1;
            if hops > self.nodes {
                break; // defensive: a redirect cycle
            }
        }
        node
    }

    /// The recorded owner of `run_id`, if it was ever placed.
    pub fn node_of(&self, run_id: i64) -> Option<usize> {
        self.assigned.lock().get(&run_id).copied()
    }

    /// Drop the recorded assignment for `run_id` (run deletion).
    pub fn remove(&self, run_id: i64) {
        self.assigned.lock().remove(&run_id);
    }

    /// All recorded `(run_id, node)` assignments, sorted by run id.
    pub fn assignments(&self) -> Vec<(i64, usize)> {
        let mut v: Vec<(i64, usize)> = self.assigned.lock().iter().map(|(&r, &n)| (r, n)).collect();
        v.sort_unstable();
        v
    }

    /// The pure hash placement (FNV-1a over the run id's bytes, modulo
    /// `nodes`) — deterministic across processes and platforms.
    pub fn hash_node(run_id: i64, nodes: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in run_id.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % nodes as u64) as usize
    }
}

/// One cluster node: an id plus its own database engine.
#[derive(Debug)]
pub struct Node {
    /// Node index within the cluster.
    pub id: usize,
    /// The node-local database server. Shared (`Arc`) so node 0 can be an
    /// existing experiment engine (see [`Cluster::with_frontend`]).
    pub engine: Arc<Engine>,
}

/// A set of independent database nodes joined by a simulated interconnect.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Arc<Node>>,
    latency: LatencyModel,
    stats: Mutex<TransferStats>,
    /// One whole-node kill switch per node, distinct from any failpoint
    /// shared through [`WalOptions`]: tripping `failpoints[i]` models the
    /// death of node `i` alone, while the WAL-options failpoint may be
    /// shared by every node's log (the crash-consistency suites rely on
    /// that sharing). [`Cluster::node_wal_options`] builds per-node WAL
    /// options around these, so killing a node also kills its log.
    failpoints: Vec<Arc<IoFailpoint>>,
}

impl Cluster {
    /// Build a cluster of `n` fresh nodes (`n >= 1`). Node 0 plays the role
    /// of the frontend node holding the persistent experiment data.
    pub fn new(n: usize, latency: LatencyModel) -> Self {
        Self::build(n, latency, None)
    }

    /// Build a cluster whose frontend node (index 0) is `frontend` — an
    /// existing engine already holding experiment data — plus `n - 1`
    /// fresh backend nodes. This is the entry point for data sharding: the
    /// experiment database stays where it is and `pb_rundata_<id>` tables
    /// migrate to their owning nodes.
    pub fn with_frontend(frontend: Arc<Engine>, n: usize, latency: LatencyModel) -> Self {
        Self::build(n, latency, Some(frontend))
    }

    fn build(n: usize, latency: LatencyModel, frontend: Option<Arc<Engine>>) -> Self {
        assert!(n >= 1, "a cluster needs at least one node");
        let nodes = (0..n)
            .map(|id| {
                let engine = match (&frontend, id) {
                    (Some(f), 0) => f.clone(),
                    _ => Arc::new(Engine::new()),
                };
                Arc::new(Node { id, engine })
            })
            .collect();
        let failpoints = (0..n).map(|_| Arc::new(IoFailpoint::none())).collect();
        Cluster {
            nodes,
            latency,
            stats: Mutex::new(TransferStats::default()),
            failpoints,
        }
    }

    /// The whole-node kill switch for node `i`.
    pub fn node_failpoint(&self, i: usize) -> &Arc<IoFailpoint> {
        &self.failpoints[i]
    }

    /// Is node `i` still up? (Its kill switch has not been tripped.)
    pub fn node_alive(&self, i: usize) -> bool {
        !self.failpoints[i].is_crashed()
    }

    /// Kill node `i`: every further fetch from it fails, replication stops
    /// shipping to (or from) it, and — when its WAL was attached through
    /// [`Cluster::node_wal_options`] — its log dies with it.
    pub fn kill_node(&self, i: usize) {
        self.failpoints[i].kill();
    }

    /// WAL options wired to node `i`'s kill switch: a log attached with
    /// these dies when [`Cluster::kill_node`] trips the node.
    pub fn node_wal_options(&self, i: usize, sync: SyncPolicy) -> WalOptions {
        WalOptions {
            sync,
            failpoint: self.failpoints[i].clone(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: clusters have ≥ 1 node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shared handle to node `i`.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        &self.nodes[i]
    }

    /// The frontend node (index 0).
    pub fn frontend(&self) -> &Arc<Node> {
        &self.nodes[0]
    }

    /// The interconnect cost model this cluster charges.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> TransferStats {
        *self.stats.lock()
    }

    /// Reset transfer statistics to zero (e.g. after the uncharged initial
    /// shard placement, so stats reflect query traffic only).
    pub fn reset_stats(&self) {
        *self.stats.lock() = TransferStats::default();
    }

    /// Publicly charge one cross-node message of `rows` rows — used by
    /// upper layers that move data between nodes through their own code
    /// path (e.g. perfbase materialising an element's output vector on the
    /// consuming node).
    pub fn charge_transfer(&self, rows: usize) {
        self.charge(rows);
    }

    /// Charge a full table shipment: one header/schema round-trip message
    /// plus one payload message of `rows` rows. This is what
    /// [`Cluster::copy_table`] and [`Cluster::materialize`] charge, and
    /// what import-time routing of a new run's data to its owning node
    /// costs.
    pub fn charge_shipment(&self, rows: usize) {
        obs::incr(obs::Counter::ClusterShipments);
        obs::record(obs::Hist::ShipmentRows, rows as u64);
        self.charge(0); // header/schema round trip
        self.charge(rows);
    }

    fn charge(&self, rows: usize) {
        obs::incr(obs::Counter::ClusterMessages);
        obs::add(obs::Counter::ClusterRowsShipped, rows as u64);
        let cost = self.latency.cost(rows);
        {
            let mut s = self.stats.lock();
            s.messages += 1;
            s.rows += rows as u64;
            s.simulated += cost;
        }
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }

    /// Attach one write-ahead log per node, stored as `node<i>.wal` under
    /// `dir`, recovering each node's state first: if a checkpoint dump
    /// (`node<i>.sql`) exists and the node's engine is still empty, the
    /// dump is loaded, then every valid WAL frame is replayed and any torn
    /// tail truncated. Nodes that already carry a WAL (typically the
    /// frontend, opened durably by the experiment layer) are skipped —
    /// their slot in the returned report vector is `None`.
    pub fn attach_wal_dir(
        &self,
        dir: &Path,
        opts: &WalOptions,
    ) -> Result<Vec<Option<RecoveryReport>>, DbError> {
        self.attach_wal_dir_with(dir, |_| opts.clone())
    }

    /// Like [`Cluster::attach_wal_dir`], but with per-node WAL options —
    /// the replication suites pass `|i| cluster.node_wal_options(i, sync)`
    /// so each node's log is wired to that node's own kill switch.
    pub fn attach_wal_dir_with(
        &self,
        dir: &Path,
        opts_for: impl Fn(usize) -> WalOptions,
    ) -> Result<Vec<Option<RecoveryReport>>, DbError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| DbError::Io(format!("create {}: {e}", dir.display())))?;
        let mut reports = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            if node.engine.has_wal() {
                reports.push(None);
                continue;
            }
            let dump_path = self.node_dump_path(dir, node.id);
            let mut ckpt_seq = 0;
            if dump_path.exists() && node.engine.table_names().is_empty() {
                let script = std::fs::read_to_string(&dump_path)
                    .map_err(|e| DbError::Io(format!("read {}: {e}", dump_path.display())))?;
                // The dump's recorded checkpoint sequence tells recovery
                // which log frames it already reflects (a crash between
                // the dump rename and the compaction leaves them in the
                // log too — they must not be double-applied).
                ckpt_seq = crate::dump::read_checkpoint_seq(&script).unwrap_or(0);
                node.engine.execute_script(&script)?;
            }
            let (wal, statements, mut report) =
                Wal::open_recover(&self.node_wal_path(dir, node.id), opts_for(node.id))?;
            node.engine
                .recover_replay(&statements, ckpt_seq, &mut report);
            node.engine.attach_wal(wal);
            reports.push(Some(report));
        }
        Ok(reports)
    }

    /// Checkpoint every WAL-attached node: write its dump to `node<i>.sql`
    /// under `dir` and compact its log. Returns total frames dropped.
    pub fn checkpoint_wals(&self, dir: &Path) -> Result<u64, DbError> {
        let mut dropped = 0;
        for node in &self.nodes {
            if node.engine.has_wal() {
                dropped += node.engine.checkpoint(&self.node_dump_path(dir, node.id))?;
            }
        }
        Ok(dropped)
    }

    /// Force every node's pending WAL frames to stable storage — backend
    /// nodes first, the frontend (node 0) last. The frontend's log carries
    /// the publishing `pb_runs` insert, which must never become durable
    /// before the data frames it references on the backends; syncing in
    /// this order preserves the "data first, `pb_runs` last" write-order
    /// contract across the independent per-node logs. (Group-commit
    /// windows on independent logs cannot guarantee cross-log ordering in
    /// between syncs — this barrier is where the ordering is enforced.)
    pub fn sync_wals(&self) -> Result<(), DbError> {
        for node in self.nodes.iter().rev() {
            node.engine.wal_sync()?;
        }
        Ok(())
    }

    /// The WAL file for node `id` under `dir`.
    pub fn node_wal_path(&self, dir: &Path, id: usize) -> PathBuf {
        dir.join(format!("node{id}.wal"))
    }

    /// The checkpoint dump for node `id` under `dir`.
    pub fn node_dump_path(&self, dir: &Path, id: usize) -> PathBuf {
        dir.join(format!("node{id}.sql"))
    }

    /// Run a query on node `src` and return the result *here* (i.e. to the
    /// caller's node `dst`), charging socket cost when `src != dst`.
    pub fn fetch(&self, src: usize, dst: usize, sql: &str) -> Result<ResultSet, DbError> {
        if !self.node_alive(src) {
            return Err(DbError::Io(format!("node {src} is down")));
        }
        let mut span = obs::span("cluster.fetch");
        let rs = self.nodes[src].engine.query(sql)?;
        span.annotate(|| format!("src={src} dst={dst} rows={}", rs.len()));
        if src != dst {
            self.charge(rs.len());
        }
        Ok(rs)
    }

    /// Copy a whole table from node `src` to node `dst` under `dst_name`
    /// (replacing it if present). Crossing nodes charges a header/schema
    /// round trip plus the row payload (two messages — so even an empty
    /// table is not free). Returns the number of rows moved.
    pub fn copy_table(
        &self,
        src: usize,
        src_name: &str,
        dst: usize,
        dst_name: &str,
    ) -> Result<usize, DbError> {
        let (schema, rows) = self.nodes[src].engine.read_snapshot(src_name)?;
        let n = rows.len();
        let mut span = obs::span("cluster.copy_table");
        span.annotate(|| format!("src={src} dst={dst} rows={n}"));
        if src != dst {
            self.charge_shipment(n);
        }
        let dst_engine = &self.nodes[dst].engine;
        dst_engine.drop_table(dst_name, true)?;
        dst_engine.create_table_opts(dst_name, schema, true, false)?;
        dst_engine.insert_rows(dst_name, rows)?;
        Ok(n)
    }

    /// Materialise a result set (produced on node `src`) as a TEMP table on
    /// node `dst`. This is how a query element stores its output vector "on
    /// the node on which the query element(s) run which use this data for
    /// their input". Crossing nodes charges a header/schema round trip plus
    /// the row payload, like [`Cluster::copy_table`].
    pub fn materialize(
        &self,
        src: usize,
        dst: usize,
        table: &str,
        rs: &ResultSet,
    ) -> Result<(), DbError> {
        let mut span = obs::span("cluster.materialize");
        span.annotate(|| format!("src={src} dst={dst} rows={}", rs.len()));
        if src != dst {
            self.charge_shipment(rs.len());
        }
        let schema = infer_schema(rs.column_names(), rs.rows())?;
        let engine = &self.nodes[dst].engine;
        engine.drop_table(table, true)?;
        engine.create_table_opts(table, schema, true, false)?;
        engine.insert_rows(table, rs.rows().to_vec())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn nodes_are_independent() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0)
            .engine
            .execute("CREATE TABLE t (x INTEGER)")
            .unwrap();
        assert!(c.node(0).engine.has_table("t"));
        assert!(!c.node(1).engine.has_table("t"));
    }

    #[test]
    fn with_frontend_shares_engine() {
        let e = Arc::new(Engine::new());
        e.execute("CREATE TABLE t (x INTEGER)").unwrap();
        let c = Cluster::with_frontend(e.clone(), 3, LatencyModel::none());
        assert_eq!(c.len(), 3);
        assert!(Arc::ptr_eq(&c.frontend().engine, &e));
        assert!(c.node(0).engine.has_table("t"));
        assert!(!c.node(1).engine.has_table("t"));
        assert!(!c.node(2).engine.has_table("t"));
    }

    #[test]
    fn copy_table_moves_rows_and_counts_stats() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0)
            .engine
            .execute("CREATE TABLE t (x INTEGER)")
            .unwrap();
        c.node(0)
            .engine
            .execute("INSERT INTO t VALUES (1),(2),(3)")
            .unwrap();
        let n = c.copy_table(0, "t", 1, "t_copy").unwrap();
        assert_eq!(n, 3);
        assert_eq!(c.node(1).engine.row_count("t_copy").unwrap(), 3);
        let s = c.stats();
        // Header/schema round trip + row payload.
        assert_eq!(s.messages, 2);
        assert_eq!(s.rows, 3);
    }

    #[test]
    fn empty_table_copy_still_charges_header() {
        let c = Cluster::new(2, LatencyModel::lan());
        c.node(0)
            .engine
            .execute("CREATE TABLE t (x INTEGER)")
            .unwrap();
        c.copy_table(0, "t", 1, "t_copy").unwrap();
        let s = c.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.rows, 0);
        // Two messages cost two per-message latencies even with no rows.
        assert_eq!(s.simulated, LatencyModel::lan().per_message * 2);
    }

    #[test]
    fn same_node_copy_is_free() {
        let c = Cluster::new(1, LatencyModel::lan());
        c.node(0)
            .engine
            .execute("CREATE TABLE t (x INTEGER)")
            .unwrap();
        c.node(0)
            .engine
            .execute("INSERT INTO t VALUES (1)")
            .unwrap();
        c.copy_table(0, "t", 0, "t2").unwrap();
        assert_eq!(c.stats().messages, 0);
    }

    #[test]
    fn fetch_remote_charges() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0)
            .engine
            .execute("CREATE TABLE t (x INTEGER)")
            .unwrap();
        c.node(0)
            .engine
            .execute("INSERT INTO t VALUES (1),(2)")
            .unwrap();
        let rs = c.fetch(0, 1, "SELECT x FROM t").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(c.stats().messages, 1);
        // Local fetch: no message.
        c.fetch(0, 0, "SELECT x FROM t").unwrap();
        assert_eq!(c.stats().messages, 1);
    }

    #[test]
    fn materialize_result_set() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0)
            .engine
            .execute("CREATE TABLE t (x INTEGER, s TEXT)")
            .unwrap();
        c.node(0)
            .engine
            .execute("INSERT INTO t VALUES (1, 'a')")
            .unwrap();
        let rs = c.node(0).engine.query("SELECT x, s FROM t").unwrap();
        c.materialize(0, 1, "out", &rs).unwrap();
        let got = c.node(1).engine.query("SELECT x, s FROM out").unwrap();
        assert_eq!(got.rows()[0], vec![Value::Int(1), Value::Text("a".into())]);
        // Off-node materialisation: header + payload messages, 1 row.
        let s = c.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.rows, 1);
        // Same-node materialisation is free.
        c.materialize(1, 1, "out2", &rs).unwrap();
        assert_eq!(c.stats().messages, 2);
        // materialize is temp: cleanup drops it
        c.node(1).engine.drop_temp_tables();
        assert!(!c.node(1).engine.has_table("out"));
    }

    #[test]
    fn latency_cost_arithmetic() {
        let m = LatencyModel::lan();
        assert_eq!(m.cost(0), Duration::from_micros(100));
        assert_eq!(m.cost(1000), Duration::from_micros(1100));
        assert_eq!(LatencyModel::none().cost(1_000_000), Duration::ZERO);
    }

    #[test]
    fn stats_delta_and_reset() {
        let c = Cluster::new(2, LatencyModel::none());
        c.node(0)
            .engine
            .execute("CREATE TABLE t (x INTEGER)")
            .unwrap();
        c.node(0)
            .engine
            .execute("INSERT INTO t VALUES (1),(2)")
            .unwrap();
        c.copy_table(0, "t", 1, "a").unwrap();
        let before = c.stats();
        c.copy_table(0, "t", 1, "b").unwrap();
        let d = c.stats().delta_since(&before);
        assert_eq!(d.messages, 2);
        assert_eq!(d.rows, 2);
        c.reset_stats();
        assert_eq!(c.stats(), TransferStats::default());
    }

    #[test]
    fn per_node_wals_recover_each_node() {
        use crate::wal::SyncPolicy;
        let dir = std::env::temp_dir().join("perfbase_cluster_wal_unit");
        std::fs::remove_dir_all(&dir).ok();
        let opts = WalOptions::with_sync(SyncPolicy::Off);

        let c = Cluster::new(3, LatencyModel::none());
        let reports = c.attach_wal_dir(&dir, &opts).unwrap();
        assert!(reports.iter().all(|r| r.is_some()));
        for (i, node) in [0usize, 1, 2].into_iter().enumerate() {
            c.node(node)
                .engine
                .execute("CREATE TABLE t (x INTEGER)")
                .unwrap();
            c.node(node)
                .engine
                .execute(&format!("INSERT INTO t VALUES ({i}), ({})", i * 10))
                .unwrap();
        }
        // TEMP traffic (copy_table) must not pollute any node's log.
        c.copy_table(0, "t", 1, "t_copy").unwrap();
        c.sync_wals().unwrap();
        drop(c);

        // "Restart": fresh engines, same WAL directory.
        let c2 = Cluster::new(3, LatencyModel::none());
        let reports = c2.attach_wal_dir(&dir, &opts).unwrap();
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().frames_replayed, 2, "node {i}");
        }
        for node in 0..3 {
            let rs = c2
                .node(node)
                .engine
                .query("SELECT count(*) FROM t")
                .unwrap();
            assert_eq!(rs.rows()[0][0], Value::Int(2), "node {node}");
            assert!(
                !c2.node(node).engine.has_table("t_copy"),
                "temp copy must not recover"
            );
        }

        // Checkpoint compacts every log; a third restart loads the dumps.
        c2.checkpoint_wals(&dir).unwrap();
        assert!(c2.node(1).engine.wal_frames() == 0);
        drop(c2);
        let c3 = Cluster::new(3, LatencyModel::none());
        let reports = c3.attach_wal_dir(&dir, &opts).unwrap();
        for r in &reports {
            assert_eq!(
                r.as_ref().unwrap().frames_replayed,
                0,
                "post-checkpoint log is empty"
            );
        }
        for node in 0..3 {
            assert_eq!(c3.node(node).engine.row_count("t").unwrap(), 2);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attach_wal_dir_skips_nodes_with_wal() {
        use crate::wal::SyncPolicy;
        let dir = std::env::temp_dir().join("perfbase_cluster_wal_skip");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let opts = WalOptions::with_sync(SyncPolicy::Off);
        let frontend = Arc::new(Engine::new());
        let wal = Wal::create(&dir.join("frontend.wal"), opts.clone(), 1).unwrap();
        frontend.attach_wal(wal);
        let c = Cluster::with_frontend(frontend, 2, LatencyModel::none());
        let reports = c.attach_wal_dir(&dir, &opts).unwrap();
        assert!(reports[0].is_none(), "frontend already has a WAL");
        assert!(reports[1].is_some());
        assert!(!dir.join("node0.wal").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_map_is_deterministic() {
        let m1 = ShardMap::new(4);
        let m2 = ShardMap::new(4);
        for id in 0..64 {
            assert_eq!(m1.place(id), m2.place(id));
            assert_eq!(m1.place(id), ShardMap::hash_node(id, 4));
            assert!(m1.place(id) < 4);
        }
        // All four nodes get some share of 64 sequential ids.
        let mut used = [false; 4];
        for id in 0..64 {
            used[m1.place(id)] = true;
        }
        assert!(used.iter().all(|&u| u), "placement skews: {used:?}");
    }

    #[test]
    fn shard_map_stable_when_cluster_grows() {
        let small = ShardMap::new(2);
        let placed: Vec<(i64, usize)> = (1..=16).map(|id| (id, small.place(id))).collect();
        // Grow to 4 nodes, seeding the recorded assignments: every existing
        // run keeps its node even though the hash over 4 nodes differs.
        let grown = ShardMap::with_assignments(4, placed.clone());
        for &(id, node) in &placed {
            assert_eq!(grown.place(id), node, "run {id} moved on grow");
        }
        // A fresh run may use the whole grown cluster.
        assert_eq!(grown.place(1000), ShardMap::hash_node(1000, 4));
    }

    #[test]
    fn shard_map_rehashes_only_displaced_runs_on_shrink() {
        let big = ShardMap::new(4);
        let placed: Vec<(i64, usize)> = (1..=32).map(|id| (id, big.place(id))).collect();
        let shrunk = ShardMap::with_assignments(2, placed.clone());
        for &(id, node) in &placed {
            if node < 2 {
                assert_eq!(
                    shrunk.place(id),
                    node,
                    "run {id} moved although its node survived"
                );
            } else {
                assert_eq!(shrunk.place(id), ShardMap::hash_node(id, 2));
            }
        }
    }

    #[test]
    fn shard_map_remove_and_assignments() {
        let m = ShardMap::new(3);
        m.place(1);
        m.place(2);
        assert_eq!(m.node_of(1), Some(ShardMap::hash_node(1, 3)));
        m.remove(1);
        assert_eq!(m.node_of(1), None);
        let a = m.assignments();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].0, 2);
    }
}
