//! Aggregate functions.
//!
//! These are the data-set aggregation operators of paper §3.3.2: statistical
//! functions (`avg`, `stddev`, `variance`, `count`) and general reductions
//! (`min`, `max`, `prod`, `sum`). Keeping them inside the database engine —
//! instead of the frontend — is a deliberate perfbase design point (§4.2):
//! "this allows to use SQL database functionality for many of the operators,
//! which results in better performance than to process the data within a
//! Python script".
//!
//! NULL values are skipped, matching SQL semantics. `stddev`/`variance` use
//! the sample (n−1) definition, matching PostgreSQL's `stddev`.

use crate::value::Value;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Number of non-NULL inputs.
    Count,
    /// Numeric sum.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum (any orderable type).
    Min,
    /// Maximum (any orderable type).
    Max,
    /// Sample standard deviation.
    StdDev,
    /// Sample variance.
    Variance,
    /// Product of inputs.
    Prod,
    /// First non-NULL input (used for grouped pass-through columns).
    First,
    /// Median (buffers its inputs; an "outlook" operator beyond the
    /// paper's list).
    Median,
}

impl AggKind {
    /// Resolve an SQL function name.
    pub fn from_name(name: &str) -> Option<AggKind> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggKind::Count),
            "sum" => Some(AggKind::Sum),
            "avg" | "mean" => Some(AggKind::Avg),
            "min" => Some(AggKind::Min),
            "max" => Some(AggKind::Max),
            "stddev" | "stdev" | "stddev_samp" => Some(AggKind::StdDev),
            "variance" | "var_samp" => Some(AggKind::Variance),
            "prod" | "product" => Some(AggKind::Prod),
            "first" => Some(AggKind::First),
            "median" => Some(AggKind::Median),
            _ => None,
        }
    }

    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
            AggKind::StdDev => "stddev",
            AggKind::Variance => "variance",
            AggKind::Prod => "prod",
            AggKind::First => "first",
            AggKind::Median => "median",
        }
    }
}

/// Streaming accumulator for one aggregate over one group.
///
/// Mean/variance use Welford's online algorithm for numerical stability on
/// long runs of near-equal bandwidth samples.
#[derive(Debug, Clone)]
pub struct Accumulator {
    kind: AggKind,
    count: u64,
    mean: f64,
    m2: f64,
    sum: f64,
    prod: f64,
    best: Option<Value>,
    first: Option<Value>,
    buffered: Vec<f64>,
    non_numeric: bool,
}

impl Accumulator {
    /// Fresh accumulator for `kind`.
    pub fn new(kind: AggKind) -> Self {
        Accumulator {
            kind,
            count: 0,
            mean: 0.0,
            m2: 0.0,
            sum: 0.0,
            prod: 1.0,
            best: None,
            first: None,
            buffered: Vec::new(),
            non_numeric: false,
        }
    }

    /// Feed one value (NULLs are skipped).
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        // Only `first()` ever reads this; skipping the check for the other
        // kinds keeps a branch and a potential clone off the hot loop.
        if self.kind == AggKind::First && self.first.is_none() {
            self.first = Some(v.clone());
        }
        match self.kind {
            AggKind::Min => {
                if self.best.as_ref().is_none_or(|b| v.total_cmp(b).is_lt()) {
                    self.best = Some(v.clone());
                }
            }
            AggKind::Max => {
                if self.best.as_ref().is_none_or(|b| v.total_cmp(b).is_gt()) {
                    self.best = Some(v.clone());
                }
            }
            AggKind::Count | AggKind::First => {}
            AggKind::Median => match v.as_f64() {
                Some(x) => self.buffered.push(x),
                None => self.non_numeric = true,
            },
            _ => match v.as_f64() {
                Some(x) => {
                    self.sum += x;
                    self.prod *= x;
                    let delta = x - self.mean;
                    self.mean += delta / self.count as f64;
                    self.m2 += delta * (x - self.mean);
                }
                None => self.non_numeric = true,
            },
        }
    }

    /// Fold another accumulator (over a *later* segment of the same input)
    /// into this one. Used by the parallel segmented scan: each worker
    /// accumulates its chunk, then partials merge in chunk order. Min/max/
    /// first/count/median merge exactly; sum/avg/stddev/variance/prod are
    /// mathematically exact but may differ from the sequential result in the
    /// last float ulp because the summation order changes (mean/m2 use the
    /// standard Chan et al. pairwise Welford combination).
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.kind, other.kind);
        if other.count == 0 {
            self.non_numeric |= other.non_numeric;
            return;
        }
        if self.first.is_none() {
            self.first = other.first.clone();
        }
        match self.kind {
            AggKind::Min => {
                if let Some(ob) = &other.best {
                    if self.best.as_ref().is_none_or(|b| ob.total_cmp(b).is_lt()) {
                        self.best = Some(ob.clone());
                    }
                }
            }
            AggKind::Max => {
                if let Some(ob) = &other.best {
                    if self.best.as_ref().is_none_or(|b| ob.total_cmp(b).is_gt()) {
                        self.best = Some(ob.clone());
                    }
                }
            }
            AggKind::Count | AggKind::First => {}
            AggKind::Median => self.buffered.extend_from_slice(&other.buffered),
            _ => {
                let n1 = self.count as f64;
                let n2 = other.count as f64;
                let delta = other.mean - self.mean;
                self.mean += delta * n2 / (n1 + n2);
                self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
                self.sum += other.sum;
                self.prod *= other.prod;
            }
        }
        self.count += other.count;
        self.non_numeric |= other.non_numeric;
    }

    /// Produce the aggregate result. Empty input yields NULL (except `count`,
    /// which yields 0); non-numeric input to a numeric aggregate yields an
    /// error message.
    pub fn finish(&self) -> Result<Value, String> {
        if self.non_numeric {
            return Err(format!(
                "aggregate {}() applied to non-numeric value",
                self.kind.name()
            ));
        }
        if self.count == 0 {
            return Ok(match self.kind {
                AggKind::Count => Value::Int(0),
                _ => Value::Null,
            });
        }
        Ok(match self.kind {
            AggKind::Count => Value::Int(self.count as i64),
            AggKind::Sum => Value::Float(self.sum),
            AggKind::Avg => Value::Float(self.mean),
            AggKind::Min | AggKind::Max => self.best.clone().unwrap_or(Value::Null),
            AggKind::StdDev => {
                if self.count < 2 {
                    Value::Null
                } else {
                    Value::Float((self.m2 / (self.count as f64 - 1.0)).sqrt())
                }
            }
            AggKind::Variance => {
                if self.count < 2 {
                    Value::Null
                } else {
                    Value::Float(self.m2 / (self.count as f64 - 1.0))
                }
            }
            AggKind::Prod => Value::Float(self.prod),
            AggKind::First => self.first.clone().unwrap_or(Value::Null),
            AggKind::Median => {
                let mut xs = self.buffered.clone();
                xs.sort_by(f64::total_cmp);
                let n = xs.len();
                if n == 0 {
                    Value::Null
                } else if n % 2 == 1 {
                    Value::Float(xs[n / 2])
                } else {
                    Value::Float((xs[n / 2 - 1] + xs[n / 2]) / 2.0)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(kind: AggKind, vals: &[Value]) -> Value {
        let mut a = Accumulator::new(kind);
        for v in vals {
            a.update(v);
        }
        a.finish().unwrap()
    }

    fn floats(xs: &[f64]) -> Vec<Value> {
        xs.iter().map(|x| Value::Float(*x)).collect()
    }

    #[test]
    fn basic_stats() {
        let vals = floats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(agg(AggKind::Count, &vals), Value::Int(8));
        assert_eq!(agg(AggKind::Sum, &vals), Value::Float(40.0));
        assert_eq!(agg(AggKind::Avg, &vals), Value::Float(5.0));
        assert_eq!(agg(AggKind::Min, &vals), Value::Float(2.0));
        assert_eq!(agg(AggKind::Max, &vals), Value::Float(9.0));
        // Sample variance of this classic data set is 32/7.
        match agg(AggKind::Variance, &vals) {
            Value::Float(v) => assert!((v - 32.0 / 7.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        match agg(AggKind::StdDev, &vals) {
            Value::Float(v) => assert!((v - (32.0f64 / 7.0).sqrt()).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prod_and_first() {
        let vals = floats(&[2.0, 3.0, 4.0]);
        assert_eq!(agg(AggKind::Prod, &vals), Value::Float(24.0));
        assert_eq!(agg(AggKind::First, &vals), Value::Float(2.0));
    }

    #[test]
    fn nulls_skipped() {
        let vals = vec![Value::Null, Value::Int(3), Value::Null, Value::Int(5)];
        assert_eq!(agg(AggKind::Count, &vals), Value::Int(2));
        assert_eq!(agg(AggKind::Avg, &vals), Value::Float(4.0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(agg(AggKind::Count, &[]), Value::Int(0));
        assert_eq!(agg(AggKind::Sum, &[]), Value::Null);
        assert_eq!(agg(AggKind::Max, &[]), Value::Null);
    }

    #[test]
    fn stddev_needs_two_samples() {
        assert_eq!(agg(AggKind::StdDev, &floats(&[5.0])), Value::Null);
        assert_eq!(agg(AggKind::Variance, &floats(&[5.0])), Value::Null);
    }

    #[test]
    fn min_max_work_on_text() {
        let vals = vec![Value::Text("nfs".into()), Value::Text("ufs".into())];
        assert_eq!(agg(AggKind::Min, &vals), Value::Text("nfs".into()));
        assert_eq!(agg(AggKind::Max, &vals), Value::Text("ufs".into()));
    }

    #[test]
    fn numeric_agg_on_text_errors() {
        let mut a = Accumulator::new(AggKind::Sum);
        a.update(&Value::Text("x".into()));
        assert!(a.finish().is_err());
    }

    #[test]
    fn welford_stability() {
        // Large offset + tiny variance: naive sum-of-squares would lose it.
        let base = 1e9;
        let vals = floats(&[base + 1.0, base + 2.0, base + 3.0]);
        match agg(AggKind::Variance, &vals) {
            Value::Float(v) => assert!((v - 1.0).abs() < 1e-6, "{v}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn median_odd_even_and_nulls() {
        let odd = floats(&[5.0, 1.0, 3.0]);
        assert_eq!(agg(AggKind::Median, &odd), Value::Float(3.0));
        let even = floats(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(agg(AggKind::Median, &even), Value::Float(2.5));
        let with_null = vec![
            Value::Float(1.0),
            Value::Null,
            Value::Float(9.0),
            Value::Float(5.0),
        ];
        assert_eq!(agg(AggKind::Median, &with_null), Value::Float(5.0));
        assert_eq!(agg(AggKind::Median, &[]), Value::Null);
        // Robust against the outlier that would drag avg.
        let skew = floats(&[1.0, 1.0, 1.0, 1.0, 1000.0]);
        assert_eq!(agg(AggKind::Median, &skew), Value::Float(1.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let data = floats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, -3.5, 0.25]);
        for kind in [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::StdDev,
            AggKind::Variance,
            AggKind::Prod,
            AggKind::First,
            AggKind::Median,
        ] {
            let sequential = agg(kind, &data);
            for split in [0, 1, 3, 5, data.len()] {
                let mut left = Accumulator::new(kind);
                for v in &data[..split] {
                    left.update(v);
                }
                let mut right = Accumulator::new(kind);
                for v in &data[split..] {
                    right.update(v);
                }
                left.merge(&right);
                let merged = left.finish().unwrap();
                match (&sequential, &merged) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert!(
                            (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                            "{kind:?}: {a} vs {b}"
                        )
                    }
                    (a, b) => assert_eq!(a, b, "{kind:?} split {split}"),
                }
            }
        }
    }

    #[test]
    fn merge_propagates_non_numeric() {
        let mut a = Accumulator::new(AggKind::Sum);
        a.update(&Value::Float(1.0));
        let mut b = Accumulator::new(AggKind::Sum);
        b.update(&Value::Text("x".into()));
        a.merge(&b);
        assert!(a.finish().is_err());
    }

    #[test]
    fn name_resolution() {
        assert_eq!(AggKind::from_name("AVG"), Some(AggKind::Avg));
        assert_eq!(AggKind::from_name("stddev_samp"), Some(AggKind::StdDev));
        assert_eq!(AggKind::from_name("abs"), None);
    }
}
