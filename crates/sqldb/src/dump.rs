//! SQL dump / restore — the persistence layer of the embedded engine.
//!
//! The original perfbase delegated persistence to the PostgreSQL server.
//! Our embedded substitute persists by dumping the whole catalog as an SQL
//! script (CREATE TABLE + INSERT) and replaying it on load: human-readable,
//! trivially diffable, and it exercises the same SQL front-end as every
//! other access path. TEMP tables are never dumped.

use crate::engine::Engine;
use crate::error::DbError;
use crate::schema::Schema;
use crate::sql;
use crate::table::Row;
use crate::value::Value;
use std::fmt::Write as _;
use std::io::Write as _;

impl Engine {
    /// Serialize every non-TEMP table as an SQL script.
    pub fn dump_sql(&self) -> String {
        let temps = self.temp_table_names();
        let mut out = String::from("-- perfbase embedded database dump\n");
        for name in self.table_names() {
            if temps.contains(&name) {
                continue;
            }
            let (schema, rows) = self.read_snapshot(&name).expect("table listed");
            let handle = self.table(&name).expect("table listed");
            let guard = handle.read();
            let (indexes, columnar) = (guard.index_columns(), guard.is_columnar());
            drop(guard);
            let _ = writeln!(
                out,
                "{};",
                render_create_table(&name, &schema, false, columnar)
            );
            for chunk in rows.chunks(64) {
                if !chunk.is_empty() {
                    let _ = writeln!(out, "{};", render_insert(&name, chunk));
                }
            }
            for (ix_name, column, ordered) in indexes {
                let kind = if ordered { "ORDERED " } else { "" };
                let _ = writeln!(out, "CREATE {kind}INDEX {ix_name} ON {name} ({column});");
            }
        }
        out
    }

    /// Execute a whole `;`-separated SQL script.
    pub fn execute_script(&self, script: &str) -> Result<usize, DbError> {
        let stmts = sql::parse_script(script)?;
        let mut affected = 0;
        for s in stmts {
            affected += self.run_parsed(s)?;
        }
        Ok(affected)
    }

    /// Rebuild an engine from a dump produced by [`Engine::dump_sql`].
    pub fn from_sql_dump(script: &str) -> Result<Engine, DbError> {
        let e = Engine::new();
        e.execute_script(script)?;
        Ok(e)
    }

    /// Persist to a file, atomically: the dump is written to a sibling tmp
    /// file, fsynced, then renamed into place — a crash mid-save leaves the
    /// previous dump intact (the WAL checkpoint path depends on this).
    pub fn save_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.save_to_file_with_seq(path, None)
    }

    /// [`Engine::save_to_file`], optionally stamping the WAL checkpoint
    /// sequence into the dump header. A dump written with `Some(seq)`
    /// declares "every log frame with a sequence number below `seq` is
    /// already reflected here" — recovery uses it to skip those frames
    /// when a crash lands between the dump rename and the log compaction,
    /// which would otherwise double-apply every one of them.
    pub(crate) fn save_to_file_with_seq(
        &self,
        path: &std::path::Path,
        ckpt_seq: Option<u64>,
    ) -> std::io::Result<()> {
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let mut f = std::fs::File::create(&tmp)?;
        let mut script = self.dump_sql();
        if let Some(seq) = ckpt_seq {
            let header_end = script.find('\n').map_or(script.len(), |i| i + 1);
            script.insert_str(header_end, &format!("{CKPT_SEQ_MARKER}{seq}\n"));
        }
        f.write_all(script.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    }

    /// Load from a file written by [`Engine::save_to_file`].
    pub fn load_from_file(path: &std::path::Path) -> Result<Engine, DbError> {
        let script = std::fs::read_to_string(path)
            .map_err(|e| DbError::Execution(format!("cannot read {}: {e}", path.display())))?;
        Engine::from_sql_dump(&script)
    }
}

/// Header comment a checkpoint stamps into the dump: the sequence number
/// the WAL's *next* frame will carry at checkpoint time. Frames below it
/// are reflected in the dump and must not be replayed on recovery.
pub(crate) const CKPT_SEQ_MARKER: &str = "-- wal-checkpoint-seq: ";

/// The checkpoint sequence recorded in a dump script, if any. Only the
/// leading comment lines are scanned — the marker can never be confused
/// with data.
pub(crate) fn read_checkpoint_seq(script: &str) -> Option<u64> {
    script
        .lines()
        .take_while(|l| l.starts_with("--"))
        .find_map(|l| l.strip_prefix(CKPT_SEQ_MARKER))
        .and_then(|s| s.trim().parse().ok())
}

/// Render a `CREATE TABLE` statement for a schema (no trailing `;`).
/// Shared by the dump and the WAL, which logs programmatic DDL as SQL text;
/// `columnar` appends `USING COLUMNAR` so the storage layout round-trips
/// through dumps, checkpoints, WAL replay and cluster replication alike.
pub(crate) fn render_create_table(
    name: &str,
    schema: &Schema,
    if_not_exists: bool,
    columnar: bool,
) -> String {
    let cols: Vec<String> = schema
        .columns
        .iter()
        .map(|c| {
            format!(
                "{} {}{}",
                c.name,
                c.dtype.sql_name(),
                if c.nullable { "" } else { " NOT NULL" }
            )
        })
        .collect();
    format!(
        "CREATE TABLE {}{name} ({}){}",
        if if_not_exists { "IF NOT EXISTS " } else { "" },
        cols.join(", "),
        if columnar { " USING COLUMNAR" } else { "" }
    )
}

/// Render a multi-row `INSERT` statement (no trailing `;`).
pub(crate) fn render_insert(name: &str, rows: &[Row]) -> String {
    let tuples: Vec<String> = rows
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.iter().map(dump_literal).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    format!("INSERT INTO {name} VALUES {}", tuples.join(", "))
}

/// Literal form that parses back to the identical value (timestamps stay
/// integers and are re-coerced by the column type on insert). Text holding
/// control characters is emitted as an `E'...'` escaped literal so every
/// statement — dump line or WAL frame — stays on a single line.
pub(crate) fn dump_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.is_finite() {
                format!("{f:?}")
            } else {
                "NULL".into()
            }
        }
        Value::Text(s) => {
            if s.contains(['\n', '\r', '\t', '\0']) {
                let mut out = String::with_capacity(s.len() + 4);
                out.push_str("E'");
                for ch in s.chars() {
                    match ch {
                        '\\' => out.push_str("\\\\"),
                        '\'' => out.push_str("''"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        '\0' => out.push_str("\\0"),
                        other => out.push(other),
                    }
                }
                out.push('\'');
                out
            } else {
                format!("'{}'", s.replace('\'', "''"))
            }
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.into(),
        Value::Timestamp(t) => t.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Engine {
        let e = Engine::new();
        e.execute(
            "CREATE TABLE runs (id INTEGER NOT NULL, fs TEXT, bw FLOAT, ok BOOLEAN, at TIMESTAMP)",
        )
        .unwrap();
        e.execute(
            "INSERT INTO runs VALUES \
             (1, 'ufs', 214.516, TRUE, 1101234630), \
             (2, NULL, NULL, FALSE, 0), \
             (3, 'it''s;tricky', -0.5, TRUE, 100)",
        )
        .unwrap();
        e.execute("CREATE TEMP TABLE scratch (x INTEGER)").unwrap();
        e
    }

    #[test]
    fn dump_restore_roundtrip() {
        let e = sample();
        let dump = e.dump_sql();
        let e2 = Engine::from_sql_dump(&dump).unwrap();
        let a = e.query("SELECT * FROM runs ORDER BY id").unwrap();
        let b = e2.query("SELECT * FROM runs ORDER BY id").unwrap();
        assert_eq!(a, b);
        // And the restored engine dumps identically (fixpoint).
        assert_eq!(dump, e2.dump_sql());
    }

    #[test]
    fn temp_tables_not_dumped() {
        let dump = sample().dump_sql();
        assert!(!dump.contains("scratch"));
    }

    #[test]
    fn schema_survives() {
        let e2 = Engine::from_sql_dump(&sample().dump_sql()).unwrap();
        let (schema, _) = e2.read_snapshot("runs").unwrap();
        assert!(!schema.columns[0].nullable);
        assert_eq!(schema.columns[4].dtype, crate::DataType::Timestamp);
    }

    #[test]
    fn tricky_text_with_semicolons_and_quotes() {
        let e2 = Engine::from_sql_dump(&sample().dump_sql()).unwrap();
        let rs = e2.query("SELECT fs FROM runs WHERE id = 3").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Text("it's;tricky".into()));
    }

    #[test]
    fn file_persistence() {
        let dir = std::env::temp_dir().join("perfbase_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.sql");
        sample().save_to_file(&path).unwrap();
        let e2 = Engine::load_from_file(&path).unwrap();
        assert_eq!(e2.row_count("runs").unwrap(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn indexes_roundtrip() {
        let e = sample();
        e.execute("CREATE INDEX ix_runs_id ON runs (id)").unwrap();
        let dump = e.dump_sql();
        assert!(dump.contains("CREATE INDEX ix_runs_id ON runs (id);"));
        let e2 = Engine::from_sql_dump(&dump).unwrap();
        let rs = e2.query("SELECT fs FROM runs WHERE id = 1").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Text("ufs".into()));
        // Fixpoint: the restored engine dumps the index too.
        assert_eq!(dump, e2.dump_sql());
    }

    #[test]
    fn ordered_indexes_roundtrip() {
        let e = sample();
        e.execute("CREATE ORDERED INDEX ix_runs_bw ON runs (bw)")
            .unwrap();
        e.execute("CREATE INDEX ix_runs_id ON runs (id)").unwrap();
        let dump = e.dump_sql();
        assert!(dump.contains("CREATE ORDERED INDEX ix_runs_bw ON runs (bw);"));
        assert!(dump.contains("CREATE INDEX ix_runs_id ON runs (id);"));
        let e2 = Engine::from_sql_dump(&dump).unwrap();
        // The ordered flag survives the round trip (and dumps identically).
        let cols = e2.table("runs").unwrap().read().index_columns();
        assert!(cols.contains(&("ix_runs_bw".to_string(), "bw".to_string(), true)));
        assert!(cols.contains(&("ix_runs_id".to_string(), "id".to_string(), false)));
        assert_eq!(dump, e2.dump_sql());
    }

    #[test]
    fn text_with_newlines_and_quotes_roundtrips_on_one_line() {
        let e = Engine::new();
        e.execute("CREATE TABLE notes (id INTEGER, body TEXT)")
            .unwrap();
        let nasty = [
            "line one\nline two",
            "quote ' then\nnewline",
            "tab\there",
            "cr\rlf\n mix",
            "back\\slash and \\n literal",
            "''\n''",
            "trailing newline\n",
        ];
        for (i, s) in nasty.iter().enumerate() {
            e.insert_rows(
                "notes",
                vec![vec![Value::Int(i as i64), Value::Text(s.to_string())]],
            )
            .unwrap();
        }
        let dump = e.dump_sql();
        // Every dumped statement occupies exactly one line: each line of the
        // dump (minus the header comment) ends with ';' and parses alone.
        for line in dump.lines().skip(1) {
            assert!(
                line.ends_with(';'),
                "multi-line statement in dump: {line:?}"
            );
            sql::parse_statement(line).unwrap();
        }
        let e2 = Engine::from_sql_dump(&dump).unwrap();
        let rs = e2.query("SELECT id, body FROM notes ORDER BY id").unwrap();
        for (i, s) in nasty.iter().enumerate() {
            assert_eq!(rs.rows()[i][1], Value::Text(s.to_string()), "row {i}");
        }
        // Fixpoint: the restored engine dumps identically.
        assert_eq!(dump, e2.dump_sql());
    }

    #[test]
    fn columnar_layout_roundtrips_through_dump() {
        let e = Engine::new();
        e.execute("CREATE TABLE cdata (id INTEGER NOT NULL, fs TEXT, bw FLOAT) USING COLUMNAR")
            .unwrap();
        e.execute("INSERT INTO cdata VALUES (1, 'ufs', 1.5), (2, NULL, NULL), (3, 'nfs', -0.25)")
            .unwrap();
        e.execute("CREATE INDEX ix_c ON cdata (id)").unwrap();
        let dump = e.dump_sql();
        assert!(
            dump.contains("USING COLUMNAR;"),
            "layout missing from dump: {dump}"
        );
        let e2 = Engine::from_sql_dump(&dump).unwrap();
        assert!(e2.table("cdata").unwrap().read().is_columnar());
        let a = e.query("SELECT * FROM cdata ORDER BY id").unwrap();
        let b = e2.query("SELECT * FROM cdata ORDER BY id").unwrap();
        assert_eq!(a, b);
        // Fixpoint: the restored engine dumps byte-identically.
        assert_eq!(dump, e2.dump_sql());
    }

    #[test]
    fn empty_engine_roundtrip() {
        let e = Engine::new();
        let e2 = Engine::from_sql_dump(&e.dump_sql()).unwrap();
        assert!(e2.table_names().is_empty());
    }

    #[test]
    fn execute_script_counts_rows() {
        let e = Engine::new();
        let n = e
            .execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2); INSERT INTO t VALUES (3);")
            .unwrap();
        assert_eq!(n, 3);
    }
}
