//! Table schemas.

use crate::error::DbError;
use crate::value::DataType;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive; perfbase generates lowercase names).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL content is allowed (paper §3.2: variables may have no
    /// content unless the user forbids it).
    pub nullable: bool,
}

impl Column {
    /// Nullable column shorthand.
    pub fn new(name: &str, dtype: DataType) -> Self {
        Column {
            name: name.to_string(),
            dtype,
            nullable: true,
        }
    }

    /// NOT NULL column shorthand.
    pub fn not_null(name: &str, dtype: DataType) -> Self {
        Column {
            name: name.to_string(),
            dtype,
            nullable: false,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build from a column list, rejecting duplicate names.
    pub fn new(columns: Vec<Column>) -> Result<Schema, DbError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DbError::Type(format!("duplicate column name '{}'", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of column `name`. Exact matches win; otherwise the unqualified
    /// suffixes are compared, so a `table.column` lookup finds a plain
    /// `column` and a bare `column` lookup finds a qualified `table.column`
    /// (first match in declaration order).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Some(i);
        }
        let bare = name.rsplit('.').next()?;
        if let Some(i) = self.columns.iter().position(|c| c.name == bare) {
            return Some(i);
        }
        self.columns
            .iter()
            .position(|c| c.name.rsplit('.').next() == Some(bare))
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Text),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn qualified_lookup_falls_back_to_bare_name() {
        let s = Schema::new(vec![
            Column::new("run", DataType::Int),
            Column::new("mbps", DataType::Float),
        ])
        .unwrap();
        assert_eq!(s.index_of("mbps"), Some(1));
        assert_eq!(s.index_of("bw.mbps"), Some(1));
        assert_eq!(s.index_of("bw.zzz"), None);
    }

    #[test]
    fn qualified_column_name_exact_match_wins() {
        // Join output tables store qualified names directly.
        let s = Schema::new(vec![
            Column::new("a.id", DataType::Int),
            Column::new("b.id", DataType::Int),
        ])
        .unwrap();
        assert_eq!(s.index_of("a.id"), Some(0));
        assert_eq!(s.index_of("b.id"), Some(1));
        // Bare "id" resolves to the first suffix match.
        assert_eq!(s.index_of("id"), Some(0));
    }
}
