//! MVCC snapshots: an immutable, epoch-stamped view of the whole catalog.
//!
//! [`Engine::snapshot`](crate::Engine::snapshot) pins the current version
//! of every table — one `Arc` clone per table, taken while holding the
//! engine's commit gate shared, so the set is *transaction-consistent*: it
//! reflects every statement up to its epoch and nothing after. Readers
//! holding a snapshot never block writers and are never blocked by them;
//! writers that mutate a pinned table copy it first (copy-on-write), so
//! the pinned version — rows, columnar store, dictionaries, indexes and
//! the lazily materialised row cache — stays frozen for the snapshot's
//! lifetime.
#![warn(missing_docs)]

use crate::error::DbError;
use crate::table::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// A pinned, read-only view of every table at one commit epoch.
///
/// Cheap to clone (the table versions are shared, not copied) and safe to
/// send across threads; queries run against it with
/// [`Engine::query_at`](crate::Engine::query_at).
#[derive(Debug, Clone)]
pub struct Snapshot {
    epoch: u64,
    tables: HashMap<String, Arc<Table>>,
}

impl Snapshot {
    pub(crate) fn new(epoch: u64, tables: HashMap<String, Arc<Table>>) -> Snapshot {
        Snapshot { epoch, tables }
    }

    /// The commit epoch this snapshot was pinned at. Two snapshots with
    /// the same epoch observe identical data.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned version of one table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Does the snapshot contain `name`?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Row count of a table at this snapshot.
    pub fn row_count(&self, name: &str) -> Result<usize, DbError> {
        Ok(self.table(name)?.len())
    }

    /// All table names in the snapshot (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::Engine;
    use crate::value::Value;

    #[test]
    fn snapshot_is_frozen_at_its_epoch() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let snap = db.snapshot();
        let epoch = snap.epoch();
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        db.execute("CREATE TABLE u (b INTEGER)").unwrap();

        // The snapshot still sees two rows and no table `u`.
        assert_eq!(snap.row_count("t").unwrap(), 2);
        assert!(!snap.has_table("u"));
        assert_eq!(snap.epoch(), epoch);
        let rs = db.query_at(&snap, "SELECT count(*) FROM t").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(2));
        // The live engine has moved on.
        assert_eq!(db.row_count("t").unwrap(), 3);
        assert!(db.epoch() > epoch);
    }

    #[test]
    fn snapshot_survives_table_drop() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (7)").unwrap();
        let snap = db.snapshot();
        db.execute("DROP TABLE t").unwrap();
        assert!(!db.has_table("t"));
        let rs = db.query_at(&snap, "SELECT a FROM t").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(7));
    }

    #[test]
    fn missing_table_reports_no_such_table() {
        let db = Engine::new();
        let snap = db.snapshot();
        assert!(db.query_at(&snap, "SELECT * FROM nope").is_err());
        assert!(snap.table("nope").is_err());
        assert_eq!(snap.table_names(), Vec::<String>::new());
    }
}
