//! The engine: catalog of tables plus the SQL entry points.
#![warn(missing_docs)]

use crate::dump;
use crate::error::DbError;
use crate::exec;
use crate::expr::{self, RowCtx};
use crate::schema::{Column, Schema};
use crate::snapshot::Snapshot;
use crate::sql::{self, Stmt};
use crate::sync::{Mutex, RwLock};
use crate::table::{Row, Table, TableMemory};
use crate::value::Value;
use crate::wal::{RecoveryReport, Wal, WalOptions};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Telemetry class of a parsed statement.
fn stmt_class(stmt: &Stmt) -> obs::StmtClass {
    match stmt {
        Stmt::Select(_) => obs::StmtClass::Select,
        Stmt::Explain { .. } => obs::StmtClass::Explain,
        Stmt::Insert { .. } => obs::StmtClass::Insert,
        Stmt::Update { .. } => obs::StmtClass::Update,
        Stmt::Delete { .. } => obs::StmtClass::Delete,
        Stmt::CreateTable { .. } | Stmt::DropTable { .. } | Stmt::CreateIndex { .. } => {
            obs::StmtClass::Ddl
        }
    }
}

/// RAII guard classifying one programmatic (non-SQL-text) mutation: scopes
/// WAL attribution to `class` for its lifetime and records one statement
/// with its wall time on drop. The SQL-text entry points (`execute`,
/// `query`) do this inline instead, after parsing tells them the class.
struct ClassifiedStmt {
    class: obs::StmtClass,
    started: Instant,
    _scope: obs::ClassScope,
}

impl Drop for ClassifiedStmt {
    fn drop(&mut self) {
        obs::record_statement(self.class, self.started.elapsed().as_nanos() as u64);
    }
}

fn classified(class: obs::StmtClass) -> ClassifiedStmt {
    ClassifiedStmt {
        class,
        started: Instant::now(),
        _scope: obs::class_scope(class),
    }
}

/// Result of a SELECT: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl ResultSet {
    /// Construct from parts (used by the executor).
    pub(crate) fn new(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet { columns, rows }
    }

    /// Output column names.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at (row, named column).
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let i = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(i)
    }

    /// One whole column as a vector.
    pub fn column(&self, name: &str) -> Option<Vec<Value>> {
        let i = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[i].clone()).collect())
    }

    /// Render as tab-separated text: one header line of column names, one
    /// line per row, values in SQL display form. This is the wire format
    /// of the HTTP `/query` endpoint and of `perfbase sql`, shared here so
    /// the two surfaces stay byte-identical.
    pub fn render_tsv(&self) -> String {
        let mut out = self.columns.join("\t");
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push('\t');
                }
                first = false;
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }
}

/// An in-process database: a catalog of multi-versioned tables.
///
/// The engine is `Sync`, and reads are snapshot-isolated: each catalog
/// slot holds an `Arc<Table>` *version*. Readers pin a version (one `Arc`
/// clone under the slot's read lock, dropped immediately) and scan
/// lock-free; writers mutate in place while nobody pins the current
/// version and copy-on-write otherwise. A long analytical scan therefore
/// never blocks an import and vice versa — which is what lets many
/// analysts query shared experiment data while imports keep landing
/// (paper's "parallel working", §4.3).
///
/// Cross-table consistency comes from the *commit gate*: writers hold it
/// exclusively while applying a statement and bumping the [`epoch`]
/// counter; [`Engine::snapshot`] holds it shared while pinning every
/// table, so a snapshot reflects every statement up to its epoch and
/// nothing after.
///
/// [`epoch`]: Engine::epoch
#[derive(Debug, Default)]
pub struct Engine {
    tables: RwLock<HashMap<String, Arc<RwLock<Arc<Table>>>>>,
    temps: Mutex<HashSet<String>>,
    /// Optional write-ahead log. When attached, every mutating statement on
    /// a non-TEMP table is appended here *before* it is applied; the log
    /// mutex is held across the no-op checks, the append AND the apply, so
    /// the log/skip decision cannot race a concurrent writer and log order
    /// equals apply order (lock order is always wal → commit →
    /// tables/temps → slot, so this cannot deadlock).
    wal: Mutex<Option<Wal>>,
    /// MVCC commit gate: exclusive while a mutation is applied and the
    /// epoch bumped, shared while a snapshot pins the catalog.
    commit: RwLock<()>,
    /// Monotonic commit epoch; bumped once per applied mutation.
    epoch: AtomicU64,
}

/// RAII half of [`Engine::begin_commit`]: holds the commit gate
/// exclusively and bumps the epoch (mirrored to the `mvcc.epoch` gauge)
/// when dropped.
struct CommitGuard<'a> {
    engine: &'a Engine,
    _gate: std::sync::RwLockWriteGuard<'a, ()>,
}

impl Drop for CommitGuard<'_> {
    fn drop(&mut self) {
        let epoch = self.engine.epoch.fetch_add(1, Ordering::Release) + 1;
        obs::set(obs::Counter::MvccEpoch, epoch);
    }
}

/// Natural string ordering: digit runs compare numerically (after
/// stripping leading zeros), everything else byte-wise, with the raw
/// digit-run length as the deterministic tiebreak (`a7` sorts before
/// `a07`). Used to keep per-table reports in a stable, humanly ordered
/// sequence — plain lexicographic order interleaves `pb_rundata_10`
/// before `pb_rundata_2`.
pub(crate) fn natural_cmp(a: &str, b: &str) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (mut x, mut y) = (a.as_bytes(), b.as_bytes());
    loop {
        match (x.first(), y.first()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(&cx), Some(&cy)) if cx.is_ascii_digit() && cy.is_ascii_digit() => {
                let xe = x
                    .iter()
                    .position(|c| !c.is_ascii_digit())
                    .unwrap_or(x.len());
                let ye = y
                    .iter()
                    .position(|c| !c.is_ascii_digit())
                    .unwrap_or(y.len());
                let (xd, yd) = (&x[..xe], &y[..ye]);
                let xt = &xd[xd.iter().take_while(|&&c| c == b'0').count()..];
                let yt = &yd[yd.iter().take_while(|&&c| c == b'0').count()..];
                let ord = xt
                    .len()
                    .cmp(&yt.len())
                    .then_with(|| xt.cmp(yt))
                    .then_with(|| xd.len().cmp(&yd.len()));
                if ord != Ordering::Equal {
                    return ord;
                }
                x = &x[xe..];
                y = &y[ye..];
            }
            (Some(&cx), Some(&cy)) => {
                if cx != cy {
                    return cx.cmp(&cy);
                }
                x = &x[1..];
                y = &y[1..];
            }
        }
    }
}

/// Copy-on-write access to a table version. Mutates in place while no
/// snapshot pins the current `Arc<Table>`; otherwise clones the table once
/// — rows, columnar store, dictionaries, indexes and the lazily
/// materialised row cache all travel with the clone — and mutates the new
/// version, leaving every pinned reader's view frozen.
fn cow(slot: &mut Arc<Table>) -> &mut Table {
    if Arc::strong_count(slot) > 1 {
        obs::incr(obs::Counter::MvccCowClones);
    }
    Arc::make_mut(slot)
}

impl Engine {
    /// Empty database.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Create a table programmatically.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), DbError> {
        self.create_table_opts(name, schema, false, false)
    }

    /// Create a *columnar* table programmatically — the layout flag used by
    /// the `core` import path for append-mostly run-data tables. Equivalent
    /// to `CREATE TABLE name (...) USING COLUMNAR` (and logged to the WAL
    /// as exactly that, so recovery and replication preserve the layout).
    pub fn create_table_columnar(&self, name: &str, schema: Schema) -> Result<(), DbError> {
        self.create_table_layout(name, schema, false, false, true)
    }

    /// Create a table with TEMP / IF NOT EXISTS options.
    pub fn create_table_opts(
        &self,
        name: &str,
        schema: Schema,
        temp: bool,
        if_not_exists: bool,
    ) -> Result<(), DbError> {
        self.create_table_layout(name, schema, temp, if_not_exists, false)
    }

    /// Full-option create: TEMP / IF NOT EXISTS / columnar layout.
    pub fn create_table_layout(
        &self,
        name: &str,
        schema: Schema,
        temp: bool,
        if_not_exists: bool,
        columnar: bool,
    ) -> Result<(), DbError> {
        let _stmt = classified(obs::StmtClass::Ddl);
        let mut wal = self.wal.lock();
        match wal.as_mut() {
            Some(w) if !temp => {
                w.append(&dump::render_create_table(
                    name,
                    &schema,
                    if_not_exists,
                    columnar,
                ))?;
                self.create_table_unlogged(name, schema, temp, if_not_exists, columnar)
            }
            Some(_) => self.create_table_unlogged(name, schema, temp, if_not_exists, columnar),
            None => {
                drop(wal);
                self.create_table_unlogged(name, schema, temp, if_not_exists, columnar)
            }
        }
    }

    fn create_table_unlogged(
        &self,
        name: &str,
        schema: Schema,
        temp: bool,
        if_not_exists: bool,
        columnar: bool,
    ) -> Result<(), DbError> {
        let _commit = self.begin_commit();
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::TableExists(name.to_string()));
        }
        let table = if columnar {
            Table::new_columnar(schema)
        } else {
            Table::new(schema)
        };
        tables.insert(name.to_string(), Arc::new(RwLock::new(Arc::new(table))));
        if temp {
            self.temps.lock().insert(name.to_string());
        }
        Ok(())
    }

    /// Drop a table. Dropping a TEMP or nonexistent table is never logged:
    /// neither has any durable effect. The no-op check runs under the log
    /// mutex, so a table created concurrently cannot slip in between the
    /// skip decision and the apply.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<(), DbError> {
        let _stmt = classified(obs::StmtClass::Ddl);
        let mut wal = self.wal.lock();
        let Some(w) = wal.as_mut() else {
            drop(wal);
            return self.drop_table_unlogged(name, if_exists);
        };
        if !self.is_temp(name) && self.has_table(name) {
            w.append(&format!(
                "DROP TABLE {}{name}",
                if if_exists { "IF EXISTS " } else { "" }
            ))?;
        }
        self.drop_table_unlogged(name, if_exists)
    }

    fn drop_table_unlogged(&self, name: &str, if_exists: bool) -> Result<(), DbError> {
        let _commit = self.begin_commit();
        let removed = self.tables.write().remove(name).is_some();
        self.temps.lock().remove(name);
        if !removed && !if_exists {
            return Err(DbError::NoSuchTable(name.to_string()));
        }
        Ok(())
    }

    /// Does `name` exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Shared handle to a table's catalog slot. The slot holds the table's
    /// current *version*; prefer [`Engine::pin_table`] for reads (it
    /// releases the slot lock immediately) and go through the engine's
    /// statement entry points for writes.
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Arc<Table>>>, DbError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Pin the current version of one table: a single `Arc` clone under
    /// the slot's read lock, which is dropped before returning. The caller
    /// scans the pinned version lock-free; concurrent writers proceed via
    /// copy-on-write and are never blocked by the pin.
    pub fn pin_table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        Ok(self.table(name)?.read().clone())
    }

    /// The current commit epoch. Bumped once per applied mutation; two
    /// reads returning the same epoch observed the same data.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Pin a transaction-consistent [`Snapshot`] of the whole catalog:
    /// every table's current version plus the commit epoch, taken while
    /// holding the commit gate shared — so the snapshot can never observe
    /// statement N+1's effect without statement N's. Acquisition waits at
    /// most for the one in-flight statement; scans against the snapshot
    /// hold no engine lock at all.
    pub fn snapshot(&self) -> Snapshot {
        let _gate = self.commit.read();
        let tables = self.tables.read();
        let pinned: HashMap<String, Arc<Table>> = tables
            .iter()
            .map(|(name, slot)| (name.clone(), slot.read().clone()))
            .collect();
        obs::incr(obs::Counter::MvccSnapshotsPinned);
        Snapshot::new(self.epoch.load(Ordering::Acquire), pinned)
    }

    /// Exclusive commit-gate guard; the epoch bumps when it drops.
    fn begin_commit(&self) -> CommitGuard<'_> {
        CommitGuard {
            engine: self,
            _gate: self.commit.write(),
        }
    }

    /// Insert rows programmatically.
    pub fn insert_rows(&self, name: &str, rows: Vec<Row>) -> Result<usize, DbError> {
        let _stmt = classified(obs::StmtClass::Insert);
        let mut wal = self.wal.lock();
        let Some(w) = wal.as_mut() else {
            drop(wal);
            return self.insert_rows_unlogged(name, rows);
        };
        if !rows.is_empty() && !self.is_temp(name) {
            w.append(&dump::render_insert(name, &rows))?;
        }
        self.insert_rows_unlogged(name, rows)
    }

    fn insert_rows_unlogged(&self, name: &str, rows: Vec<Row>) -> Result<usize, DbError> {
        let _commit = self.begin_commit();
        let t = self.table(name)?;
        let mut slot = t.write();
        let n = cow(&mut slot).insert_all(rows)?;
        Ok(n)
    }

    /// Is `name` a TEMP table?
    fn is_temp(&self, name: &str) -> bool {
        self.temps.lock().contains(name)
    }

    /// Snapshot a table's schema and rows (materialised from the pinned
    /// current version; no lock is held during the copy).
    pub fn read_snapshot(&self, name: &str) -> Result<(Schema, Vec<Row>), DbError> {
        let t = self.pin_table(name)?;
        Ok((t.schema.clone(), t.rows().to_vec()))
    }

    /// Row count of a table.
    pub fn row_count(&self, name: &str) -> Result<usize, DbError> {
        Ok(self.table(name)?.read().len())
    }

    /// All table names (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of TEMP tables (sorted).
    pub fn temp_table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.temps.lock().iter().cloned().collect();
        v.sort();
        v
    }

    /// Per-table memory accounting in *natural* table-name order: embedded
    /// digit runs compare numerically, so `pb_rundata_2` lists before
    /// `pb_rundata_10` no matter how many runs exist. The ordering is
    /// fully deterministic — `perfbase stats --db` output is stable for
    /// goldens and docs capture. Each entry carries both the actual layout
    /// cost and the estimated cost of the other layout (see
    /// [`TableMemory`]).
    pub fn memory_report(&self) -> Vec<(String, TableMemory)> {
        let handles: Vec<(String, Arc<RwLock<Arc<Table>>>)> = {
            let tables = self.tables.read();
            let mut v: Vec<_> = tables
                .iter()
                .map(|(n, t)| (n.clone(), Arc::clone(t)))
                .collect();
            v.sort_by(|a, b| natural_cmp(&a.0, &b.0));
            v
        };
        handles
            .into_iter()
            .map(|(name, h)| {
                let m = h.read().memory_footprint();
                (name, m)
            })
            .collect()
    }

    /// Recompute the `mem.*` gauges from the current catalog: total row
    /// and columnar layout bytes, dictionary size and the number of
    /// columnar tables. Returns the report used.
    pub fn refresh_memory_gauges(&self) -> Vec<(String, TableMemory)> {
        let report = self.memory_report();
        let mut row_bytes = 0u64;
        let mut col_bytes = 0u64;
        let mut dict_bytes = 0u64;
        let mut dict_entries = 0u64;
        let mut columnar_tables = 0u64;
        for (_, m) in &report {
            row_bytes += m.row_layout_bytes as u64;
            col_bytes += m.columnar_layout_bytes as u64;
            dict_bytes += m.dict_bytes as u64;
            dict_entries += m.dict_entries as u64;
            columnar_tables += u64::from(m.columnar);
        }
        obs::set(obs::Counter::MemRowBytes, row_bytes);
        obs::set(obs::Counter::MemColumnarBytes, col_bytes);
        obs::set(obs::Counter::MemDictBytes, dict_bytes);
        obs::set(obs::Counter::MemDictEntries, dict_entries);
        obs::set(obs::Counter::MemColumnarTables, columnar_tables);
        report
    }

    /// Drop every TEMP table — perfbase does this at the end of a query.
    pub fn drop_temp_tables(&self) {
        let names = self.temp_table_names();
        let _commit = self.begin_commit();
        let mut tables = self.tables.write();
        for n in &names {
            tables.remove(n);
        }
        self.temps.lock().clear();
    }

    /// Execute a non-SELECT statement; returns the number of affected rows
    /// (0 for DDL). With a WAL attached, mutating statements on non-TEMP
    /// tables are logged (raw SQL text) before they are applied. The
    /// log-or-skip predicates are evaluated — and the statement applied —
    /// while holding the log mutex, so the decision cannot be invalidated
    /// by a concurrent writer (a DROP observed as a no-op could otherwise
    /// go unlogged yet succeed against a table created in between, and
    /// recovery would diverge). A failed apply is harmless: the logged
    /// statement fails identically on recovery.
    pub fn execute(&self, sql_text: &str) -> Result<usize, DbError> {
        let parse_started = Instant::now();
        let stmt = sql::parse_statement(sql_text)?;
        obs::incr(obs::Counter::StmtParsed);
        obs::record_duration(obs::Hist::ParseNs, parse_started.elapsed());
        let class = stmt_class(&stmt);
        let _class_scope = obs::class_scope(class);
        let mut span = obs::span("statement");
        span.annotate(|| format!("class={}", class.name()));
        let exec_started = Instant::now();
        let result = self.execute_parsed_logged(sql_text, stmt);
        obs::record_statement(class, exec_started.elapsed().as_nanos() as u64);
        obs::record_duration(obs::Hist::ExecNs, exec_started.elapsed());
        obs::incr(obs::Counter::StmtExecuted);
        result
    }

    /// The WAL-gated half of [`Engine::execute`]: log the statement if it
    /// must be durable, then apply it.
    fn execute_parsed_logged(&self, sql_text: &str, stmt: Stmt) -> Result<usize, DbError> {
        let mut wal = self.wal.lock();
        let Some(w) = wal.as_mut() else {
            drop(wal);
            return self.run_parsed(stmt);
        };
        let durable = match &stmt {
            Stmt::Select(_) | Stmt::Explain { .. } => false,
            Stmt::CreateTable { temp, .. } => !*temp,
            Stmt::DropTable { name, .. } => !self.is_temp(name) && self.has_table(name),
            Stmt::Insert { table, .. }
            | Stmt::Update { table, .. }
            | Stmt::Delete { table, .. } => !self.is_temp(table),
            Stmt::CreateIndex {
                table,
                column,
                ordered,
                ..
            } => !self.is_temp(table) && !self.index_creation_is_noop(table, column, *ordered),
        };
        if durable {
            w.append(sql_text)?;
        }
        self.run_parsed(stmt)
    }

    /// Execute an already-parsed non-SELECT statement. Never logs to the
    /// WAL — this is the replay/restore entry point (dump scripts and
    /// recovered frames must not be re-logged).
    pub(crate) fn run_parsed(&self, stmt: Stmt) -> Result<usize, DbError> {
        match stmt {
            Stmt::CreateTable {
                name,
                temp,
                if_not_exists,
                columns,
                columnar,
            } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| Column {
                            name: c.name,
                            dtype: c.dtype,
                            nullable: c.nullable,
                        })
                        .collect(),
                )?;
                self.create_table_unlogged(&name, schema, temp, if_not_exists, columnar)?;
                Ok(0)
            }
            Stmt::DropTable { name, if_exists } => {
                self.drop_table_unlogged(&name, if_exists)?;
                Ok(0)
            }
            Stmt::Insert {
                table,
                columns,
                rows,
            } => self.run_insert(&table, columns, rows),
            Stmt::Update {
                table,
                sets,
                where_clause,
            } => self.run_update(&table, sets, where_clause),
            Stmt::Delete {
                table,
                where_clause,
            } => self.run_delete(&table, where_clause),
            Stmt::CreateIndex {
                name,
                table,
                column,
                if_not_exists,
                ordered,
            } => match self.create_index_unlogged(&name, &table, &column, ordered) {
                Ok(()) => Ok(0),
                Err(DbError::Execution(_)) if if_not_exists => Ok(0),
                Err(e) => Err(e),
            },
            Stmt::Select(_) | Stmt::Explain { .. } => Err(DbError::Execution(
                "use query() for SELECT statements".into(),
            )),
        }
    }

    /// Create a secondary hash index over `table.column`. A second index on
    /// an already-indexed column is a no-op.
    pub fn create_index(&self, name: &str, table: &str, column: &str) -> Result<(), DbError> {
        self.create_index_opts(name, table, column, false)
    }

    /// Create a secondary index over `table.column`; `ordered` selects the
    /// sorted variant that additionally serves `IN` and range probes. An
    /// ordered request over an existing hash index upgrades it in place.
    pub fn create_index_opts(
        &self,
        name: &str,
        table: &str,
        column: &str,
        ordered: bool,
    ) -> Result<(), DbError> {
        let _stmt = classified(obs::StmtClass::Ddl);
        let mut wal = self.wal.lock();
        let Some(w) = wal.as_mut() else {
            drop(wal);
            return self.create_index_unlogged(name, table, column, ordered);
        };
        if !self.is_temp(table) && !self.index_creation_is_noop(table, column, ordered) {
            // Logged with IF NOT EXISTS so a recovery replay over a
            // checkpoint that already materialized the index stays a no-op.
            w.append(&format!(
                "CREATE {}INDEX IF NOT EXISTS {name} ON {table} ({column})",
                if ordered { "ORDERED " } else { "" }
            ))?;
        }
        self.create_index_unlogged(name, table, column, ordered)
    }

    fn create_index_unlogged(
        &self,
        name: &str,
        table: &str,
        column: &str,
        ordered: bool,
    ) -> Result<(), DbError> {
        let _commit = self.begin_commit();
        let t = self.table(table)?;
        let mut slot = t.write();
        cow(&mut slot).create_index(name, column, ordered)
    }

    /// Would `CREATE [ORDERED] INDEX … ON table (column)` change nothing?
    /// True when the column is already covered by an index of sufficient
    /// capability (an ordered request over a hash index is *not* a no-op —
    /// it upgrades the index). Such statements are skipped by the
    /// write-ahead log, so re-ensuring indexes on every open (as the
    /// experiment layer does) never dirties a compacted log.
    fn index_creation_is_noop(&self, table: &str, column: &str, ordered: bool) -> bool {
        let Ok(t) = self.table(table) else {
            return false;
        };
        let guard = t.read();
        match guard.schema.index_of(column) {
            Some(ci) => {
                if ordered {
                    guard.has_ordered_index_on(ci)
                } else {
                    guard.has_index_on(ci)
                }
            }
            None => false,
        }
    }

    /// Run a SELECT (or `EXPLAIN [ANALYZE] SELECT`) and return its rows.
    pub fn query(&self, sql_text: &str) -> Result<ResultSet, DbError> {
        let parse_started = Instant::now();
        let stmt = sql::parse_statement(sql_text)?;
        obs::incr(obs::Counter::StmtParsed);
        obs::record_duration(obs::Hist::ParseNs, parse_started.elapsed());
        let class = stmt_class(&stmt);
        let (sel, analyze) = match stmt {
            Stmt::Select(sel) => (sel, None),
            Stmt::Explain { analyze, select } => (select, Some(analyze)),
            _ => {
                return Err(DbError::Execution(
                    "query() only accepts SELECT statements".into(),
                ))
            }
        };
        let _class_scope = obs::class_scope(class);
        let mut span = obs::span("query");
        span.annotate(|| {
            format!(
                "class={} from={}",
                class.name(),
                sel.from.as_deref().unwrap_or("-")
            )
        });
        obs::incr(obs::Counter::QueriesRun);
        let exec_started = Instant::now();
        let cat = exec::Catalog::Live(self);
        let result = match analyze {
            None => exec::run_select(cat, &sel),
            Some(analyze) => exec::run_explain(cat, &sel, analyze),
        };
        obs::record_statement(class, exec_started.elapsed().as_nanos() as u64);
        obs::record_duration(obs::Hist::ExecNs, exec_started.elapsed());
        result
    }

    /// Run a SELECT (or `EXPLAIN [ANALYZE] SELECT`) against a pinned
    /// [`Snapshot`] instead of the live catalog: every table resolves to
    /// the version the snapshot pinned, so repeated queries against the
    /// same snapshot return identical results no matter how many writers
    /// commit in between — and hold no engine lock while they run.
    pub fn query_at(&self, snapshot: &Snapshot, sql_text: &str) -> Result<ResultSet, DbError> {
        let parse_started = Instant::now();
        let stmt = sql::parse_statement(sql_text)?;
        obs::incr(obs::Counter::StmtParsed);
        obs::record_duration(obs::Hist::ParseNs, parse_started.elapsed());
        let class = stmt_class(&stmt);
        let (sel, analyze) = match stmt {
            Stmt::Select(sel) => (sel, None),
            Stmt::Explain { analyze, select } => (select, Some(analyze)),
            _ => {
                return Err(DbError::Execution(
                    "query_at() only accepts SELECT statements".into(),
                ))
            }
        };
        let _class_scope = obs::class_scope(class);
        obs::incr(obs::Counter::QueriesRun);
        let exec_started = Instant::now();
        let cat = exec::Catalog::At(snapshot);
        let result = match analyze {
            None => exec::run_select(cat, &sel),
            Some(analyze) => exec::run_explain(cat, &sel, analyze),
        };
        obs::record_statement(class, exec_started.elapsed().as_nanos() as u64);
        obs::record_duration(obs::Hist::ExecNs, exec_started.elapsed());
        result
    }

    /// [`Engine::query_reference`] at a pinned [`Snapshot`]: the oracle for
    /// the snapshot-isolation equivalence tests (optimized and reference
    /// execution of the same statement at the same epoch must agree).
    pub fn query_reference_at(
        &self,
        snapshot: &Snapshot,
        sql_text: &str,
    ) -> Result<ResultSet, DbError> {
        match sql::parse_statement(sql_text)? {
            Stmt::Select(sel) => exec::run_select_reference(exec::Catalog::At(snapshot), &sel),
            _ => Err(DbError::Execution(
                "query() only accepts SELECT statements".into(),
            )),
        }
    }

    /// Run a SELECT through the unoptimized reference executor: full table
    /// snapshots, interpreted expression evaluation and nested-loop joins.
    /// Exists as the oracle for the equivalence tests and as the baseline
    /// for the `microbench` binary — not for production use.
    pub fn query_reference(&self, sql_text: &str) -> Result<ResultSet, DbError> {
        match sql::parse_statement(sql_text)? {
            Stmt::Select(sel) => exec::run_select_reference(exec::Catalog::Live(self), &sel),
            _ => Err(DbError::Execution(
                "query() only accepts SELECT statements".into(),
            )),
        }
    }

    // ---- durability (write-ahead log) ------------------------------------

    /// Attach a write-ahead log; returns any previously attached log.
    /// Every subsequent mutating statement on a non-TEMP table is appended
    /// to the log before it is applied.
    pub fn attach_wal(&self, wal: Wal) -> Option<Wal> {
        self.wal.lock().replace(wal)
    }

    /// Detach and return the write-ahead log, if any (pending frames are
    /// synced first on a best-effort basis).
    pub fn detach_wal(&self) -> Option<Wal> {
        let mut wal = self.wal.lock().take();
        if let Some(w) = wal.as_mut() {
            let _ = w.sync();
        }
        wal
    }

    /// Is a write-ahead log attached?
    pub fn has_wal(&self) -> bool {
        self.wal.lock().is_some()
    }

    /// Force every logged frame to stable storage (closes the group-commit
    /// window). No-op without a WAL.
    pub fn wal_sync(&self) -> Result<(), DbError> {
        match self.wal.lock().as_mut() {
            Some(w) => w.sync(),
            None => Ok(()),
        }
    }

    /// Frames currently in the attached log segment (0 without a WAL).
    pub fn wal_frames(&self) -> u64 {
        self.wal.lock().as_ref().map_or(0, |w| w.frames())
    }

    /// Install (or clear) a [`crate::wal::FrameTap`] on the attached log — the hook
    /// replication uses to ship committed frames. Returns `false` (and
    /// does nothing) when no WAL is attached.
    pub fn wal_set_tap(&self, tap: Option<Arc<dyn crate::wal::FrameTap>>) -> bool {
        match self.wal.lock().as_mut() {
            Some(w) => {
                w.set_tap(tap);
                true
            }
            None => false,
        }
    }

    /// The attached log's fault-injection hook, if a WAL is attached.
    pub fn wal_failpoint(&self) -> Option<Arc<crate::wal::IoFailpoint>> {
        self.wal.lock().as_ref().map(|w| w.failpoint().clone())
    }

    /// Checkpoint: atomically write the SQL dump to `dump_path`, then
    /// compact the log (every logged frame is now reflected in the dump).
    /// The log mutex is held throughout, so no statement can slip between
    /// the dump and the compaction. Returns the number of frames dropped.
    ///
    /// The dump is stamped with the log's next sequence number, which is
    /// what makes the rename→compact window crash-safe: if the process
    /// dies after the new dump is in place but before the log is
    /// compacted, both files hold every frame — recovery reads the stamp
    /// and skips the frames the dump already reflects instead of
    /// double-applying them.
    pub fn checkpoint(&self, dump_path: &Path) -> Result<u64, DbError> {
        let mut wal = self.wal.lock();
        match wal.as_mut() {
            Some(w) => {
                // Every frame the stamp covers must be durable before the
                // dump claiming to supersede them is published.
                w.sync()?;
                let ckpt_seq = w.next_seq();
                self.save_to_file_with_seq(dump_path, Some(ckpt_seq))
                    .map_err(|e| DbError::Io(format!("checkpoint {}: {e}", dump_path.display())))?;
                w.compact()
            }
            None => {
                self.save_to_file(dump_path)
                    .map_err(|e| DbError::Io(format!("checkpoint {}: {e}", dump_path.display())))?;
                Ok(0)
            }
        }
    }

    /// Replay recovered WAL statements without re-logging them; returns
    /// how many failed (they failed identically in the original run).
    pub(crate) fn replay_unlogged(&self, statements: &[String]) -> u64 {
        let mut errors = 0;
        for text in statements {
            if sql::parse_statement(text)
                .and_then(|s| self.run_parsed(s))
                .is_err()
            {
                errors += 1;
            }
        }
        errors
    }

    /// Replay recovered WAL statements on top of a checkpoint dump that
    /// recorded checkpoint sequence `ckpt_seq`: frames below it are
    /// already reflected in the dump and are skipped, the rest replay
    /// unlogged. Updates `report` with the skip/replay/error split.
    pub(crate) fn recover_replay(
        &self,
        statements: &[String],
        ckpt_seq: u64,
        report: &mut RecoveryReport,
    ) {
        let skip = ckpt_seq
            .saturating_sub(report.start_seq)
            .min(statements.len() as u64) as usize;
        report.frames_skipped = skip as u64;
        report.frames_replayed = (statements.len() - skip) as u64;
        report.replay_errors = self.replay_unlogged(&statements[skip..]);
    }

    /// Open a database durably: load the last checkpoint dump from
    /// `dump_path` (if present), replay every valid WAL frame from
    /// `wal_path` (creating the log when missing, truncating any torn
    /// tail), and attach the log for further writes. Frames the dump's
    /// recorded checkpoint sequence already covers are skipped, not
    /// replayed — see [`Engine::checkpoint`]. Statements that fail on
    /// replay are counted, not fatal — they failed identically in the
    /// original run, so the recovered state still matches.
    pub fn open_durable(
        dump_path: &Path,
        wal_path: &Path,
        opts: WalOptions,
    ) -> Result<(Engine, RecoveryReport), DbError> {
        let (engine, ckpt_seq) = if dump_path.exists() {
            let script = std::fs::read_to_string(dump_path).map_err(|e| {
                DbError::Execution(format!("cannot read {}: {e}", dump_path.display()))
            })?;
            let seq = dump::read_checkpoint_seq(&script).unwrap_or(0);
            (Engine::from_sql_dump(&script)?, seq)
        } else {
            (Engine::new(), 0)
        };
        let (wal, statements, mut report) = Wal::open_recover(wal_path, opts)?;
        engine.recover_replay(&statements, ckpt_seq, &mut report);
        engine.attach_wal(wal);
        Ok((engine, report))
    }

    fn run_insert(
        &self,
        table: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<sql::SqlExpr>>,
    ) -> Result<usize, DbError> {
        let _commit = self.begin_commit();
        let t = self.table(table)?;
        let mut slot = t.write();
        let guard = cow(&mut slot);
        let schema = guard.schema.clone();
        let empty_schema = Schema::default();
        let empty_row: Vec<Value> = Vec::new();
        let const_ctx = RowCtx {
            schema: &empty_schema,
            row: &empty_row,
        };

        // Materialize every row before applying any: a multi-row INSERT is
        // atomic, so a bad row mid-batch leaves no partial state (and the
        // statement diverges from nothing on WAL replay).
        let mut full_rows = Vec::with_capacity(rows.len());
        for row_exprs in rows {
            let values: Result<Vec<Value>, DbError> = row_exprs
                .iter()
                .map(|e| expr::eval(e, &const_ctx))
                .collect();
            let values = values?;
            let full_row = match &columns {
                None => values,
                Some(cols) => {
                    if cols.len() != values.len() {
                        return Err(DbError::Type(format!(
                            "INSERT column list has {} names but {} values",
                            cols.len(),
                            values.len()
                        )));
                    }
                    let mut full = vec![Value::Null; schema.arity()];
                    for (c, v) in cols.iter().zip(values) {
                        let i = schema
                            .index_of(c)
                            .ok_or_else(|| DbError::NoSuchColumn(c.clone()))?;
                        full[i] = v;
                    }
                    full
                }
            };
            full_rows.push(full_row);
        }
        guard.insert_all(full_rows)
    }

    fn run_update(
        &self,
        table: &str,
        sets: Vec<(String, sql::SqlExpr)>,
        where_clause: Option<sql::SqlExpr>,
    ) -> Result<usize, DbError> {
        let _commit = self.begin_commit();
        let t = self.table(table)?;
        let mut slot = t.write();
        let guard = cow(&mut slot);
        let schema = guard.schema.clone();
        // Resolve target columns up front.
        let mut targets = Vec::with_capacity(sets.len());
        for (name, e) in &sets {
            let i = schema
                .index_of(name)
                .ok_or_else(|| DbError::NoSuchColumn(name.clone()))?;
            targets.push((i, e));
        }
        let mut err: Option<DbError> = None;
        let n = guard.update_where(|row| {
            if err.is_some() {
                return false;
            }
            let ctx = RowCtx {
                schema: &schema,
                row,
            };
            let hit = match &where_clause {
                None => true,
                Some(w) => match expr::eval(w, &ctx) {
                    Ok(v) => expr::truthy(&v),
                    Err(e) => {
                        err = Some(e);
                        return false;
                    }
                },
            };
            if !hit {
                return false;
            }
            // Evaluate all RHS against the pre-update row, then assign.
            let mut new_vals = Vec::with_capacity(targets.len());
            for (i, e) in &targets {
                match expr::eval(
                    e,
                    &RowCtx {
                        schema: &schema,
                        row,
                    },
                ) {
                    Ok(v) => match v.coerce(schema.columns[*i].dtype) {
                        Ok(cv) => new_vals.push((*i, cv)),
                        Err(m) => {
                            err = Some(DbError::Type(m));
                            return false;
                        }
                    },
                    Err(e) => {
                        err = Some(e);
                        return false;
                    }
                }
            }
            for (i, v) in new_vals {
                row[i] = v;
            }
            true
        });
        match err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    fn run_delete(
        &self,
        table: &str,
        where_clause: Option<sql::SqlExpr>,
    ) -> Result<usize, DbError> {
        let _commit = self.begin_commit();
        let t = self.table(table)?;
        let mut slot = t.write();
        let guard = cow(&mut slot);
        let schema = guard.schema.clone();
        let mut err: Option<DbError> = None;
        let n = guard.delete_where(|row| {
            if err.is_some() {
                return false;
            }
            match &where_clause {
                None => true,
                Some(w) => match expr::eval(
                    w,
                    &RowCtx {
                        schema: &schema,
                        row,
                    },
                ) {
                    Ok(v) => expr::truthy(&v),
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                },
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn programmatic_api_roundtrip() {
        let db = Engine::new();
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("v", DataType::Float),
        ])
        .unwrap();
        db.create_table("t", schema).unwrap();
        db.insert_rows("t", vec![vec![Value::Int(1), Value::Float(2.0)]])
            .unwrap();
        let (schema, rows) = db.read_snapshot("t").unwrap();
        assert_eq!(schema.arity(), 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.row_count("t").unwrap(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(matches!(
            db.execute("CREATE TABLE t (a INTEGER)"),
            Err(DbError::TableExists(_))
        ));
        db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
            .unwrap();
    }

    #[test]
    fn drop_semantics() {
        let db = Engine::new();
        assert!(db.execute("DROP TABLE nope").is_err());
        db.execute("DROP TABLE IF EXISTS nope").unwrap();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("DROP TABLE t").unwrap();
        assert!(!db.has_table("t"));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c FLOAT)")
            .unwrap();
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)").unwrap();
        let rs = db.query("SELECT a, b, c FROM t").unwrap();
        assert_eq!(
            rs.rows()[0],
            vec![Value::Int(7), Value::Null, Value::Float(1.5)]
        );
    }

    #[test]
    fn insert_rejects_unknown_column() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(matches!(
            db.execute("INSERT INTO t (zzz) VALUES (1)"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn update_uses_pre_update_values() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        db.execute("UPDATE t SET a = b, b = a").unwrap();
        let rs = db.query("SELECT a, b FROM t").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn query_rejects_non_select_and_vice_versa() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(db.query("INSERT INTO t VALUES (1)").is_err());
        assert!(db.execute("SELECT a FROM t").is_err());
    }

    #[test]
    fn resultset_accessors() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        let rs = db.query("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(rs.get(1, "b"), Some(&Value::Text("y".into())));
        assert_eq!(rs.column("a").unwrap(), vec![Value::Int(1), Value::Int(2)]);
        assert!(rs.get(5, "b").is_none());
        assert!(rs.column("zzz").is_none());
    }

    #[test]
    fn wal_logs_and_recovers_all_mutation_paths() {
        use crate::wal::SyncPolicy;
        let dir = std::env::temp_dir().join("perfbase_engine_wal");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("all_paths.sql");
        let wal = dir.join("all_paths.wal");
        std::fs::remove_file(&dump).ok();
        std::fs::remove_file(&wal).ok();

        let (db, report) =
            Engine::open_durable(&dump, &wal, WalOptions::with_sync(SyncPolicy::Off)).unwrap();
        assert_eq!(report.frames_replayed, 0);
        // SQL-text path.
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
            .unwrap();
        db.execute("UPDATE t SET b = 'q' WHERE a = 2").unwrap();
        db.execute("DELETE FROM t WHERE a = 3").unwrap();
        db.execute("CREATE INDEX ix_t_a ON t (a)").unwrap();
        // Programmatic path.
        let schema = Schema::new(vec![Column::not_null("id", crate::DataType::Int)]).unwrap();
        db.create_table("p", schema).unwrap();
        db.insert_rows("p", vec![vec![Value::Int(9)], vec![Value::Int(10)]])
            .unwrap();
        db.create_index("ix_p_id", "p", "id").unwrap();
        db.drop_table("p", false).unwrap();
        // TEMP tables are never logged.
        db.execute("CREATE TEMP TABLE scratch (x INTEGER)").unwrap();
        db.execute("INSERT INTO scratch VALUES (1)").unwrap();
        let frames = db.wal_frames();
        db.wal_sync().unwrap();
        let expected = db.query("SELECT a, b FROM t ORDER BY a").unwrap();
        drop(db);

        // No checkpoint ever happened: the whole state comes from the log.
        let (db2, report) =
            Engine::open_durable(&dump, &wal, WalOptions::with_sync(SyncPolicy::Off)).unwrap();
        assert_eq!(report.frames_replayed, frames);
        assert_eq!(report.replay_errors, 0);
        assert_eq!(
            db2.query("SELECT a, b FROM t ORDER BY a").unwrap(),
            expected
        );
        assert!(!db2.has_table("p"), "dropped table must stay dropped");
        assert!(!db2.has_table("scratch"), "temp tables are not durable");
        assert!(db2
            .table("t")
            .unwrap()
            .read()
            .index_columns()
            .iter()
            .any(|(n, _, _)| n == "ix_t_a"));
    }

    #[test]
    fn checkpoint_compacts_and_recovery_uses_dump_plus_tail() {
        use crate::wal::SyncPolicy;
        let dir = std::env::temp_dir().join("perfbase_engine_wal");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("ckpt.sql");
        let wal = dir.join("ckpt.wal");
        std::fs::remove_file(&dump).ok();
        std::fs::remove_file(&wal).ok();

        let (db, _) =
            Engine::open_durable(&dump, &wal, WalOptions::with_sync(SyncPolicy::Off)).unwrap();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let dropped = db.checkpoint(&dump).unwrap();
        assert_eq!(dropped, 2);
        assert_eq!(db.wal_frames(), 0);
        // Post-checkpoint writes land in the compacted log.
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        db.wal_sync().unwrap();
        drop(db);

        let (db2, report) =
            Engine::open_durable(&dump, &wal, WalOptions::with_sync(SyncPolicy::Off)).unwrap();
        assert_eq!(
            report.frames_replayed, 1,
            "only the post-checkpoint tail replays"
        );
        let rs = db2.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn failed_statements_replay_identically() {
        use crate::wal::SyncPolicy;
        let dir = std::env::temp_dir().join("perfbase_engine_wal");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("failrep.sql");
        let wal = dir.join("failrep.wal");
        std::fs::remove_file(&dump).ok();
        std::fs::remove_file(&wal).ok();

        let (db, _) =
            Engine::open_durable(&dump, &wal, WalOptions::with_sync(SyncPolicy::Off)).unwrap();
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        // Log-before-apply: this statement is logged, then fails to apply.
        assert!(db.execute("INSERT INTO t VALUES (NULL)").is_err());
        db.execute("INSERT INTO t VALUES (2)").unwrap();
        db.wal_sync().unwrap();
        let expected = db.query("SELECT a FROM t ORDER BY a").unwrap();
        drop(db);

        let (db2, report) =
            Engine::open_durable(&dump, &wal, WalOptions::with_sync(SyncPolicy::Off)).unwrap();
        assert_eq!(
            report.replay_errors, 1,
            "the failed INSERT fails again on replay"
        );
        assert_eq!(db2.query("SELECT a FROM t ORDER BY a").unwrap(), expected);
    }

    #[test]
    fn natural_cmp_orders_digit_runs_numerically() {
        use std::cmp::Ordering;
        assert_eq!(natural_cmp("pb_rundata_2", "pb_rundata_10"), Ordering::Less);
        assert_eq!(
            natural_cmp("pb_rundata_10", "pb_rundata_2"),
            Ordering::Greater
        );
        assert_eq!(natural_cmp("a2b", "a2b"), Ordering::Equal);
        // Equal numeric value: fewer leading zeros sorts first.
        assert_eq!(natural_cmp("t007", "t7"), Ordering::Greater);
        assert_eq!(natural_cmp("t7", "t007"), Ordering::Less);
        // Digits before the run differs.
        assert_eq!(natural_cmp("run9x", "run10a"), Ordering::Less);
        // Pure text falls back to byte order.
        assert_eq!(natural_cmp("alpha", "beta"), Ordering::Less);
        // Prefix relationships.
        assert_eq!(natural_cmp("t1", "t1x"), Ordering::Less);

        let mut names = vec!["t10", "t2", "t1", "plain", "t02"];
        names.sort_by(|a, b| natural_cmp(a, b));
        assert_eq!(names, vec!["plain", "t1", "t2", "t02", "t10"]);
    }

    #[test]
    fn memory_report_is_naturally_ordered_and_deterministic() {
        let db = Engine::new();
        for name in ["pb_rundata_10", "pb_rundata_2", "pb_rundata_1", "alpha"] {
            db.execute(&format!("CREATE TABLE {name} (a INTEGER)"))
                .unwrap();
        }
        let order: Vec<String> = db.memory_report().into_iter().map(|e| e.0).collect();
        assert_eq!(
            order,
            vec!["alpha", "pb_rundata_1", "pb_rundata_2", "pb_rundata_10"]
        );
        // Stable across calls.
        let again: Vec<String> = db.memory_report().into_iter().map(|e| e.0).collect();
        assert_eq!(order, again);
    }

    #[test]
    fn writer_copies_on_write_only_while_pinned() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();

        // Unpinned: the writer mutates the sole version in place.
        let before = db.pin_table("t").unwrap();
        drop(before);
        db.execute("INSERT INTO t VALUES (2)").unwrap();

        // Pinned: the writer must clone; the pin keeps the old version.
        let pinned = db.pin_table("t").unwrap();
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        assert_eq!(pinned.len(), 2, "pinned version is frozen");
        assert_eq!(db.row_count("t").unwrap(), 3, "live table moved on");
        // The live slot now holds a different allocation.
        let live = db.pin_table("t").unwrap();
        assert!(!std::sync::Arc::ptr_eq(&pinned, &live));
    }

    #[test]
    fn epoch_advances_once_per_mutation() {
        let db = Engine::new();
        let e0 = db.epoch();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        db.execute("UPDATE t SET a = 2").unwrap();
        db.execute("DELETE FROM t WHERE a = 2").unwrap();
        assert_eq!(db.epoch(), e0 + 4);
        // Reads do not advance the epoch.
        db.query("SELECT * FROM t").unwrap();
        let _snap = db.snapshot();
        assert_eq!(db.epoch(), e0 + 4);
    }

    #[test]
    fn render_tsv_matches_wire_format() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c FLOAT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x', 1.5), (2, NULL, 2.0)")
            .unwrap();
        let rs = db.query("SELECT a, b, c FROM t ORDER BY a").unwrap();
        assert_eq!(rs.render_tsv(), "a\tb\tc\n1\tx\t1.5\n2\tNULL\t2.0\n");
    }

    #[test]
    fn concurrent_readers_do_not_block() {
        use std::thread;
        let db = std::sync::Arc::new(Engine::new());
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..8 {
            let db = db.clone();
            handles.push(thread::spawn(move || {
                let rs = db.query("SELECT count(*) FROM t").unwrap();
                assert_eq!(rs.rows()[0][0], Value::Int(100));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
