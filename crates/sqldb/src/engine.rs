//! The engine: catalog of tables plus the SQL entry points.
#![warn(missing_docs)]

use crate::error::DbError;
use crate::exec;
use crate::expr::{self, RowCtx};
use crate::schema::{Column, Schema};
use crate::sql::{self, Stmt};
use crate::table::{Row, Table};
use crate::value::Value;
use crate::sync::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Result of a SELECT: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl ResultSet {
    /// Construct from parts (used by the executor).
    pub(crate) fn new(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet { columns, rows }
    }

    /// Output column names.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at (row, named column).
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let i = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(i)
    }

    /// One whole column as a vector.
    pub fn column(&self, name: &str) -> Option<Vec<Value>> {
        let i = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|r| r[i].clone()).collect())
    }
}

/// An in-process database: a catalog of `RwLock`-guarded tables.
///
/// The engine is `Sync`; concurrent readers of the same table proceed in
/// parallel, which is what lets perfbase *source* elements run concurrently
/// (paper §4.3).
#[derive(Debug, Default)]
pub struct Engine {
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    temps: Mutex<HashSet<String>>,
}

impl Engine {
    /// Empty database.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Create a table programmatically.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), DbError> {
        self.create_table_opts(name, schema, false, false)
    }

    /// Create a table with TEMP / IF NOT EXISTS options.
    pub fn create_table_opts(
        &self,
        name: &str,
        schema: Schema,
        temp: bool,
        if_not_exists: bool,
    ) -> Result<(), DbError> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            if if_not_exists {
                return Ok(());
            }
            return Err(DbError::TableExists(name.to_string()));
        }
        tables.insert(name.to_string(), Arc::new(RwLock::new(Table::new(schema))));
        if temp {
            self.temps.lock().insert(name.to_string());
        }
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<(), DbError> {
        let removed = self.tables.write().remove(name).is_some();
        self.temps.lock().remove(name);
        if !removed && !if_exists {
            return Err(DbError::NoSuchTable(name.to_string()));
        }
        Ok(())
    }

    /// Does `name` exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Shared handle to a table.
    pub fn table(&self, name: &str) -> Result<Arc<RwLock<Table>>, DbError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Insert rows programmatically.
    pub fn insert_rows(&self, name: &str, rows: Vec<Row>) -> Result<usize, DbError> {
        let t = self.table(name)?;
        let n = t.write().insert_all(rows)?;
        Ok(n)
    }

    /// Snapshot a table's schema and rows (copy under the read lock).
    pub fn read_snapshot(&self, name: &str) -> Result<(Schema, Vec<Row>), DbError> {
        let t = self.table(name)?;
        let guard = t.read();
        Ok((guard.schema.clone(), guard.rows().to_vec()))
    }

    /// Row count of a table.
    pub fn row_count(&self, name: &str) -> Result<usize, DbError> {
        Ok(self.table(name)?.read().len())
    }

    /// All table names (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of TEMP tables (sorted).
    pub fn temp_table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.temps.lock().iter().cloned().collect();
        v.sort();
        v
    }

    /// Drop every TEMP table — perfbase does this at the end of a query.
    pub fn drop_temp_tables(&self) {
        let names = self.temp_table_names();
        let mut tables = self.tables.write();
        for n in &names {
            tables.remove(n);
        }
        self.temps.lock().clear();
    }

    /// Execute a non-SELECT statement; returns the number of affected rows
    /// (0 for DDL).
    pub fn execute(&self, sql_text: &str) -> Result<usize, DbError> {
        self.run_parsed(sql::parse_statement(sql_text)?)
    }

    /// Execute an already-parsed non-SELECT statement.
    pub(crate) fn run_parsed(&self, stmt: Stmt) -> Result<usize, DbError> {
        match stmt {
            Stmt::CreateTable { name, temp, if_not_exists, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| Column { name: c.name, dtype: c.dtype, nullable: c.nullable })
                        .collect(),
                )?;
                self.create_table_opts(&name, schema, temp, if_not_exists)?;
                Ok(0)
            }
            Stmt::DropTable { name, if_exists } => {
                self.drop_table(&name, if_exists)?;
                Ok(0)
            }
            Stmt::Insert { table, columns, rows } => self.run_insert(&table, columns, rows),
            Stmt::Update { table, sets, where_clause } => {
                self.run_update(&table, sets, where_clause)
            }
            Stmt::Delete { table, where_clause } => self.run_delete(&table, where_clause),
            Stmt::CreateIndex { name, table, column, if_not_exists } => {
                match self.create_index(&name, &table, &column) {
                    Ok(()) => Ok(0),
                    Err(DbError::Execution(_)) if if_not_exists => Ok(0),
                    Err(e) => Err(e),
                }
            }
            Stmt::Select(_) => Err(DbError::Execution(
                "use query() for SELECT statements".into(),
            )),
        }
    }

    /// Create a secondary hash index over `table.column`. A second index on
    /// an already-indexed column is a no-op.
    pub fn create_index(&self, name: &str, table: &str, column: &str) -> Result<(), DbError> {
        let t = self.table(table)?;
        let mut guard = t.write();
        guard.create_index(name, column)
    }

    /// Run a SELECT and return its rows.
    pub fn query(&self, sql_text: &str) -> Result<ResultSet, DbError> {
        match sql::parse_statement(sql_text)? {
            Stmt::Select(sel) => exec::run_select(self, &sel),
            _ => Err(DbError::Execution("query() only accepts SELECT statements".into())),
        }
    }

    /// Run a SELECT through the unoptimized reference executor: full table
    /// snapshots, interpreted expression evaluation and nested-loop joins.
    /// Exists as the oracle for the equivalence tests and as the baseline
    /// for the `microbench` binary — not for production use.
    pub fn query_reference(&self, sql_text: &str) -> Result<ResultSet, DbError> {
        match sql::parse_statement(sql_text)? {
            Stmt::Select(sel) => exec::run_select_reference(self, &sel),
            _ => Err(DbError::Execution("query() only accepts SELECT statements".into())),
        }
    }

    fn run_insert(
        &self,
        table: &str,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<sql::SqlExpr>>,
    ) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let mut guard = t.write();
        let schema = guard.schema.clone();
        let empty_schema = Schema::default();
        let empty_row: Vec<Value> = Vec::new();
        let const_ctx = RowCtx { schema: &empty_schema, row: &empty_row };

        let mut n = 0;
        for row_exprs in rows {
            let values: Result<Vec<Value>, DbError> =
                row_exprs.iter().map(|e| expr::eval(e, &const_ctx)).collect();
            let values = values?;
            let full_row = match &columns {
                None => values,
                Some(cols) => {
                    if cols.len() != values.len() {
                        return Err(DbError::Type(format!(
                            "INSERT column list has {} names but {} values",
                            cols.len(),
                            values.len()
                        )));
                    }
                    let mut full = vec![Value::Null; schema.arity()];
                    for (c, v) in cols.iter().zip(values) {
                        let i = schema
                            .index_of(c)
                            .ok_or_else(|| DbError::NoSuchColumn(c.clone()))?;
                        full[i] = v;
                    }
                    full
                }
            };
            guard.insert(full_row)?;
            n += 1;
        }
        Ok(n)
    }

    fn run_update(
        &self,
        table: &str,
        sets: Vec<(String, sql::SqlExpr)>,
        where_clause: Option<sql::SqlExpr>,
    ) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let mut guard = t.write();
        let schema = guard.schema.clone();
        // Resolve target columns up front.
        let mut targets = Vec::with_capacity(sets.len());
        for (name, e) in &sets {
            let i = schema.index_of(name).ok_or_else(|| DbError::NoSuchColumn(name.clone()))?;
            targets.push((i, e));
        }
        let mut err: Option<DbError> = None;
        let n = guard.update_where(|row| {
            if err.is_some() {
                return false;
            }
            let ctx = RowCtx { schema: &schema, row };
            let hit = match &where_clause {
                None => true,
                Some(w) => match expr::eval(w, &ctx) {
                    Ok(v) => expr::truthy(&v),
                    Err(e) => {
                        err = Some(e);
                        return false;
                    }
                },
            };
            if !hit {
                return false;
            }
            // Evaluate all RHS against the pre-update row, then assign.
            let mut new_vals = Vec::with_capacity(targets.len());
            for (i, e) in &targets {
                match expr::eval(e, &RowCtx { schema: &schema, row }) {
                    Ok(v) => match v.coerce(schema.columns[*i].dtype) {
                        Ok(cv) => new_vals.push((*i, cv)),
                        Err(m) => {
                            err = Some(DbError::Type(m));
                            return false;
                        }
                    },
                    Err(e) => {
                        err = Some(e);
                        return false;
                    }
                }
            }
            for (i, v) in new_vals {
                row[i] = v;
            }
            true
        });
        match err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    fn run_delete(
        &self,
        table: &str,
        where_clause: Option<sql::SqlExpr>,
    ) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let mut guard = t.write();
        let schema = guard.schema.clone();
        let mut err: Option<DbError> = None;
        let n = guard.delete_where(|row| {
            if err.is_some() {
                return false;
            }
            match &where_clause {
                None => true,
                Some(w) => match expr::eval(w, &RowCtx { schema: &schema, row }) {
                    Ok(v) => expr::truthy(&v),
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                },
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn programmatic_api_roundtrip() {
        let db = Engine::new();
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("v", DataType::Float),
        ])
        .unwrap();
        db.create_table("t", schema).unwrap();
        db.insert_rows("t", vec![vec![Value::Int(1), Value::Float(2.0)]]).unwrap();
        let (schema, rows) = db.read_snapshot("t").unwrap();
        assert_eq!(schema.arity(), 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(db.row_count("t").unwrap(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(matches!(db.execute("CREATE TABLE t (a INTEGER)"), Err(DbError::TableExists(_))));
        db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)").unwrap();
    }

    #[test]
    fn drop_semantics() {
        let db = Engine::new();
        assert!(db.execute("DROP TABLE nope").is_err());
        db.execute("DROP TABLE IF EXISTS nope").unwrap();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("DROP TABLE t").unwrap();
        assert!(!db.has_table("t"));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT, c FLOAT)").unwrap();
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)").unwrap();
        let rs = db.query("SELECT a, b, c FROM t").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(7), Value::Null, Value::Float(1.5)]);
    }

    #[test]
    fn insert_rejects_unknown_column() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(matches!(
            db.execute("INSERT INTO t (zzz) VALUES (1)"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn update_uses_pre_update_values() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        db.execute("UPDATE t SET a = b, b = a").unwrap();
        let rs = db.query("SELECT a, b FROM t").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn query_rejects_non_select_and_vice_versa() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(db.query("INSERT INTO t VALUES (1)").is_err());
        assert!(db.execute("SELECT a FROM t").is_err());
    }

    #[test]
    fn resultset_accessors() {
        let db = Engine::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        let rs = db.query("SELECT a, b FROM t ORDER BY a").unwrap();
        assert_eq!(rs.get(1, "b"), Some(&Value::Text("y".into())));
        assert_eq!(rs.column("a").unwrap(), vec![Value::Int(1), Value::Int(2)]);
        assert!(rs.get(5, "b").is_none());
        assert!(rs.column("zzz").is_none());
    }

    #[test]
    fn concurrent_readers_do_not_block() {
        use std::thread;
        let db = std::sync::Arc::new(Engine::new());
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..8 {
            let db = db.clone();
            handles.push(thread::spawn(move || {
                let rs = db.query("SELECT count(*) FROM t").unwrap();
                assert_eq!(rs.rows()[0][0], Value::Int(100));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
