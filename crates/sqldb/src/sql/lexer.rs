//! SQL tokenizer.

use crate::error::DbError;

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (identifiers may be dot-qualified).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string (quotes removed, `''` unescaped).
    Str(String),
    /// Operator or punctuation.
    Sym(&'static str),
}

impl Token {
    /// Case-insensitive keyword test.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(src: &str) -> Result<Vec<Token>, DbError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '-' && chars.get(i + 1) == Some(&'-') {
            // Line comment.
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c.is_ascii_digit()
            || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            let mut is_float = false;
            while i < chars.len() {
                let d = chars[i];
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else if (d == 'e' || d == 'E')
                    && chars
                        .get(i + 1)
                        .is_some_and(|n| n.is_ascii_digit() || *n == '+' || *n == '-')
                {
                    is_float = true;
                    i += 2;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    break;
                } else {
                    break;
                }
            }
            let s: String = chars[start..i].iter().collect();
            if is_float {
                toks.push(Token::Float(s.parse().map_err(|_| bad_num(&s))?));
            } else {
                toks.push(Token::Int(s.parse().map_err(|_| bad_num(&s))?));
            }
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                match chars.get(i) {
                    None => return Err(DbError::Parse("unterminated string literal".into())),
                    Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some('\'') => {
                        i += 1;
                        break;
                    }
                    Some(&x) => {
                        s.push(x);
                        i += 1;
                    }
                }
            }
            toks.push(Token::Str(s));
        } else if (c == 'E' || c == 'e') && chars.get(i + 1) == Some(&'\'') {
            // Escaped string literal (PostgreSQL style): E'line1\nline2'.
            // The dump emits these for text containing control characters so
            // that every dumped statement stays on a single line.
            i += 2;
            let mut s = String::new();
            loop {
                match chars.get(i) {
                    None => return Err(DbError::Parse("unterminated string literal".into())),
                    Some('\\') => {
                        match chars.get(i + 1) {
                            Some('n') => s.push('\n'),
                            Some('r') => s.push('\r'),
                            Some('t') => s.push('\t'),
                            Some('\\') => s.push('\\'),
                            Some('\'') => s.push('\''),
                            Some('0') => s.push('\0'),
                            other => {
                                return Err(DbError::Parse(format!(
                                    "unknown escape '\\{}' in E'...' literal",
                                    other.map(|c| c.to_string()).unwrap_or_default()
                                )))
                            }
                        }
                        i += 2;
                    }
                    Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some('\'') => {
                        i += 1;
                        break;
                    }
                    Some(&x) => {
                        s.push(x);
                        i += 1;
                    }
                }
            }
            toks.push(Token::Str(s));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                i += 1;
            }
            toks.push(Token::Word(chars[start..i].iter().collect()));
        } else {
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            let sym2 = ["<=", ">=", "<>", "!="].iter().find(|s| **s == two);
            if let Some(s) = sym2 {
                toks.push(Token::Sym(s));
                i += 2;
            } else {
                let s = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    other => return Err(DbError::Parse(format!("unexpected character '{other}'"))),
                };
                toks.push(Token::Sym(s));
                i += 1;
            }
        }
    }
    Ok(toks)
}

fn bad_num(s: &str) -> DbError {
    DbError::Parse(format!("bad numeric literal '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_strings() {
        let t = tokenize("SELECT a.b, 'it''s', 3, 4.5, 1e3 FROM t").unwrap();
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert_eq!(t[1], Token::Word("a.b".into()));
        assert_eq!(t[3], Token::Str("it's".into()));
        assert_eq!(t[5], Token::Int(3));
        assert_eq!(t[7], Token::Float(4.5));
        assert_eq!(t[9], Token::Float(1000.0));
    }

    #[test]
    fn symbols() {
        let t = tokenize("a <= b <> c != d >= e = f").unwrap();
        let syms: Vec<&Token> = t.iter().filter(|x| matches!(x, Token::Sym(_))).collect();
        assert_eq!(
            syms,
            vec![
                &Token::Sym("<="),
                &Token::Sym("<>"),
                &Token::Sym("!="),
                &Token::Sym(">="),
                &Token::Sym("=")
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn keyword_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert!(t[0].is_kw("select"));
        assert!(!t[0].is_kw("FROM"));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn escaped_string_literals() {
        let t = tokenize(r"E'a\nb\tc\\d''e'").unwrap();
        assert_eq!(t, vec![Token::Str("a\nb\tc\\d'e".into())]);
        // Lowercase prefix and backslash-quote escape both work.
        let t = tokenize(r"e'x\'y'").unwrap();
        assert_eq!(t, vec![Token::Str("x'y".into())]);
        // A word starting with E that is not followed by a quote stays a word.
        let t = tokenize("Elapsed").unwrap();
        assert_eq!(t, vec![Token::Word("Elapsed".into())]);
        assert!(tokenize(r"E'bad \q escape'").is_err());
        assert!(tokenize("E'unterminated").is_err());
    }
}
