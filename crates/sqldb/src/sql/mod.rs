//! SQL text front-end: lexer, AST and parser.
//!
//! The dialect is the subset perfbase needs (see crate docs): CREATE
//! \[TEMP\] TABLE, DROP TABLE, INSERT, SELECT (WHERE / JOIN ON equality /
//! GROUP BY / ORDER BY / LIMIT / DISTINCT), UPDATE and DELETE.

mod ast;
mod lexer;
mod parser;

pub use ast::{ColumnDef, JoinClause, OrderKey, SelectItem, SelectStmt, SqlExpr, Stmt, UnOp};
pub use lexer::{tokenize, Token};
pub use parser::{is_reserved, parse_script, parse_statement};
