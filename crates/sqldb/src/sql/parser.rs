//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{tokenize, Token};
use crate::error::DbError;
use crate::value::{DataType, Value};

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse_statement(src: &str) -> Result<Stmt, DbError> {
    let toks = tokenize(src)?;
    let mut p = P { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if p.pos < p.toks.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parse a `;`-separated script into statements. String literals may
/// contain semicolons — splitting happens at the token level.
pub fn parse_script(src: &str) -> Result<Vec<Stmt>, DbError> {
    let toks = tokenize(src)?;
    let mut p = P { toks, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat_sym(";") {}
        if p.pos >= p.toks.len() {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

struct P {
    toks: Vec<Token>,
    pos: usize,
}

impl P {
    fn err(&self, msg: &str) -> DbError {
        DbError::Parse(format!("{msg} (near token {})", self.pos))
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), DbError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.peek() {
            Some(Token::Word(w)) if !is_reserved(w) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn statement(&mut self) -> Result<Stmt, DbError> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("INDEX") {
                self.create_index(false)
            } else if self.eat_kw("ORDERED") {
                self.expect_kw("INDEX")?;
                self.create_index(true)
            } else {
                self.create_table()
            }
        } else if self.eat_kw("DROP") {
            self.drop_table()
        } else if self.eat_kw("INSERT") {
            self.insert()
        } else if self.peek_kw("SELECT") {
            Ok(Stmt::Select(self.select()?))
        } else if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            Ok(Stmt::Explain {
                analyze,
                select: self.select()?,
            })
        } else if self.eat_kw("UPDATE") {
            self.update()
        } else if self.eat_kw("DELETE") {
            self.delete()
        } else {
            Err(self.err("expected CREATE, DROP, INSERT, SELECT, UPDATE, DELETE or EXPLAIN"))
        }
    }

    fn create_table(&mut self) -> Result<Stmt, DbError> {
        let temp = self.eat_kw("TEMP") || self.eat_kw("TEMPORARY");
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_word = match self.peek() {
                Some(Token::Word(w)) => w.clone(),
                _ => return Err(self.err("expected a column type")),
            };
            let dtype = DataType::from_sql_name(&ty_word)
                .ok_or_else(|| self.err(&format!("unknown type '{ty_word}'")))?;
            self.pos += 1;
            let mut nullable = true;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                nullable = false;
            } else if self.eat_kw("NULL") {
                // explicit nullable
            }
            columns.push(ColumnDef {
                name: col,
                dtype,
                nullable,
            });
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        let columnar = if self.eat_kw("USING") {
            self.expect_kw("COLUMNAR")?;
            true
        } else {
            false
        };
        Ok(Stmt::CreateTable {
            name,
            temp,
            if_not_exists,
            columns,
            columnar,
        })
    }

    fn create_index(&mut self, ordered: bool) -> Result<Stmt, DbError> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym("(")?;
        let column = self.ident()?;
        self.expect_sym(")")?;
        Ok(Stmt::CreateIndex {
            name,
            table,
            column,
            if_not_exists,
            ordered,
        })
    }

    fn drop_table(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Stmt::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_sym("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Stmt, DbError> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete {
            table,
            where_clause,
        })
    }

    fn select(&mut self) -> Result<SelectStmt, DbError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    match self.peek() {
                        // Implicit alias: bare identifier directly after expr.
                        Some(Token::Word(w)) if !is_reserved(w) && !w.contains('.') => {
                            let w = w.clone();
                            self.pos += 1;
                            Some(w)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }

        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_kw("FROM") {
            from = Some(self.ident()?);
            while self.eat_kw("JOIN") || (self.eat_kw("INNER") && self.eat_kw("JOIN")) {
                let table = self.ident()?;
                self.expect_kw("ON")?;
                let left_col = self.ident()?;
                self.expect_sym("=")?;
                let right_col = self.ident()?;
                joins.push(JoinClause {
                    table,
                    left_col,
                    right_col,
                });
            }
        }

        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let (column, position) = match self.peek() {
                    Some(Token::Int(n)) => {
                        let n = *n;
                        self.pos += 1;
                        if n < 1 {
                            return Err(self.err("ORDER BY position must be >= 1"));
                        }
                        (String::new(), Some(n as usize))
                    }
                    _ => {
                        // Accept function-call shaped keys like avg(bw):
                        // consume the textual form of a full expression.
                        let e = self.expr()?;
                        (e.to_string_for_order(), None)
                    }
                };
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey {
                    column,
                    position,
                    desc,
                });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("LIMIT") {
            match self.peek() {
                Some(Token::Int(n)) if *n >= 0 => {
                    let n = *n as usize;
                    self.pos += 1;
                    Some(n)
                }
                _ => return Err(self.err("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    // Expression grammar: or > and > not > cmp > add > mul > unary > primary
    fn expr(&mut self) -> Result<SqlExpr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Binary("OR", Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::Binary("AND", Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(SqlExpr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr, DbError> {
        let lhs = self.add_expr()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN / [NOT] LIKE
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(SqlExpr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.peek() {
                Some(Token::Str(s)) => s.clone(),
                _ => return Err(self.err("LIKE expects a string literal")),
            };
            self.pos += 1;
            return Ok(SqlExpr::Like {
                expr: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(self.err("expected IN or LIKE after NOT"));
        }

        for (sym, op) in [
            ("=", "="),
            ("<>", "<>"),
            ("!=", "<>"),
            ("<=", "<="),
            (">=", ">="),
            ("<", "<"),
            (">", ">"),
        ] {
            if self.eat_sym(sym) {
                let rhs = self.add_expr()?;
                return Ok(SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                let rhs = self.mul_expr()?;
                lhs = SqlExpr::Binary("+", Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("-") {
                let rhs = self.mul_expr()?;
                lhs = SqlExpr::Binary("-", Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, DbError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_sym("*") {
                let rhs = self.unary_expr()?;
                lhs = SqlExpr::Binary("*", Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("/") {
                let rhs = self.unary_expr()?;
                lhs = SqlExpr::Binary("/", Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("%") {
                let rhs = self.unary_expr()?;
                lhs = SqlExpr::Binary("%", Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<SqlExpr, DbError> {
        if self.eat_sym("-") {
            let inner = self.unary_expr()?;
            return Ok(SqlExpr::Unary(UnOp::Neg, Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr, DbError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Text(s)))
            }
            Some(Token::Sym("(")) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            Some(Token::Word(w)) => {
                if w.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(SqlExpr::Lit(Value::Null));
                }
                if w.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(SqlExpr::Lit(Value::Bool(true)));
                }
                if w.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(SqlExpr::Lit(Value::Bool(false)));
                }
                if is_reserved(&w) {
                    return Err(self.err(&format!("unexpected keyword '{w}'")));
                }
                self.pos += 1;
                if self.eat_sym("(") {
                    // Function call.
                    let name = w.to_ascii_lowercase();
                    if self.eat_sym("*") {
                        self.expect_sym(")")?;
                        return Ok(SqlExpr::Func {
                            name,
                            args: vec![SqlExpr::Lit(Value::Int(1))],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym(")")?;
                    }
                    Ok(SqlExpr::Func {
                        name,
                        args,
                        star: false,
                    })
                } else {
                    Ok(SqlExpr::Col(w))
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

impl SqlExpr {
    /// Textual form used to match ORDER BY keys against output column names:
    /// bare columns stay bare, everything else uses `Display`.
    pub(crate) fn to_string_for_order(&self) -> String {
        match self {
            SqlExpr::Col(c) => c.clone(),
            other => other.to_string(),
        }
    }
}

/// Is `w` an SQL keyword of this dialect? Exposed so that upper layers
/// (perfbase variable names become column names) can refuse collisions.
pub fn is_reserved(w: &str) -> bool {
    const KW: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "ORDER",
        "LIMIT",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "LIKE",
        "AS",
        "JOIN",
        "INNER",
        "ON",
        "CREATE",
        "DROP",
        "TABLE",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "DISTINCT",
        "TEMP",
        "TEMPORARY",
        "IF",
        "EXISTS",
        "ASC",
        "DESC",
        "TRUE",
        "FALSE",
    ];
    KW.iter().any(|k| w.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_forms() {
        let s = parse_statement(
            "CREATE TEMP TABLE IF NOT EXISTS t (a INTEGER NOT NULL, b FLOAT, c TEXT NULL)",
        )
        .unwrap();
        match s {
            Stmt::CreateTable {
                name,
                temp,
                if_not_exists,
                columns,
                columnar,
            } => {
                assert_eq!(name, "t");
                assert!(temp);
                assert!(if_not_exists);
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].nullable);
                assert!(columns[1].nullable);
                assert!(!columnar);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_table_using_columnar() {
        let s = parse_statement("CREATE TABLE t (a INTEGER, fs TEXT) USING COLUMNAR").unwrap();
        match s {
            Stmt::CreateTable { name, columnar, .. } => {
                assert_eq!(name, "t");
                assert!(columnar);
            }
            other => panic!("{other:?}"),
        }
        // Case-insensitive, and an incomplete USING clause is an error.
        assert!(matches!(
            parse_statement("create table t (a integer) using columnar"),
            Ok(Stmt::CreateTable { columnar: true, .. })
        ));
        assert!(parse_statement("CREATE TABLE t (a INTEGER) USING").is_err());
        assert!(parse_statement("CREATE TABLE t (a INTEGER) USING ROWSTORE").is_err());
    }

    #[test]
    fn create_index_forms() {
        let s = parse_statement("CREATE INDEX IF NOT EXISTS ix_run ON pb_runs (run_id)").unwrap();
        match s {
            Stmt::CreateIndex {
                name,
                table,
                column,
                if_not_exists,
                ordered,
            } => {
                assert_eq!(name, "ix_run");
                assert_eq!(table, "pb_runs");
                assert_eq!(column, "run_id");
                assert!(if_not_exists);
                assert!(!ordered);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("CREATE INDEX ON t (a)").is_err());
        assert!(parse_statement("CREATE INDEX i ON t ()").is_err());
    }

    #[test]
    fn create_ordered_index_forms() {
        let s = parse_statement("CREATE ORDERED INDEX IF NOT EXISTS ix_bw ON runs (bw)").unwrap();
        match s {
            Stmt::CreateIndex {
                name,
                table,
                column,
                if_not_exists,
                ordered,
            } => {
                assert_eq!(name, "ix_bw");
                assert_eq!(table, "runs");
                assert_eq!(column, "bw");
                assert!(if_not_exists);
                assert!(ordered);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("CREATE ORDERED TABLE t (a INTEGER)").is_err());
        // ORDERED is not reserved: it stays usable as an identifier.
        parse_statement("SELECT ordered FROM t WHERE ordered = 1").unwrap();
        parse_statement("CREATE TABLE ordered (a INTEGER)").unwrap();
    }

    #[test]
    fn explain_forms() {
        let s = parse_statement("EXPLAIN SELECT * FROM runs WHERE run_id = 3").unwrap();
        match s {
            Stmt::Explain { analyze, select } => {
                assert!(!analyze);
                assert_eq!(select.from.as_deref(), Some("runs"));
            }
            other => panic!("{other:?}"),
        }
        let s = parse_statement("EXPLAIN ANALYZE SELECT count(*) FROM runs").unwrap();
        assert!(matches!(s, Stmt::Explain { analyze: true, .. }));
        // Only SELECTs can be explained.
        assert!(parse_statement("EXPLAIN INSERT INTO t VALUES (1)").is_err());
        // EXPLAIN/ANALYZE are not reserved: both stay usable as identifiers.
        parse_statement("SELECT explain, analyze FROM t WHERE explain = 1").unwrap();
        parse_statement("CREATE TABLE explain (analyze INTEGER)").unwrap();
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Stmt::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_full_clause_set() {
        let s = parse_statement(
            "SELECT DISTINCT fs, avg(bw) AS abw FROM runs JOIN meta ON runs.id = meta.id \
             WHERE n >= 4 AND fs IN ('ufs','nfs') GROUP BY fs ORDER BY abw DESC, 1 LIMIT 10",
        )
        .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert!(sel.distinct);
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.from.as_deref(), Some("runs"));
                assert_eq!(sel.joins.len(), 1);
                assert_eq!(sel.joins[0].left_col, "runs.id");
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.group_by, vec!["fs"]);
                assert_eq!(sel.order_by.len(), 2);
                assert!(sel.order_by[0].desc);
                assert_eq!(sel.order_by[1].position, Some(1));
                assert_eq!(sel.limit, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let s = parse_statement("SELECT count(*) FROM t").unwrap();
        match s {
            Stmt::Select(sel) => match &sel.items[0] {
                SelectItem::Expr {
                    expr: SqlExpr::Func { name, star, .. },
                    ..
                } => {
                    assert_eq!(name, "count");
                    assert!(*star);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_operators() {
        for src in [
            "SELECT a FROM t WHERE a IS NULL",
            "SELECT a FROM t WHERE a IS NOT NULL",
            "SELECT a FROM t WHERE a NOT IN (1,2)",
            "SELECT a FROM t WHERE name LIKE 'bio_%'",
            "SELECT a FROM t WHERE name NOT LIKE '%run1'",
            "SELECT a FROM t WHERE NOT (a = 1 OR b <> 2)",
            "SELECT a FROM t WHERE a % 2 = 0",
        ] {
            parse_statement(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn update_delete() {
        parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        parse_statement("DELETE FROM t WHERE id IN (1, 2, 3)").unwrap();
        parse_statement("DELETE FROM t").unwrap();
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELEKT 1").is_err());
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("SELECT a FROM t WHERE").is_err());
        assert!(parse_statement("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statement("SELECT 1 extra junk everywhere (").is_err());
    }

    #[test]
    fn select_without_from() {
        let s = parse_statement("SELECT 1 + 2 AS three").unwrap();
        match s {
            Stmt::Select(sel) => {
                assert!(sel.from.is_none());
                match &sel.items[0] {
                    SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("three")),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
