//! SQL abstract syntax tree.

use crate::value::{DataType, Value};
use std::fmt;

/// A complete statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE [TEMP] TABLE [IF NOT EXISTS] name (cols) [USING COLUMNAR]`
    CreateTable {
        /// Table name.
        name: String,
        /// TEMP table (dropped by `drop_temp_tables`).
        temp: bool,
        /// Swallow the "already exists" error.
        if_not_exists: bool,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// `USING COLUMNAR`: store the table in the columnar layout
        /// (typed vectors + dictionary-encoded text, see `crate::column`).
        columnar: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`
    DropTable {
        /// Table name.
        name: String,
        /// Swallow the "no such table" error.
        if_exists: bool,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row value expressions (must be constant).
        rows: Vec<Vec<SqlExpr>>,
    },
    /// A SELECT query.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] <select>` — render the access plan the
    /// optimizer would choose (and, with ANALYZE, execute the query and
    /// report actual row counts).
    Explain {
        /// Execute the query and report actuals.
        analyze: bool,
        /// The explained SELECT.
        select: SelectStmt,
    },
    /// `UPDATE name SET col = expr, ... [WHERE ...]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, SqlExpr)>,
        /// Row filter.
        where_clause: Option<SqlExpr>,
    },
    /// `DELETE FROM name [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        where_clause: Option<SqlExpr>,
    },
    /// `CREATE [ORDERED] INDEX [IF NOT EXISTS] name ON table (column)` — a
    /// secondary index for `WHERE column = <const>` point lookups; the
    /// ORDERED variant additionally serves `IN (...)` probes cheaply and
    /// range conjuncts (`<`, `<=`, `>`, `>=`, BETWEEN-shaped pairs).
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column.
        column: String,
        /// Swallow the "already exists" error.
        if_not_exists: bool,
        /// Sorted (range-capable) index variant.
        ordered: bool,
    },
}

/// Column definition inside CREATE TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// NULL allowed?
    pub nullable: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Base table (None for table-less `SELECT 1+1`).
    pub from: Option<String>,
    /// INNER JOINs applied left-to-right.
    pub joins: Vec<JoinClause>,
    /// Row filter.
    pub where_clause: Option<SqlExpr>,
    /// Grouping column names.
    pub group_by: Vec<String>,
    /// Sort keys, applied to the projected output.
    pub order_by: Vec<OrderKey>,
    /// Row limit.
    pub limit: Option<usize>,
}

/// One item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// `JOIN table ON left = right` (equality joins only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// Joined table name.
    pub table: String,
    /// Column from either side.
    pub left_col: String,
    /// Column from the other side.
    pub right_col: String,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// Output column name, or 1-based position when `position` is set.
    pub column: String,
    /// 1-based positional reference (`ORDER BY 2`).
    pub position: Option<usize>,
    /// Descending?
    pub desc: bool,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// SQL expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Literal value.
    Lit(Value),
    /// Column reference (possibly `table.column`).
    Col(String),
    /// Unary operation.
    Unary(UnOp, Box<SqlExpr>),
    /// Binary operation; the operator is its SQL spelling
    /// (`=, <>, <, <=, >, >=, +, -, *, /, %, AND, OR`).
    Binary(&'static str, Box<SqlExpr>, Box<SqlExpr>),
    /// Function call — scalar or aggregate, decided by the executor.
    /// `count(*)` is represented as `Func("count", [Lit(Int(1))], star=true)`.
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<SqlExpr>,
        /// Was written as `f(*)`.
        star: bool,
    },
    /// `x IN (a, b, c)` / `x NOT IN (...)`.
    InList {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Candidate list.
        list: Vec<SqlExpr>,
        /// NOT IN.
        negated: bool,
    },
    /// `x IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
    /// `x [NOT] LIKE 'pat%'` with `%` and `_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Pattern literal.
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
}

impl SqlExpr {
    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Func { name, args, .. } => {
                crate::aggregate::AggKind::from_name(name).is_some()
                    || args.iter().any(SqlExpr::contains_aggregate)
            }
            SqlExpr::Unary(_, x) => x.contains_aggregate(),
            SqlExpr::Binary(_, l, r) => l.contains_aggregate() || r.contains_aggregate(),
            SqlExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(SqlExpr::contains_aggregate)
            }
            SqlExpr::IsNull { expr, .. } | SqlExpr::Like { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }
}

impl fmt::Display for SqlExpr {
    /// Canonical textual form — used to derive output column names, e.g.
    /// `avg(bw)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Lit(Value::Text(s)) => write!(f, "'{s}'"),
            SqlExpr::Lit(v) => write!(f, "{v}"),
            SqlExpr::Col(c) => f.write_str(c),
            SqlExpr::Unary(UnOp::Neg, x) => write!(f, "-{x}"),
            SqlExpr::Unary(UnOp::Not, x) => write!(f, "NOT {x}"),
            SqlExpr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            SqlExpr::Func { name, args, star } => {
                if *star {
                    write!(f, "{name}(*)")
                } else {
                    let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                    write!(f, "{name}({})", parts.join(", "))
                }
            }
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => {
                let parts: Vec<String> = list.iter().map(|a| a.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    parts.join(", ")
                )
            }
            SqlExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            SqlExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "{expr} {}LIKE '{pattern}'",
                    if *negated { "NOT " } else { "" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = SqlExpr::Func {
            name: "avg".into(),
            args: vec![SqlExpr::Col("bw".into())],
            star: false,
        };
        assert_eq!(e.to_string(), "avg(bw)");
        let b = SqlExpr::Binary("*", Box::new(e), Box::new(SqlExpr::Lit(Value::Int(2))));
        assert_eq!(b.to_string(), "(avg(bw) * 2)");
    }

    #[test]
    fn aggregate_detection() {
        let agg = SqlExpr::Func {
            name: "max".into(),
            args: vec![SqlExpr::Col("x".into())],
            star: false,
        };
        assert!(agg.contains_aggregate());
        let scalar = SqlExpr::Func {
            name: "abs".into(),
            args: vec![SqlExpr::Col("x".into())],
            star: false,
        };
        assert!(!scalar.contains_aggregate());
        let nested = SqlExpr::Binary("+", Box::new(agg), Box::new(scalar));
        assert!(nested.contains_aggregate());
    }
}
