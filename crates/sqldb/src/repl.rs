//! Shard replication and failover via WAL log shipping.
//!
//! Each backend node's write-ahead log already records every committed
//! mutation in order. This module turns that log into a replication
//! stream: a [`ShipStream`] installed as the node's [`FrameTap`] buffers
//! appended frames (up to a configurable *lag budget*), ships them —
//! sequence-numbered and CRC-re-verified with the same `frame_crc` the
//! log itself uses — to the node's replicas over the simulated
//! interconnect, and applies them on the replica engines through the
//! normal replay path. A replica is therefore always a *prefix-consistent*
//! copy of its primary at a known WAL sequence number.
//!
//! Three properties fall out of where the tap hooks sit in the log:
//!
//! * **Commit barrier** — `on_commit` fires right after the primary's
//!   fsync, shipping and applying everything buffered, so by the time a
//!   commit is durable on the primary its replicas have applied it.
//! * **Compaction barrier** — `pre_compact` ships and applies pending
//!   frames *before* checkpoint compaction drops them from the log, so a
//!   frame can never be compacted away before every live replica has it.
//! * **Unlogged apply** — replicas apply shipped statements through
//!   [`crate::Engine`]'s unlogged replay, never through their own logged execute
//!   path. Two primaries shipping to each other under their own WAL
//!   mutexes would otherwise deadlock (each holding its log while waiting
//!   to log into the other's). The cost: a replica's copy is
//!   memory-resident until it is promoted and checkpointed.
//!
//! Reads load-balance across primary and fresh replicas round-robin; a
//! replica that has not applied every frame its primary ever appended
//! fails the *freshness gate* and the read falls back to the primary.
//!
//! Failover: when a node dies ([`crate::cluster::Cluster::kill_node`], or
//! any [`crate::wal::IoFailpoint`] trip — including mid-shipment),
//! [`Replicator::promote`]
//! picks the most-caught-up live replica, replays its shipped-but-unapplied
//! tail (CRC-checked, with its own mid-promotion kill point), and reports
//! the promotion so the caller can rewrite the
//! [`crate::cluster::ShardMap`] and resume.
#![warn(missing_docs)]

use crate::cluster::Cluster;
use crate::error::DbError;
use crate::sync::Mutex;
use crate::wal::{frame_crc, FrameTap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Configuration for a [`Replicator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplOptions {
    /// Replica copies per shard beyond the primary (capped by the backend
    /// count — there is no point replicating a shard onto its own node).
    pub replicas: usize,
    /// Frames a primary may buffer before shipping mid-window. Commits
    /// and compactions always flush regardless, so the budget only trades
    /// shipment batching against how far a replica can trail between
    /// commits.
    pub lag_budget: usize,
}

impl Default for ReplOptions {
    fn default() -> Self {
        ReplOptions {
            replicas: 1,
            lag_budget: 8,
        }
    }
}

/// The nodes holding replica copies of `primary`'s shards: the next
/// `replicas` backends on the ring of backend nodes `1..nodes`, skipping
/// the primary itself. The frontend (node 0) is never a primary here —
/// it keeps the run index, not shard data — and never hosts replicas.
/// Returns at most `nodes - 2` replicas (the distinct backends available).
pub fn replica_nodes(primary: usize, nodes: usize, replicas: usize) -> Vec<usize> {
    if primary == 0 || primary >= nodes || nodes <= 2 || replicas == 0 {
        return Vec::new();
    }
    let backends = nodes - 1;
    (1..=replicas.min(backends - 1))
        .map(|k| (primary - 1 + k) % backends + 1)
        .collect()
}

/// One in-flight replication frame: the WAL frame's sequence number, its
/// stored CRC (re-verified on every hop), and the statement payload.
#[derive(Debug, Clone)]
struct Frame {
    seq: u64,
    crc: u32,
    stmt: String,
}

/// Per-replica shipping state, owned by the primary's [`ShipStream`].
#[derive(Debug)]
struct ReplicaState {
    /// Node index hosting this replica.
    node: usize,
    /// Frames shipped but not yet applied (the replica's unapplied tail).
    inbox: Mutex<Vec<Frame>>,
    /// Highest sequence number shipped to this replica.
    shipped_seq: AtomicU64,
    /// Highest sequence number applied on this replica's engine.
    applied_seq: AtomicU64,
}

/// Point-in-time replication totals, aggregated over every stream by
/// [`Replicator::report`] (independent of the `obs` enable switch, like
/// the cluster's transfer stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplReport {
    /// Frames shipped, counted once per replica each frame reached.
    pub frames_shipped: u64,
    /// Shipped frames applied on replica engines (including promotion
    /// tail replays).
    pub frames_applied: u64,
    /// Shard reads routed to a replica.
    pub replica_reads: u64,
    /// Shard reads served by the primary.
    pub primary_reads: u64,
    /// Reads that skipped a stale replica (freshness-gate fallback).
    pub stale_fallbacks: u64,
    /// Completed promotions.
    pub failovers: u64,
    /// Pre-compaction barriers taken.
    pub compact_barriers: u64,
}

/// The replication stream of one primary node: buffers that node's WAL
/// frames and fans them out to its replicas. Installed as the primary
/// engine's [`FrameTap`]; also the read-routing authority for the
/// primary's shards.
pub struct ShipStream {
    primary: usize,
    /// Weak: the stream is held by the primary engine's WAL (via the tap)
    /// and by the [`Replicator`]; a strong cluster handle here would cycle
    /// (cluster → node → engine → wal → tap → cluster).
    cluster: Weak<Cluster>,
    lag_budget: usize,
    /// Appended-but-unshipped frames.
    pending: Mutex<Vec<Frame>>,
    /// Highest sequence number the primary ever appended.
    last_seq: AtomicU64,
    replicas: Vec<Arc<ReplicaState>>,
    /// Round-robin cursor for read routing.
    rr: AtomicUsize,
    /// Set when this stream's primary adopts another node's shards through
    /// a promotion: the adopted tables exist only on the primary, so reads
    /// must stop round-robining onto replicas that never had them.
    degraded: AtomicBool,
    // Report totals (always on, unlike obs counters).
    frames_shipped: AtomicU64,
    frames_applied: AtomicU64,
    replica_reads: AtomicU64,
    primary_reads: AtomicU64,
    stale_fallbacks: AtomicU64,
    compact_barriers: AtomicU64,
}

impl std::fmt::Debug for ShipStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShipStream")
            .field("primary", &self.primary)
            .field("replicas", &self.replicas)
            .field("last_seq", &self.last_seq)
            .finish_non_exhaustive()
    }
}

impl ShipStream {
    fn new(
        primary: usize,
        cluster: Weak<Cluster>,
        lag_budget: usize,
        replicas: Vec<usize>,
    ) -> Self {
        ShipStream {
            primary,
            cluster,
            lag_budget: lag_budget.max(1),
            pending: Mutex::new(Vec::new()),
            last_seq: AtomicU64::new(0),
            replicas: replicas
                .into_iter()
                .map(|node| {
                    Arc::new(ReplicaState {
                        node,
                        inbox: Mutex::new(Vec::new()),
                        shipped_seq: AtomicU64::new(0),
                        applied_seq: AtomicU64::new(0),
                    })
                })
                .collect(),
            rr: AtomicUsize::new(0),
            degraded: AtomicBool::new(false),
            frames_shipped: AtomicU64::new(0),
            frames_applied: AtomicU64::new(0),
            replica_reads: AtomicU64::new(0),
            primary_reads: AtomicU64::new(0),
            stale_fallbacks: AtomicU64::new(0),
            compact_barriers: AtomicU64::new(0),
        }
    }

    /// The node this stream ships from.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// Ship every pending frame to the live replicas. Each frame passes
    /// the primary's ship kill point and a CRC re-verification before any
    /// replica sees it; on a mid-shipment kill the already-shipped prefix
    /// stays shipped and the remainder dies with the primary.
    fn ship(&self) -> Result<(), DbError> {
        let Some(cluster) = self.cluster.upgrade() else {
            return Ok(());
        };
        let mut pending = self.pending.lock();
        if pending.is_empty() {
            return Ok(());
        }
        let t_ship = Instant::now();
        let fp = cluster.node_failpoint(self.primary).clone();
        let live: Vec<&Arc<ReplicaState>> = self
            .replicas
            .iter()
            .filter(|r| cluster.node_alive(r.node))
            .collect();
        let mut shipped = 0usize;
        let mut killed = None;
        for frame in pending.iter() {
            if let Err(e) = fp.admit_ship() {
                killed = Some(e);
                break;
            }
            if frame_crc(frame.seq, frame.stmt.as_bytes()) != frame.crc {
                killed = Some(DbError::Io(format!(
                    "replication frame {} failed CRC re-verification",
                    frame.seq
                )));
                break;
            }
            for r in &live {
                r.inbox.lock().push(frame.clone());
                r.shipped_seq.store(frame.seq, Ordering::SeqCst);
            }
            shipped += 1;
        }
        if shipped > 0 {
            self.frames_shipped
                .fetch_add((shipped * live.len()) as u64, Ordering::Relaxed);
            obs::add(
                obs::Counter::ReplFramesShipped,
                (shipped * live.len()) as u64,
            );
            // One header+payload shipment per replica per batch — frames
            // travel together, amortizing the per-message cost.
            for r in &live {
                let _ = r;
                cluster.charge_shipment(shipped);
            }
        }
        pending.drain(..shipped);
        obs::set(obs::Counter::ReplShipLag, pending.len() as u64);
        obs::record_duration(obs::Hist::ReplShipNs, t_ship.elapsed());
        match killed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Apply every shipped-but-unapplied frame on the live replicas
    /// through the unlogged replay path. Statement errors are tolerated
    /// exactly like WAL recovery tolerates them (counted, not fatal) —
    /// a statement that failed on the primary fails identically here.
    fn apply_inboxes(&self) {
        let Some(cluster) = self.cluster.upgrade() else {
            return;
        };
        for r in &self.replicas {
            if !cluster.node_alive(r.node) {
                continue;
            }
            let frames: Vec<Frame> = std::mem::take(&mut *r.inbox.lock());
            if frames.is_empty() {
                continue;
            }
            let engine = cluster.node(r.node).engine.clone();
            for frame in frames {
                engine.replay_unlogged(std::slice::from_ref(&frame.stmt));
                r.applied_seq.store(frame.seq, Ordering::SeqCst);
                self.frames_applied.fetch_add(1, Ordering::Relaxed);
                obs::incr(obs::Counter::ReplFramesApplied);
            }
        }
    }

    /// Route one shard read: round-robin over the live primary and every
    /// *fresh* live replica (freshness gate: the replica has applied every
    /// frame the primary ever appended). With nothing live, returns the
    /// primary and lets the fetch fail loudly.
    pub fn read_node(&self) -> usize {
        let Some(cluster) = self.cluster.upgrade() else {
            return self.primary;
        };
        if self.degraded.load(Ordering::SeqCst) {
            // The primary holds shards (adopted in a failover) its replicas
            // never received; only it can serve every read.
            self.primary_reads.fetch_add(1, Ordering::Relaxed);
            obs::incr(obs::Counter::ReplPrimaryReads);
            return self.primary;
        }
        let last = self.last_seq.load(Ordering::SeqCst);
        let mut candidates = Vec::with_capacity(1 + self.replicas.len());
        if cluster.node_alive(self.primary) {
            candidates.push(self.primary);
        }
        let mut skipped_stale = false;
        for r in &self.replicas {
            if !cluster.node_alive(r.node) {
                continue;
            }
            if r.applied_seq.load(Ordering::SeqCst) >= last {
                candidates.push(r.node);
            } else {
                skipped_stale = true;
            }
        }
        if candidates.is_empty() {
            return self.primary;
        }
        let pick = candidates[self.rr.fetch_add(1, Ordering::Relaxed) % candidates.len()];
        if pick == self.primary {
            self.primary_reads.fetch_add(1, Ordering::Relaxed);
            obs::incr(obs::Counter::ReplPrimaryReads);
            if skipped_stale {
                self.stale_fallbacks.fetch_add(1, Ordering::Relaxed);
                obs::incr(obs::Counter::ReplStaleFallbacks);
            }
        } else {
            self.replica_reads.fetch_add(1, Ordering::Relaxed);
            obs::incr(obs::Counter::ReplReplicaReads);
        }
        pick
    }

    /// Every replica node of this stream, shipped state aside.
    pub fn replica_node_ids(&self) -> Vec<usize> {
        self.replicas.iter().map(|r| r.node).collect()
    }

    /// `(shipped_seq, applied_seq)` for the replica hosted on `node`.
    pub fn replica_progress(&self, node: usize) -> Option<(u64, u64)> {
        self.replicas.iter().find(|r| r.node == node).map(|r| {
            (
                r.shipped_seq.load(Ordering::SeqCst),
                r.applied_seq.load(Ordering::SeqCst),
            )
        })
    }
}

impl FrameTap for ShipStream {
    fn on_frame(&self, seq: u64, crc: u32, stmt: &str) -> Result<(), DbError> {
        self.last_seq.store(seq, Ordering::SeqCst);
        let lag = {
            let mut pending = self.pending.lock();
            pending.push(Frame {
                seq,
                crc,
                stmt: stmt.to_string(),
            });
            pending.len()
        };
        obs::set(obs::Counter::ReplShipLag, lag as u64);
        if lag >= self.lag_budget {
            self.ship()?;
        }
        Ok(())
    }

    fn on_commit(&self) -> Result<(), DbError> {
        self.ship()?;
        self.apply_inboxes();
        Ok(())
    }

    fn pre_compact(&self) -> Result<(), DbError> {
        self.compact_barriers.fetch_add(1, Ordering::Relaxed);
        obs::incr(obs::Counter::ReplCompactBarriers);
        self.ship()?;
        self.apply_inboxes();
        Ok(())
    }
}

/// The outcome of one failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// The node that died.
    pub dead: usize,
    /// The replica node promoted in its place.
    pub promoted: usize,
    /// Frames from the promoted replica's unapplied tail replayed during
    /// the promotion.
    pub frames_replayed: u64,
    /// The promoted node's applied WAL sequence after the tail replay —
    /// the sequence number the new primary is consistent at.
    pub applied_seq: u64,
}

/// The cluster-wide replication controller: one [`ShipStream`] per
/// backend node, installed as that node's WAL [`FrameTap`] where a log is
/// attached. Owns read routing and failover.
#[derive(Debug)]
pub struct Replicator {
    streams: HashMap<usize, Arc<ShipStream>>,
    opts: ReplOptions,
    failovers: AtomicU64,
}

impl Replicator {
    /// Build the streams for every backend node of `cluster` and install
    /// each as that node's WAL tap (nodes without a WAL keep their stream
    /// for read routing only — callers mirroring writes by hand keep the
    /// replicas exact, so the freshness gate trivially passes).
    pub fn attach(cluster: &Arc<Cluster>, opts: ReplOptions) -> Arc<Replicator> {
        let mut streams = HashMap::new();
        for node in 1..cluster.len() {
            let replicas = replica_nodes(node, cluster.len(), opts.replicas);
            if replicas.is_empty() {
                continue;
            }
            let stream = Arc::new(ShipStream::new(
                node,
                Arc::downgrade(cluster),
                opts.lag_budget,
                replicas,
            ));
            cluster
                .node(node)
                .engine
                .wal_set_tap(Some(stream.clone() as Arc<dyn FrameTap>));
            streams.insert(node, stream);
        }
        Arc::new(Replicator {
            streams,
            opts,
            failovers: AtomicU64::new(0),
        })
    }

    /// Remove every installed tap (the streams stop receiving frames).
    /// Call before detaching a replicated cluster so the engine-held taps
    /// don't outlive the cluster they point at.
    pub fn detach(&self, cluster: &Cluster) {
        for &node in self.streams.keys() {
            cluster.node(node).engine.wal_set_tap(None);
        }
    }

    /// The options this replicator was attached with.
    pub fn options(&self) -> ReplOptions {
        self.opts
    }

    /// The stream shipping from `node`, if it has replicas.
    pub fn stream(&self, node: usize) -> Option<&Arc<ShipStream>> {
        self.streams.get(&node)
    }

    /// The node to serve a shard read owned by `owner`: the owner's
    /// stream routes round-robin across primary and fresh replicas;
    /// owners without replicas serve their own reads.
    pub fn read_node_for(&self, owner: usize) -> usize {
        match self.streams.get(&owner) {
            Some(s) => s.read_node(),
            None => owner,
        }
    }

    /// Fail `dead` over to its most-caught-up live replica: replay that
    /// replica's shipped-but-unapplied tail (CRC-checked, passing the
    /// candidate's mid-promotion kill point per frame) and return the
    /// [`Promotion`]. A candidate that dies mid-promotion is skipped and
    /// the next-most-caught-up replica is tried. The caller rewrites the
    /// [`crate::cluster::ShardMap`] with the result.
    pub fn promote(&self, cluster: &Arc<Cluster>, dead: usize) -> Result<Promotion, DbError> {
        let t_failover = Instant::now();
        let stream = self.streams.get(&dead).ok_or_else(|| {
            DbError::Io(format!(
                "node {dead} has no replication stream to promote from"
            ))
        })?;
        let mut candidates: Vec<&Arc<ReplicaState>> = stream
            .replicas
            .iter()
            .filter(|r| cluster.node_alive(r.node))
            .collect();
        candidates.sort_by_key(|r| std::cmp::Reverse(r.shipped_seq.load(Ordering::SeqCst)));
        for cand in candidates {
            match Self::replay_tail(cluster, stream, cand) {
                Ok(frames_replayed) => {
                    // The promoted node now owns shards its own replicas
                    // never received: pin its stream's reads to it.
                    if let Some(s) = self.streams.get(&cand.node) {
                        s.degraded.store(true, Ordering::SeqCst);
                    }
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                    obs::incr(obs::Counter::ReplFailovers);
                    obs::record_duration(obs::Hist::ReplFailoverNs, t_failover.elapsed());
                    return Ok(Promotion {
                        dead,
                        promoted: cand.node,
                        frames_replayed,
                        applied_seq: cand.applied_seq.load(Ordering::SeqCst),
                    });
                }
                // The candidate died mid-promotion: its kill point tripped
                // its own failpoint, so it drops out of every subsequent
                // liveness check. Try the next one.
                Err(_) => continue,
            }
        }
        Err(DbError::Io(format!(
            "no live replica of node {dead} survived promotion"
        )))
    }

    /// Apply `cand`'s unapplied tail through the replay path. Every frame
    /// passes the candidate node's promotion kill point and a CRC check.
    fn replay_tail(
        cluster: &Arc<Cluster>,
        stream: &ShipStream,
        cand: &ReplicaState,
    ) -> Result<u64, DbError> {
        let fp = cluster.node_failpoint(cand.node).clone();
        fp.check_alive()?;
        let frames: Vec<Frame> = std::mem::take(&mut *cand.inbox.lock());
        let engine = cluster.node(cand.node).engine.clone();
        let mut replayed = 0u64;
        for frame in &frames {
            fp.admit_promotion()?;
            if frame_crc(frame.seq, frame.stmt.as_bytes()) != frame.crc {
                return Err(DbError::Io(format!(
                    "promotion tail frame {} failed CRC re-verification",
                    frame.seq
                )));
            }
            engine.replay_unlogged(std::slice::from_ref(&frame.stmt));
            cand.applied_seq.store(frame.seq, Ordering::SeqCst);
            stream.frames_applied.fetch_add(1, Ordering::Relaxed);
            obs::incr(obs::Counter::ReplFramesApplied);
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Aggregate replication totals across every stream.
    pub fn report(&self) -> ReplReport {
        let mut rep = ReplReport {
            failovers: self.failovers.load(Ordering::Relaxed),
            ..ReplReport::default()
        };
        for stream in self.streams.values() {
            rep.frames_shipped += stream.frames_shipped.load(Ordering::Relaxed);
            rep.frames_applied += stream.frames_applied.load(Ordering::Relaxed);
            rep.replica_reads += stream.replica_reads.load(Ordering::Relaxed);
            rep.primary_reads += stream.primary_reads.load(Ordering::Relaxed);
            rep.stale_fallbacks += stream.stale_fallbacks.load(Ordering::Relaxed);
            rep.compact_barriers += stream.compact_barriers.load(Ordering::Relaxed);
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LatencyModel;
    use crate::wal::SyncPolicy;
    use crate::Value;

    #[test]
    fn replica_placement_ring() {
        // Frontend never replicates; no backends to spare → empty.
        assert!(replica_nodes(0, 4, 1).is_empty());
        assert!(replica_nodes(1, 2, 1).is_empty());
        assert!(replica_nodes(1, 4, 0).is_empty());
        // 4 nodes (3 backends): each backend's replica is the next one.
        assert_eq!(replica_nodes(1, 4, 1), vec![2]);
        assert_eq!(replica_nodes(2, 4, 1), vec![3]);
        assert_eq!(replica_nodes(3, 4, 1), vec![1]);
        // Two replicas: the next two on the ring, never the primary.
        assert_eq!(replica_nodes(1, 4, 2), vec![2, 3]);
        assert_eq!(replica_nodes(3, 4, 2), vec![1, 2]);
        // Request more replicas than distinct backends exist: capped.
        assert_eq!(replica_nodes(1, 4, 7), vec![2, 3]);
        for primary in 1..8 {
            for r in replica_nodes(primary, 8, 3) {
                assert_ne!(r, primary, "replica on its own primary");
                assert!(r >= 1, "frontend hosting a replica");
            }
        }
    }

    fn wal_cluster(dir: &std::path::Path, n: usize) -> Arc<Cluster> {
        std::fs::remove_dir_all(dir).ok();
        let cluster = Arc::new(Cluster::new(n, LatencyModel::none()));
        cluster
            .attach_wal_dir_with(dir, |i| cluster.node_wal_options(i, SyncPolicy::Off))
            .unwrap();
        cluster
    }

    #[test]
    fn commit_barrier_ships_and_applies() {
        let dir = std::env::temp_dir().join("perfbase_repl_unit_commit");
        let cluster = wal_cluster(&dir, 4);
        let repl = Replicator::attach(&cluster, ReplOptions::default());

        let primary = &cluster.node(1).engine;
        primary.execute("CREATE TABLE t (x INTEGER)").unwrap();
        primary.execute("INSERT INTO t VALUES (1),(2),(3)").unwrap();
        // SyncPolicy::Off: nothing shipped yet below the lag budget.
        primary.wal_sync().unwrap();

        let replica = &cluster.node(2).engine;
        assert_eq!(replica.row_count("t").unwrap(), 3);
        let (shipped, applied) = repl.stream(1).unwrap().replica_progress(2).unwrap();
        assert_eq!(shipped, applied);
        assert!(applied >= 2);

        // The freshness gate passes, so reads round-robin over both.
        let picks: Vec<usize> = (0..4).map(|_| repl.read_node_for(1)).collect();
        assert!(picks.contains(&1) && picks.contains(&2), "{picks:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lag_budget_ships_without_commit() {
        let dir = std::env::temp_dir().join("perfbase_repl_unit_lag");
        let cluster = wal_cluster(&dir, 3 + 1);
        let repl = Replicator::attach(
            &cluster,
            ReplOptions {
                replicas: 1,
                lag_budget: 2,
            },
        );
        let primary = &cluster.node(1).engine;
        primary.execute("CREATE TABLE t (x INTEGER)").unwrap();
        primary.execute("INSERT INTO t VALUES (1)").unwrap();
        // Two frames ≥ budget: shipped to the inbox, but not yet applied.
        let stream = repl.stream(1).unwrap();
        let (shipped, applied) = stream.replica_progress(2).unwrap();
        assert!(shipped >= 2, "lag budget did not trigger a shipment");
        assert_eq!(applied, 0, "apply must wait for the commit barrier");
        // A stale replica fails the freshness gate: reads stay primary.
        for _ in 0..4 {
            assert_eq!(repl.read_node_for(1), 1);
        }
        assert!(repl.report().stale_fallbacks > 0);
        primary.wal_sync().unwrap();
        assert_eq!(cluster.node(2).engine.row_count("t").unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_replica_is_skipped_and_dead_primary_routes_to_replica() {
        let dir = std::env::temp_dir().join("perfbase_repl_unit_dead");
        let cluster = wal_cluster(&dir, 4);
        let repl = Replicator::attach(&cluster, ReplOptions::default());
        let primary = &cluster.node(1).engine;
        primary.execute("CREATE TABLE t (x INTEGER)").unwrap();
        primary.wal_sync().unwrap();

        cluster.kill_node(2);
        // Shipping to a dead replica is a no-op, not an error.
        primary.execute("INSERT INTO t VALUES (7)").unwrap();
        primary.wal_sync().unwrap();
        for _ in 0..4 {
            assert_eq!(repl.read_node_for(1), 1, "dead replica served a read");
        }
        assert!(cluster.fetch(2, 0, "SELECT x FROM t").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn promotion_replays_unapplied_tail() {
        let dir = std::env::temp_dir().join("perfbase_repl_unit_promote");
        let cluster = wal_cluster(&dir, 4);
        let repl = Replicator::attach(
            &cluster,
            ReplOptions {
                replicas: 1,
                lag_budget: 1, // ship every frame immediately
            },
        );
        let primary = &cluster.node(1).engine;
        primary.execute("CREATE TABLE t (x INTEGER)").unwrap();
        primary.execute("INSERT INTO t VALUES (1),(2)").unwrap();
        // No commit: both frames sit shipped-but-unapplied in the inbox.
        let (shipped, applied) = repl.stream(1).unwrap().replica_progress(2).unwrap();
        assert_eq!((shipped, applied), (2, 0));

        cluster.kill_node(1);
        let p = repl.promote(&cluster, 1).unwrap();
        assert_eq!(p.dead, 1);
        assert_eq!(p.promoted, 2);
        assert_eq!(p.frames_replayed, 2);
        assert_eq!(p.applied_seq, 2);
        let rs = cluster
            .node(2)
            .engine
            .query("SELECT count(x) FROM t")
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(2));
        assert_eq!(repl.report().failovers, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
