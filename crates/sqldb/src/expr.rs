//! Row-level evaluation of SQL expressions.

use crate::error::DbError;
use crate::schema::Schema;
use crate::sql::{SqlExpr, UnOp};
use crate::value::Value;

/// Evaluation context: one row plus its schema.
pub struct RowCtx<'a> {
    /// Schema of the row.
    pub schema: &'a Schema,
    /// The row values.
    pub row: &'a [Value],
}

/// Truthiness for WHERE: NULL and zero are false.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Timestamp(t) => *t != 0,
        Value::Text(s) => !s.is_empty(),
    }
}

/// Evaluate `expr` against one row. Aggregate calls are rejected here — the
/// grouping stage in `exec` must have replaced them already.
pub fn eval(expr: &SqlExpr, ctx: &RowCtx<'_>) -> Result<Value, DbError> {
    match expr {
        SqlExpr::Lit(v) => Ok(v.clone()),
        SqlExpr::Col(name) => {
            let i = ctx
                .schema
                .index_of(name)
                .ok_or_else(|| DbError::NoSuchColumn(name.clone()))?;
            Ok(ctx.row[i].clone())
        }
        SqlExpr::Unary(UnOp::Neg, x) => {
            let v = eval(x, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(DbError::Type(format!("cannot negate {other}"))),
            }
        }
        SqlExpr::Unary(UnOp::Not, x) => {
            let v = eval(x, ctx)?;
            Ok(Value::Bool(!truthy(&v)))
        }
        SqlExpr::Binary(op, l, r) => binary(op, l, r, ctx),
        SqlExpr::Func { name, args, .. } => {
            if crate::aggregate::AggKind::from_name(name).is_some() {
                return Err(DbError::Execution(format!(
                    "aggregate function {name}() is not allowed in this context"
                )));
            }
            let vals: Result<Vec<Value>, DbError> = args.iter().map(|a| eval(a, ctx)).collect();
            scalar_fn(name, &vals?)
        }
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Bool(false));
            }
            let mut found = false;
            for item in list {
                let w = eval(item, ctx)?;
                if v.sql_eq(&w) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        SqlExpr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let matched = match &v {
                Value::Text(s) => like_match(s, pattern),
                Value::Null => false,
                other => like_match(&other.to_string(), pattern),
            };
            Ok(Value::Bool(matched != *negated))
        }
    }
}

fn binary(op: &str, l: &SqlExpr, r: &SqlExpr, ctx: &RowCtx<'_>) -> Result<Value, DbError> {
    // Logic operators (NULL treated as false; no three-valued logic).
    if op == "AND" {
        let lv = eval(l, ctx)?;
        if !truthy(&lv) {
            return Ok(Value::Bool(false));
        }
        let rv = eval(r, ctx)?;
        return Ok(Value::Bool(truthy(&rv)));
    }
    if op == "OR" {
        let lv = eval(l, ctx)?;
        if truthy(&lv) {
            return Ok(Value::Bool(true));
        }
        let rv = eval(r, ctx)?;
        return Ok(Value::Bool(truthy(&rv)));
    }

    let lv = eval(l, ctx)?;
    let rv = eval(r, ctx)?;
    binary_values(op, lv, rv)
}

/// Apply a non-logical binary operator to two already-evaluated operands.
/// Shared by the interpreted evaluator above and the compiled evaluator in
/// [`crate::compile`], so both have identical semantics by construction.
pub(crate) fn binary_values(op: &str, lv: Value, rv: Value) -> Result<Value, DbError> {
    match op {
        "=" => Ok(Value::Bool(lv.sql_eq(&rv))),
        "<>" => Ok(Value::Bool(
            !lv.is_null() && !rv.is_null() && !lv.sql_eq(&rv),
        )),
        "<" | "<=" | ">" | ">=" => {
            if lv.is_null() || rv.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = lv.total_cmp(&rv);
            let b = match op {
                "<" => ord.is_lt(),
                "<=" => ord.is_le(),
                ">" => ord.is_gt(),
                _ => ord.is_ge(),
            };
            Ok(Value::Bool(b))
        }
        "+" | "-" | "*" | "/" | "%" => {
            if lv.is_null() || rv.is_null() {
                return Ok(Value::Null);
            }
            // Text concatenation with '+' is deliberately unsupported.
            if let (Value::Int(a), Value::Int(b)) = (&lv, &rv) {
                return match op {
                    "+" => Ok(Value::Int(a + b)),
                    "-" => Ok(Value::Int(a - b)),
                    "*" => Ok(Value::Int(a * b)),
                    "%" => {
                        if *b == 0 {
                            Err(DbError::Execution("modulo by zero".into()))
                        } else {
                            Ok(Value::Int(a % b))
                        }
                    }
                    _ => {
                        if *b == 0 {
                            Err(DbError::Execution("division by zero".into()))
                        } else {
                            Ok(Value::Float(*a as f64 / *b as f64))
                        }
                    }
                };
            }
            let a = lv
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("non-numeric operand {lv} for '{op}'")))?;
            let b = rv
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("non-numeric operand {rv} for '{op}'")))?;
            match op {
                "+" => Ok(Value::Float(a + b)),
                "-" => Ok(Value::Float(a - b)),
                "*" => Ok(Value::Float(a * b)),
                "/" => {
                    if b == 0.0 {
                        Err(DbError::Execution("division by zero".into()))
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                _ => {
                    if b == 0.0 {
                        Err(DbError::Execution("modulo by zero".into()))
                    } else {
                        Ok(Value::Float(a % b))
                    }
                }
            }
        }
        other => Err(DbError::Execution(format!("unknown operator '{other}'"))),
    }
}

/// Is `name` a scalar function [`scalar_fn`] can dispatch? Used by the
/// index planner to prove an expression cannot raise a name error.
pub(crate) fn is_known_scalar(name: &str) -> bool {
    matches!(
        name,
        "abs" | "sqrt" | "floor" | "ceil" | "round" | "upper" | "lower" | "length" | "coalesce"
    )
}

/// Scalar (non-aggregate) SQL function dispatch over evaluated arguments.
/// Shared by the interpreted and compiled evaluators.
pub(crate) fn scalar_fn(name: &str, args: &[Value]) -> Result<Value, DbError> {
    let one_num = |args: &[Value]| -> Result<Option<f64>, DbError> {
        if args.len() != 1 {
            return Err(DbError::Type(format!("{name}() expects one argument")));
        }
        if args[0].is_null() {
            return Ok(None);
        }
        args[0]
            .as_f64()
            .map(Some)
            .ok_or_else(|| DbError::Type(format!("{name}() expects a numeric argument")))
    };
    match name {
        "abs" => Ok(one_num(args)?
            .map(|x| Value::Float(x.abs()))
            .unwrap_or(Value::Null)),
        "sqrt" => match one_num(args)? {
            None => Ok(Value::Null),
            Some(x) if x < 0.0 => Err(DbError::Execution("sqrt of negative value".into())),
            Some(x) => Ok(Value::Float(x.sqrt())),
        },
        "floor" => Ok(one_num(args)?
            .map(|x| Value::Float(x.floor()))
            .unwrap_or(Value::Null)),
        "ceil" => Ok(one_num(args)?
            .map(|x| Value::Float(x.ceil()))
            .unwrap_or(Value::Null)),
        "round" => Ok(one_num(args)?
            .map(|x| Value::Float(x.round()))
            .unwrap_or(Value::Null)),
        "upper" | "lower" => {
            if args.len() != 1 {
                return Err(DbError::Type(format!("{name}() expects one argument")));
            }
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => {
                    let s = v.to_string();
                    Ok(Value::Text(if name == "upper" {
                        s.to_uppercase()
                    } else {
                        s.to_lowercase()
                    }))
                }
            }
        }
        "length" => {
            if args.len() != 1 {
                return Err(DbError::Type("length() expects one argument".into()));
            }
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Int(v.to_string().chars().count() as i64)),
            }
        }
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        other => Err(DbError::Execution(format!("unknown function '{other}'"))),
    }
}

/// One element of a parsed LIKE pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LikeTok {
    /// `%` — any run of characters (consecutive `%` collapse to one).
    Percent,
    /// `_` — exactly one character.
    Any,
    /// A literal character (possibly produced by an escape).
    Lit(char),
}

/// A parsed LIKE pattern: `%` matches any run, `_` any single character,
/// and a backslash escapes the next character (`\%`, `\_`, `\\`) so
/// filenames containing `%` or `_` stay filterable. Parsed once per
/// statement by the compiled evaluator; matching uses the two-pointer
/// greedy wildcard algorithm — worst case O(|s|·|pattern|), never the
/// exponential backtracking of the naive recursion.
#[derive(Debug, Clone)]
pub(crate) struct LikePattern {
    toks: Vec<LikeTok>,
}

impl LikePattern {
    /// Parse `pattern` (infallible: a trailing lone `\` is a literal).
    pub(crate) fn parse(pattern: &str) -> LikePattern {
        let mut toks = Vec::new();
        let mut chars = pattern.chars();
        while let Some(c) = chars.next() {
            match c {
                '%' => {
                    if toks.last() != Some(&LikeTok::Percent) {
                        toks.push(LikeTok::Percent);
                    }
                }
                '_' => toks.push(LikeTok::Any),
                '\\' => toks.push(LikeTok::Lit(chars.next().unwrap_or('\\'))),
                c => toks.push(LikeTok::Lit(c)),
            }
        }
        LikePattern { toks }
    }

    /// Does `s` match the pattern?
    pub(crate) fn matches(&self, s: &str) -> bool {
        let sc: Vec<char> = s.chars().collect();
        // Greedy two-pointer scan: on a mismatch, fall back to the most
        // recent `%` and let it absorb one more character. Each fallback
        // only ever moves the `%` anchor forward, so the scan is bounded
        // by |s|·|toks| instead of exploring every split recursively.
        let (mut si, mut pi) = (0usize, 0usize);
        let mut anchor: Option<(usize, usize)> = None; // (% token, chars absorbed)
        while si < sc.len() {
            if pi < self.toks.len() {
                match self.toks[pi] {
                    LikeTok::Percent => {
                        anchor = Some((pi, si));
                        pi += 1;
                        continue;
                    }
                    LikeTok::Any => {
                        si += 1;
                        pi += 1;
                        continue;
                    }
                    LikeTok::Lit(c) if sc[si] == c => {
                        si += 1;
                        pi += 1;
                        continue;
                    }
                    LikeTok::Lit(_) => {}
                }
            }
            match anchor {
                Some((api, asi)) => {
                    anchor = Some((api, asi + 1));
                    si = asi + 1;
                    pi = api + 1;
                }
                None => return false,
            }
        }
        // Only trailing `%` may remain unconsumed.
        self.toks[pi..].iter().all(|t| *t == LikeTok::Percent)
    }
}

/// SQL LIKE with `%` (any run), `_` (any single char) and `\` escapes.
/// One-shot convenience wrapper; hot paths precompile via [`LikePattern`].
pub fn like_match(s: &str, pattern: &str) -> bool {
    LikePattern::parse(pattern).matches(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::sql::parse_statement;
    use crate::sql::Stmt;
    use crate::value::DataType;

    fn ctx_schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Float),
            Column::new("s", DataType::Text),
            Column::new("n", DataType::Int),
        ])
        .unwrap()
    }

    fn eval_where(src: &str, row: &[Value]) -> Value {
        let stmt = parse_statement(&format!("SELECT a FROM t WHERE {src}")).unwrap();
        let e = match stmt {
            Stmt::Select(s) => s.where_clause.unwrap(),
            other => panic!("{other:?}"),
        };
        let schema = ctx_schema();
        eval(
            &e,
            &RowCtx {
                schema: &schema,
                row,
            },
        )
        .unwrap()
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(4),
            Value::Float(2.5),
            Value::Text("ufs".into()),
            Value::Null,
        ]
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_where("a = 4", &row()), Value::Bool(true));
        assert_eq!(eval_where("a < b", &row()), Value::Bool(false));
        assert_eq!(eval_where("b <= 2.5", &row()), Value::Bool(true));
        assert_eq!(eval_where("s = 'ufs'", &row()), Value::Bool(true));
        assert_eq!(eval_where("s <> 'nfs'", &row()), Value::Bool(true));
    }

    #[test]
    fn null_comparisons_false() {
        assert_eq!(eval_where("n = 0", &row()), Value::Bool(false));
        assert_eq!(eval_where("n <> 0", &row()), Value::Bool(false));
        assert_eq!(eval_where("n < 5", &row()), Value::Bool(false));
        assert_eq!(eval_where("n IS NULL", &row()), Value::Bool(true));
        assert_eq!(eval_where("a IS NOT NULL", &row()), Value::Bool(true));
    }

    #[test]
    fn arithmetic_types() {
        assert_eq!(eval_where("a + 1 = 5", &row()), Value::Bool(true));
        assert_eq!(eval_where("a / 8 = 0.5", &row()), Value::Bool(true)); // int / int -> float
        assert_eq!(eval_where("a % 3 = 1", &row()), Value::Bool(true));
        assert_eq!(eval_where("-a = -4", &row()), Value::Bool(true));
        assert_eq!(eval_where("a * b = 10.0", &row()), Value::Bool(true));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(eval_where("n + 1 IS NULL", &row()), Value::Bool(true));
    }

    #[test]
    fn in_list_and_like() {
        assert_eq!(eval_where("s IN ('nfs', 'ufs')", &row()), Value::Bool(true));
        assert_eq!(eval_where("s NOT IN ('nfs')", &row()), Value::Bool(true));
        assert_eq!(eval_where("s LIKE 'uf%'", &row()), Value::Bool(true));
        assert_eq!(eval_where("s LIKE '_fs'", &row()), Value::Bool(true));
        assert_eq!(eval_where("s NOT LIKE 'n%'", &row()), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_where("abs(-2) = 2", &row()), Value::Bool(true));
        assert_eq!(eval_where("upper(s) = 'UFS'", &row()), Value::Bool(true));
        assert_eq!(eval_where("length(s) = 3", &row()), Value::Bool(true));
        assert_eq!(eval_where("coalesce(n, a) = 4", &row()), Value::Bool(true));
        assert_eq!(eval_where("round(b) = 3", &row()), Value::Bool(true));
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("abc", "%b%"));
        assert!(!like_match("abc", "a%d"));
        assert!(like_match("a%b", "a%b")); // '%' in text matches via wildcard
        assert!(like_match("bio_T10_N4", "bio%N_"));
        // Runs of '%' collapse; '%' also matches across the whole string.
        assert!(like_match("abc", "%%"));
        assert!(like_match("abc", "a%%c"));
        assert!(!like_match("abc", "%%d"));
        // Greedy fallback must not overshoot: last 'a' before the suffix.
        assert!(like_match("aXaYaZ", "%a_"));
        assert!(!like_match("aXaYaZb", "%a_"));
    }

    #[test]
    fn like_escapes_match_literal_wildcards() {
        // `\%` and `\_` match the literal character, not the wildcard.
        assert!(like_match("100%", "100\\%"));
        assert!(!like_match("100x", "100\\%"));
        assert!(like_match("a_b", "a\\_b"));
        assert!(!like_match("axb", "a\\_b"));
        // `\\` matches a literal backslash.
        assert!(like_match("a\\b", "a\\\\b"));
        // Escaped literal of an ordinary char is just that char.
        assert!(like_match("abc", "a\\bc"));
        // A trailing lone backslash matches a literal backslash.
        assert!(like_match("a\\", "a\\"));
        // Escapes compose with real wildcards.
        assert!(like_match("rate_50%_new", "rate\\_%\\%\\_new"));
        assert!(!like_match("rate-50%-new", "rate\\_%\\%\\_new"));
    }

    /// The old recursive matcher exploded exponentially on stacked `%a`
    /// groups over a non-matching string. The two-pointer rewrite is
    /// O(|s|·|pattern|); this input must finish orders of magnitude under
    /// the 100ms acceptance bound (the old code took minutes).
    #[test]
    fn like_pathological_pattern_is_fast() {
        let s = "a".repeat(2000);
        let pattern = format!("{}b", "%a".repeat(30));
        let start = std::time::Instant::now();
        assert!(!like_match(&s, &pattern));
        // Matching variant of the same shape, same budget.
        let s_match = format!("{}b", "a".repeat(2000));
        assert!(like_match(&s_match, &pattern));
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "pathological LIKE took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn unknown_column_errors() {
        let schema = ctx_schema();
        let e = SqlExpr::Col("zzz".into());
        let r = row();
        assert!(matches!(
            eval(
                &e,
                &RowCtx {
                    schema: &schema,
                    row: &r
                }
            ),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn aggregate_rejected_in_row_context() {
        let schema = ctx_schema();
        let e = SqlExpr::Func {
            name: "avg".into(),
            args: vec![SqlExpr::Col("a".into())],
            star: false,
        };
        let r = row();
        assert!(eval(
            &e,
            &RowCtx {
                schema: &schema,
                row: &r
            }
        )
        .is_err());
    }

    #[test]
    fn division_by_zero() {
        let schema = ctx_schema();
        let e = parse_statement("SELECT a FROM t WHERE a / 0 = 1").unwrap();
        let w = match e {
            Stmt::Select(s) => s.where_clause.unwrap(),
            other => panic!("{other:?}"),
        };
        let r = row();
        assert!(eval(
            &w,
            &RowCtx {
                schema: &schema,
                row: &r
            }
        )
        .is_err());
    }
}
