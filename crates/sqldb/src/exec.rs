//! SELECT execution: scan → join → filter → group/aggregate → project →
//! distinct → order → limit.

use crate::aggregate::{Accumulator, AggKind};
use crate::engine::{Engine, ResultSet};
use crate::error::DbError;
use crate::expr::{eval, truthy, RowCtx};
use crate::schema::{Column, Schema};
use crate::sql::{JoinClause, SelectItem, SelectStmt, SqlExpr};
use crate::table::Row;
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// Execute a SELECT against the engine.
pub fn run_select(engine: &Engine, sel: &SelectStmt) -> Result<ResultSet, DbError> {
    // 0. Streaming fast path for single-table aggregation: filter and
    //    accumulate in one scan under the read lock, never materialising a
    //    snapshot. This is the paper's §4.2 in-database operator advantage.
    if let Some(base) = &sel.from {
        if sel.joins.is_empty() {
            let handle = engine.table(base)?;
            let guard = handle.read();
            let schema = &guard.schema;
            if let Some(key_idx) = resolve_group_keys(sel, schema) {
                if let Some(plan) = plan_fast(sel, schema, &key_idx) {
                    let mut agg = FastAgg::new(plan, key_idx);
                    for row in guard.rows() {
                        if let Some(w) = &sel.where_clause {
                            let v = eval(w, &RowCtx { schema, row })?;
                            if !truthy(&v) {
                                continue;
                            }
                        }
                        agg.update(row);
                    }
                    let out_rows = agg.finish()?;
                    let columns = output_names(sel, schema);
                    drop(guard);
                    return finalize(sel, columns, out_rows);
                }
            }
        }
    }

    // 1. Input relation.
    let (schema, mut rows) = match &sel.from {
        None => (Schema::default(), vec![Vec::new()]),
        Some(base) => {
            if sel.joins.is_empty() {
                engine.read_snapshot(base)?
            } else {
                join_input(engine, base, &sel.joins)?
            }
        }
    };

    // 2. Filter.
    if let Some(w) = &sel.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            let v = eval(w, &RowCtx { schema: &schema, row: &r })?;
            if truthy(&v) {
                kept.push(r);
            }
        }
        rows = kept;
    }

    // 3. Aggregate or plain projection.
    let has_agg = sel.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Star => false,
    });

    let (columns, out_rows) = if has_agg || !sel.group_by.is_empty() {
        aggregate_project(sel, &schema, &rows)?
    } else {
        plain_project(sel, &schema, &rows)?
    };

    finalize(sel, columns, out_rows)
}

/// Group-key column indices, when every GROUP BY name resolves and the
/// query has an aggregation shape at all.
fn resolve_group_keys(sel: &SelectStmt, schema: &Schema) -> Option<Vec<usize>> {
    let has_agg = sel.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Star => false,
    });
    if !has_agg && sel.group_by.is_empty() {
        return None;
    }
    sel.group_by.iter().map(|g| schema.index_of(g)).collect()
}

/// DISTINCT → ORDER BY → LIMIT, shared by both execution paths.
fn finalize(
    sel: &SelectStmt,
    columns: Vec<String>,
    mut out_rows: Vec<Row>,
) -> Result<ResultSet, DbError> {
    if sel.distinct {
        let mut seen = HashMap::new();
        let mut deduped = Vec::with_capacity(out_rows.len());
        for r in out_rows {
            let key = encode_row(&r);
            if seen.insert(key, ()).is_none() {
                deduped.push(r);
            }
        }
        out_rows = deduped;
    }

    if !sel.order_by.is_empty() {
        let mut keys = Vec::with_capacity(sel.order_by.len());
        for k in &sel.order_by {
            let idx = match k.position {
                Some(p) => {
                    if p == 0 || p > columns.len() {
                        return Err(DbError::Execution(format!(
                            "ORDER BY position {p} out of range"
                        )));
                    }
                    p - 1
                }
                None => resolve_output_column(&columns, &k.column)
                    .ok_or_else(|| DbError::NoSuchColumn(k.column.clone()))?,
            };
            keys.push((idx, k.desc));
        }
        out_rows.sort_by(|a, b| {
            for (idx, desc) in &keys {
                let ord = a[*idx].total_cmp(&b[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(n) = sel.limit {
        out_rows.truncate(n);
    }

    Ok(ResultSet::new(columns, out_rows))
}

/// Resolve an ORDER BY name against output column names: exact match first,
/// then match on the unqualified suffix (`mbps` ↔ `bw.mbps`).
fn resolve_output_column(columns: &[String], name: &str) -> Option<usize> {
    if let Some(i) = columns.iter().position(|c| c == name) {
        return Some(i);
    }
    columns
        .iter()
        .position(|c| c.rsplit('.').next() == Some(name) || name.rsplit('.').next() == Some(c.as_str()))
}

/// Build the joined input relation. Output column names are qualified
/// (`table.column`) so both sides stay addressable.
fn join_input(
    engine: &Engine,
    base: &str,
    joins: &[JoinClause],
) -> Result<(Schema, Vec<Row>), DbError> {
    let (bs, brows) = engine.read_snapshot(base)?;
    let mut schema = qualify(&bs, base)?;
    let mut rows = brows;

    for j in joins {
        let (js, jrows) = engine.read_snapshot(&j.table)?;
        let jschema = qualify(&js, &j.table)?;

        // Decide which key belongs to the accumulated side.
        let (acc_key, new_key) = if schema.index_of(&j.left_col).is_some()
            && jschema.index_of(&j.right_col).is_some()
        {
            (&j.left_col, &j.right_col)
        } else if schema.index_of(&j.right_col).is_some()
            && jschema.index_of(&j.left_col).is_some()
        {
            (&j.right_col, &j.left_col)
        } else {
            return Err(DbError::NoSuchColumn(format!(
                "join keys {} / {} not found",
                j.left_col, j.right_col
            )));
        };
        let ai = schema.index_of(acc_key).expect("checked above");
        let ni = jschema.index_of(new_key).expect("checked above");

        // Hash join: build on the joined (usually smaller metadata) side.
        let mut built: HashMap<String, Vec<usize>> = HashMap::new();
        for (k, r) in jrows.iter().enumerate() {
            if r[ni].is_null() {
                continue; // NULL keys never match
            }
            built.entry(encode_value(&r[ni])).or_default().push(k);
        }

        let mut out = Vec::new();
        for r in &rows {
            if r[ai].is_null() {
                continue;
            }
            if let Some(matches) = built.get(&encode_value(&r[ai])) {
                for &k in matches {
                    let mut joined = r.clone();
                    joined.extend(jrows[k].iter().cloned());
                    out.push(joined);
                }
            }
        }

        let mut cols = schema.columns;
        cols.extend(jschema.columns);
        schema = Schema::new(cols)?;
        rows = out;
    }
    Ok((schema, rows))
}

fn qualify(schema: &Schema, table: &str) -> Result<Schema, DbError> {
    Schema::new(
        schema
            .columns
            .iter()
            .map(|c| Column {
                name: format!("{table}.{}", c.name),
                dtype: c.dtype,
                nullable: c.nullable,
            })
            .collect(),
    )
}

fn plain_project(
    sel: &SelectStmt,
    schema: &Schema,
    rows: &[Row],
) -> Result<(Vec<String>, Vec<Row>), DbError> {
    let columns = output_names(sel, schema);
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let ctx = RowCtx { schema, row: r };
        let mut projected = Vec::with_capacity(columns.len());
        for item in &sel.items {
            match item {
                SelectItem::Star => projected.extend(r.iter().cloned()),
                SelectItem::Expr { expr, .. } => projected.push(eval(expr, &ctx)?),
            }
        }
        out.push(projected);
    }
    Ok((columns, out))
}

/// Plan of a fast-path aggregation item.
enum FastItem {
    /// Pass through group-key slot `k`.
    Key(usize),
    /// Accumulate `agg(column i)`; `None` column means `count(*)`.
    Agg(AggKind, Option<usize>),
}

/// Build the fast-path plan for the common `SELECT g…, agg(col)… GROUP BY
/// g…` shape. Returns `None` when any item needs the general expression
/// path.
fn plan_fast(sel: &SelectStmt, schema: &Schema, key_idx: &[usize]) -> Option<Vec<FastItem>> {
    let mut plan = Vec::with_capacity(sel.items.len());
    for item in &sel.items {
        let expr = match item {
            SelectItem::Expr { expr, .. } => expr,
            SelectItem::Star => return None,
        };
        match expr {
            SqlExpr::Col(name) => {
                let i = schema.index_of(name)?;
                let k = key_idx.iter().position(|&ki| ki == i)?;
                plan.push(FastItem::Key(k));
            }
            SqlExpr::Func { name, args, star } => {
                let kind = AggKind::from_name(name)?;
                if *star {
                    plan.push(FastItem::Agg(kind, None));
                } else {
                    match args.as_slice() {
                        [SqlExpr::Col(col)] => {
                            let i = schema.index_of(col)?;
                            plan.push(FastItem::Agg(kind, Some(i)));
                        }
                        // count(<non-null literal>) counts rows; other
                        // aggregates over literals take the general path.
                        [SqlExpr::Lit(l)] if kind == AggKind::Count && !l.is_null() => {
                            plan.push(FastItem::Agg(kind, None))
                        }
                        _ => return None,
                    }
                }
            }
            _ => return None,
        }
    }
    Some(plan)
}

/// Streaming state for the single-pass aggregation: one scan, one
/// accumulator set per group, byte-encoded keys. This is what makes
/// in-database aggregation beat row-at-a-time processing in the frontend
/// (paper §4.2).
struct FastAgg {
    plan: Vec<FastItem>,
    key_idx: Vec<usize>,
    group_of: HashMap<Vec<u8>, usize>,
    keys: Vec<Vec<Value>>,
    accs: Vec<Vec<Accumulator>>,
}

impl FastAgg {
    fn new(plan: Vec<FastItem>, key_idx: Vec<usize>) -> Self {
        let mut agg = FastAgg {
            plan,
            key_idx,
            group_of: HashMap::new(),
            keys: Vec::new(),
            accs: Vec::new(),
        };
        if agg.key_idx.is_empty() {
            // One global group, present even for zero input rows.
            agg.keys.push(Vec::new());
            let fresh = agg.fresh_accs();
            agg.accs.push(fresh);
        }
        agg
    }

    fn fresh_accs(&self) -> Vec<Accumulator> {
        self.plan
            .iter()
            .filter_map(|it| match it {
                FastItem::Agg(kind, _) => Some(Accumulator::new(*kind)),
                FastItem::Key(_) => None,
            })
            .collect()
    }

    fn update(&mut self, row: &Row) {
        let gi = if self.key_idx.is_empty() {
            0
        } else {
            let mut key = Vec::with_capacity(self.key_idx.len() * 9);
            for &i in &self.key_idx {
                encode_value_bytes(&row[i], &mut key);
            }
            match self.group_of.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = self.keys.len();
                    self.group_of.insert(key, gi);
                    self.keys.push(self.key_idx.iter().map(|&i| row[i].clone()).collect());
                    let fresh = self.fresh_accs();
                    self.accs.push(fresh);
                    gi
                }
            }
        };
        let group_accs = &mut self.accs[gi];
        let star_value = Value::Int(1);
        let mut a = 0;
        for it in &self.plan {
            if let FastItem::Agg(_, col) = it {
                let v = match col {
                    Some(i) => &row[*i],
                    None => &star_value,
                };
                group_accs[a].update(v);
                a += 1;
            }
        }
    }

    fn finish(self) -> Result<Vec<Row>, DbError> {
        let mut out = Vec::with_capacity(self.keys.len());
        for (key, group_accs) in self.keys.iter().zip(&self.accs) {
            let mut row = Vec::with_capacity(self.plan.len());
            let mut a = 0;
            for it in &self.plan {
                match it {
                    FastItem::Key(k) => row.push(key[*k].clone()),
                    FastItem::Agg(..) => {
                        row.push(group_accs[a].finish().map_err(DbError::Type)?);
                        a += 1;
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }
}

/// Slice-based wrapper used by the general path (post-join/filter input).
fn try_fast_aggregate(
    sel: &SelectStmt,
    schema: &Schema,
    rows: &[Row],
    key_idx: &[usize],
) -> Option<Result<Vec<Row>, DbError>> {
    let plan = plan_fast(sel, schema, key_idx)?;
    let mut agg = FastAgg::new(plan, key_idx.to_vec());
    for row in rows {
        agg.update(row);
    }
    Some(agg.finish())
}

fn aggregate_project(
    sel: &SelectStmt,
    schema: &Schema,
    rows: &[Row],
) -> Result<(Vec<String>, Vec<Row>), DbError> {
    // Group rows by the GROUP BY key.
    let key_idx: Result<Vec<usize>, DbError> = sel
        .group_by
        .iter()
        .map(|g| schema.index_of(g).ok_or_else(|| DbError::NoSuchColumn(g.clone())))
        .collect();
    let key_idx = key_idx?;

    if let Some(fast) = try_fast_aggregate(sel, schema, rows, &key_idx) {
        return Ok((output_names(sel, schema), fast?));
    }

    let mut group_of: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<Vec<&Row>> = Vec::new();
    if key_idx.is_empty() {
        // One global group — present even with zero input rows, so that
        // `SELECT count(*) FROM empty` yields 0.
        groups.push(rows.iter().collect());
    } else {
        for r in rows {
            let key: String =
                key_idx.iter().map(|i| encode_value(&r[*i])).collect::<Vec<_>>().join("\u{1}");
            let gi = *group_of.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(r);
        }
    }

    let columns = output_names(sel, schema);
    let null_row: Row = vec![Value::Null; schema.arity()];
    let mut out = Vec::with_capacity(groups.len());
    for g in &groups {
        let rep: &Row = g.first().copied().unwrap_or(&null_row);
        let ctx = RowCtx { schema, row: rep };
        let mut projected = Vec::with_capacity(columns.len());
        for item in &sel.items {
            match item {
                SelectItem::Star => projected.extend(rep.iter().cloned()),
                SelectItem::Expr { expr, .. } => {
                    let substituted = substitute_aggregates(expr, schema, g)?;
                    projected.push(eval(&substituted, &ctx)?);
                }
            }
        }
        out.push(projected);
    }
    Ok((columns, out))
}

/// Replace every aggregate call in `expr` with the literal aggregate value
/// computed over `group`, leaving a plain row expression behind.
fn substitute_aggregates(
    expr: &SqlExpr,
    schema: &Schema,
    group: &[&Row],
) -> Result<SqlExpr, DbError> {
    Ok(match expr {
        SqlExpr::Func { name, args, star } => {
            if let Some(kind) = AggKind::from_name(name) {
                if args.len() != 1 {
                    return Err(DbError::Type(format!(
                        "aggregate {name}() expects exactly one argument"
                    )));
                }
                let mut acc = Accumulator::new(kind);
                for r in group {
                    let v = eval(&args[0], &RowCtx { schema, row: r })?;
                    acc.update(&v);
                }
                SqlExpr::Lit(acc.finish().map_err(DbError::Type)?)
            } else {
                let new_args: Result<Vec<SqlExpr>, DbError> =
                    args.iter().map(|a| substitute_aggregates(a, schema, group)).collect();
                SqlExpr::Func { name: name.clone(), args: new_args?, star: *star }
            }
        }
        SqlExpr::Unary(op, x) => {
            SqlExpr::Unary(*op, Box::new(substitute_aggregates(x, schema, group)?))
        }
        SqlExpr::Binary(op, l, r) => SqlExpr::Binary(
            op,
            Box::new(substitute_aggregates(l, schema, group)?),
            Box::new(substitute_aggregates(r, schema, group)?),
        ),
        SqlExpr::InList { expr, list, negated } => SqlExpr::InList {
            expr: Box::new(substitute_aggregates(expr, schema, group)?),
            list: list
                .iter()
                .map(|e| substitute_aggregates(e, schema, group))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        SqlExpr::IsNull { expr, negated } => SqlExpr::IsNull {
            expr: Box::new(substitute_aggregates(expr, schema, group)?),
            negated: *negated,
        },
        SqlExpr::Like { expr, pattern, negated } => SqlExpr::Like {
            expr: Box::new(substitute_aggregates(expr, schema, group)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        other => other.clone(),
    })
}

fn output_names(sel: &SelectStmt, schema: &Schema) -> Vec<String> {
    let mut names = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Star => names.extend(schema.names()),
            SelectItem::Expr { expr, alias } => names.push(match alias {
                Some(a) => a.clone(),
                None => expr.to_string_for_order(),
            }),
        }
    }
    names
}

/// Canonical encoding used for grouping, joining and DISTINCT. Numeric
/// values encode by their f64 image so `1` and `1.0` collide, matching
/// `Value::sql_eq`.
pub(crate) fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "\u{0}null".to_string(),
        Value::Text(s) => format!("t:{s}"),
        Value::Bool(b) => format!("b:{b}"),
        other => {
            let f = other.as_f64().unwrap_or(f64::NAN);
            let f = if f == 0.0 { 0.0 } else { f }; // normalize -0.0
            format!("n:{}", f.to_bits())
        }
    }
}

fn encode_row(r: &Row) -> String {
    r.iter().map(encode_value).collect::<Vec<_>>().join("\u{1}")
}

/// Allocation-light binary encoding with the same equivalence classes as
/// [`encode_value`], used for hot grouping paths.
fn encode_value_bytes(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Text(s) => {
            out.push(2);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(u8::from(*b));
        }
        other => {
            let f = other.as_f64().unwrap_or(f64::NAN);
            let f = if f == 0.0 { 0.0 } else { f }; // normalize -0.0
            out.push(1);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
    }
}

/// Schema of a result set inferred from its first row — used when a result
/// is materialised into a (temp) table. Columns with no observed value
/// default to FLOAT.
pub fn infer_schema(columns: &[String], rows: &[Row]) -> Result<Schema, DbError> {
    let mut cols = Vec::with_capacity(columns.len());
    for (i, name) in columns.iter().enumerate() {
        let dtype = rows
            .iter()
            .find_map(|r| r.get(i).and_then(Value::data_type))
            .unwrap_or(DataType::Float);
        cols.push(Column::new(name, dtype));
    }
    Schema::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Engine {
        let e = Engine::new();
        e.execute("CREATE TABLE t (id INTEGER, grp TEXT, v FLOAT)").unwrap();
        e.execute(
            "INSERT INTO t VALUES (1,'a',10.0),(2,'a',20.0),(3,'b',30.0),(4,'b',50.0),(5,'c',NULL)",
        )
        .unwrap();
        e
    }

    #[test]
    fn star_projection() {
        let rs = db().query("SELECT * FROM t WHERE id = 3").unwrap();
        assert_eq!(rs.column_names(), &["id", "grp", "v"]);
        assert_eq!(rs.rows()[0], vec![Value::Int(3), Value::Text("b".into()), Value::Float(30.0)]);
    }

    #[test]
    fn expression_projection_with_alias() {
        let rs = db().query("SELECT v * 2 AS dbl, id FROM t WHERE id = 1").unwrap();
        assert_eq!(rs.column_names(), &["dbl", "id"]);
        assert_eq!(rs.rows()[0][0], Value::Float(20.0));
    }

    #[test]
    fn group_by_with_expression_on_aggregate() {
        let rs = db()
            .query("SELECT grp, avg(v) + 1 AS a1 FROM t GROUP BY grp ORDER BY grp")
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.rows()[0], vec![Value::Text("a".into()), Value::Float(16.0)]);
        assert_eq!(rs.rows()[1], vec![Value::Text("b".into()), Value::Float(41.0)]);
        // group 'c' has only a NULL value -> avg NULL -> NULL + 1 = NULL
        assert_eq!(rs.rows()[2], vec![Value::Text("c".into()), Value::Null]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let e = Engine::new();
        e.execute("CREATE TABLE empty (x INTEGER)").unwrap();
        let rs = e.query("SELECT count(*), max(x) FROM empty").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn count_star_vs_count_column() {
        let rs = db().query("SELECT count(*), count(v) FROM t").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(5), Value::Int(4)]);
    }

    #[test]
    fn distinct_dedupes() {
        let rs = db().query("SELECT DISTINCT grp FROM t ORDER BY grp").unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let rs = db().query("SELECT id FROM t ORDER BY id DESC LIMIT 2").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(5));
        assert_eq!(rs.rows()[1][0], Value::Int(4));
    }

    #[test]
    fn order_by_position() {
        let rs = db().query("SELECT grp, v FROM t WHERE v IS NOT NULL ORDER BY 2 DESC LIMIT 1").unwrap();
        assert_eq!(rs.rows()[0][1], Value::Float(50.0));
    }

    #[test]
    fn order_by_aggregate_name() {
        let rs = db()
            .query("SELECT grp, sum(v) FROM t GROUP BY grp ORDER BY sum(v) DESC LIMIT 1")
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Text("b".into()));
    }

    #[test]
    fn nulls_sort_first() {
        let rs = db().query("SELECT v FROM t ORDER BY v").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Null);
    }

    #[test]
    fn select_without_from() {
        let e = Engine::new();
        let rs = e.query("SELECT 1 + 2 AS three, 'x' AS tag").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(3), Value::Text("x".into())]);
    }

    #[test]
    fn join_null_keys_never_match() {
        let e = Engine::new();
        e.execute("CREATE TABLE a (k INTEGER)").unwrap();
        e.execute("CREATE TABLE b (k INTEGER)").unwrap();
        e.execute("INSERT INTO a VALUES (1), (NULL)").unwrap();
        e.execute("INSERT INTO b VALUES (1), (NULL)").unwrap();
        let rs = e.query("SELECT a.k FROM a JOIN b ON a.k = b.k").unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn join_one_to_many() {
        let e = Engine::new();
        e.execute("CREATE TABLE runs (id INTEGER, host TEXT)").unwrap();
        e.execute("CREATE TABLE vals (run INTEGER, v FLOAT)").unwrap();
        e.execute("INSERT INTO runs VALUES (1,'h1'),(2,'h2')").unwrap();
        e.execute("INSERT INTO vals VALUES (1,1.0),(1,2.0),(2,3.0)").unwrap();
        let rs = e
            .query(
                "SELECT runs.host, sum(vals.v) FROM vals JOIN runs ON vals.run = runs.id \
                 GROUP BY runs.host ORDER BY runs.host",
            )
            .unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Text("h1".into()), Value::Float(3.0)]);
        assert_eq!(rs.rows()[1], vec![Value::Text("h2".into()), Value::Float(3.0)]);
    }

    #[test]
    fn grouping_treats_int_float_equal() {
        let e = Engine::new();
        e.execute("CREATE TABLE m (k FLOAT, v INTEGER)").unwrap();
        e.execute("INSERT INTO m VALUES (1.0, 10), (1, 20), (2, 5)").unwrap();
        let rs = e.query("SELECT k, count(*) FROM m GROUP BY k ORDER BY k").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows()[0][1], Value::Int(2));
    }

    #[test]
    fn infer_schema_from_rows() {
        let cols = vec!["a".to_string(), "b".to_string()];
        let rows = vec![
            vec![Value::Null, Value::Text("x".into())],
            vec![Value::Int(1), Value::Text("y".into())],
        ];
        let s = infer_schema(&cols, &rows).unwrap();
        assert_eq!(s.columns[0].dtype, DataType::Int);
        assert_eq!(s.columns[1].dtype, DataType::Text);
    }

    #[test]
    fn unknown_group_column_errors() {
        assert!(matches!(
            db().query("SELECT count(*) FROM t GROUP BY zzz"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn unknown_order_column_errors() {
        assert!(matches!(
            db().query("SELECT id FROM t ORDER BY zzz"),
            Err(DbError::NoSuchColumn(_))
        ));
    }
}
