//! SELECT execution: compile → scan/index → join → filter →
//! group/aggregate → project → distinct → order → limit.
//!
//! The optimized pipeline (entry: [`run_select`]):
//!
//! * **Expression compilation** — WHERE filters and projections are lowered
//!   once per statement into [`CompiledExpr`] evaluators with pre-resolved
//!   column indices (see [`crate::compile`]).
//! * **Zero-copy scans** — single-table queries stream under the table's
//!   `RwLock` read guard; only matching, projected rows are materialised.
//!   This extends the paper's §4.2 in-database operator advantage from
//!   aggregation to plain filter/project/order queries.
//! * **Secondary-index lookups** — a `col = <const>` or `col IN (...)`
//!   conjunct in the WHERE clause probes the table's secondary index (when
//!   one exists); range conjuncts (`<`, `<=`, `>`, `>=`, BETWEEN-shaped
//!   pairs) scan the *ordered* index variant. The residual filter runs
//!   only over the candidate rows.
//! * **Hash equi-joins** — `JOIN ... ON a.x = b.y` builds the hash table on
//!   the smaller input, keyed by [`ValueKey`]; output order is identical to
//!   the naive accumulated-major nested loop.
//! * **Parallel segmented scans** — above a calibrated row threshold (see
//!   [`scan_tuning`]), a scan splits into per-thread segments
//!   (`std::thread::scope`) whose partial results concatenate (plain
//!   scans) or merge (aggregations, via [`Accumulator::merge`]) in segment
//!   order, preserving sequential output order.
//!
//! [`run_select_reference`] keeps the unoptimized pipeline — snapshot +
//! interpreted evaluation + nested-loop joins — as the oracle for the
//! equivalence tests and the baseline for the `microbench` binary.

use crate::aggregate::{Accumulator, AggKind};
use crate::column::{ColumnStore, ColumnVec, DictColumn};
use crate::compile::{compile, CompiledExpr};
use crate::engine::{Engine, ResultSet};
use crate::error::DbError;
use crate::expr::{binary_values, eval, truthy, LikePattern, RowCtx};
use crate::schema::{Column, Schema};
use crate::snapshot::Snapshot;
use crate::sql::{JoinClause, SelectItem, SelectStmt, SqlExpr};
use crate::table::{Row, Table};
use crate::value::{DataType, Value, ValueKey};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::OnceLock;
use std::time::Instant;

/// Tuning values for the parallel segmented scan, fixed once per process.
///
/// Float aggregates (sum/avg/stddev) may differ from the sequential
/// result in the last ulp above the threshold because the summation order
/// changes.
struct ScanTuning {
    /// Row count above which single-table scans run as parallel segments.
    threshold: usize,
    /// Upper bound on scan worker threads.
    max_threads: usize,
}

/// The process-wide scan tuning: environment overrides
/// (`PERFBASE_PARALLEL_THRESHOLD`, `PERFBASE_SCAN_THREADS`) when set,
/// otherwise a one-shot calibration replacing the historical fixed
/// threshold of 8192 rows and 8-thread cap. The measured per-row cost and
/// the derived values are published as `scan.*` gauges.
fn scan_tuning() -> &'static ScanTuning {
    static TUNING: OnceLock<ScanTuning> = OnceLock::new();
    TUNING.get_or_init(|| {
        let env_usize = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0)
        };
        let threshold = env_usize("PERFBASE_PARALLEL_THRESHOLD").unwrap_or_else(|| {
            let per_row_ns = measure_per_row_cost_ns();
            let spawn_ns = measure_spawn_cost_ns();
            obs::set(obs::Counter::ScanPerRowNanos, per_row_ns);
            derive_threshold(spawn_ns, per_row_ns)
        });
        let max_threads = env_usize("PERFBASE_SCAN_THREADS").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        obs::set(obs::Counter::ParallelThresholdRows, threshold as u64);
        obs::set(obs::Counter::ScanThreadCap, max_threads as u64);
        ScanTuning {
            threshold,
            max_threads,
        }
    })
}

/// Threshold from measured costs: parallelism pays off once the scan work
/// dwarfs the price of standing up the workers; the 4x factor buys
/// headroom for partial-result merging, and the clamp keeps a noisy
/// measurement from producing a degenerate threshold.
fn derive_threshold(spawn_ns: u64, per_row_ns: u64) -> usize {
    ((4 * spawn_ns) / per_row_ns.max(1)).clamp(1024, 65_536) as usize
}

/// Median per-row cost of a filter-shaped pass (compare + branch +
/// accumulate) over an in-cache segment, in nanoseconds. Deliberately a
/// lower bound: real predicates cost more per row, which only lowers the
/// true break-even point below the derived threshold.
fn measure_per_row_cost_ns() -> u64 {
    const ROWS: u64 = 64 * 1024;
    let data: Vec<u64> = (0..ROWS).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let mut samples = [0u64; 5];
    for s in &mut samples {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for &v in &data {
            if v % 7 != 0 {
                acc = acc.wrapping_add(v);
            }
        }
        std::hint::black_box(acc);
        *s = (t0.elapsed().as_nanos() as u64 / ROWS).max(1);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median cost of spawning and joining one worker thread, in nanoseconds.
fn measure_spawn_cost_ns() -> u64 {
    let mut samples = [0u64; 5];
    for s in &mut samples {
        let t0 = Instant::now();
        std::thread::spawn(|| std::hint::black_box(0u64))
            .join()
            .expect("calibration thread");
        *s = t0.elapsed().as_nanos() as u64;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Where a SELECT resolves table names: the live engine, each table
/// pinned at first touch (read-committed, statement-level per-table
/// atomicity), or a pinned [`Snapshot`], every table resolved to the
/// version frozen at one epoch (snapshot isolation). Either way the scan
/// itself runs over a pinned `Arc<Table>` with no engine lock held, so
/// long analytical queries never block writers.
#[derive(Clone, Copy)]
pub(crate) enum Catalog<'a> {
    /// Resolve tables from the live engine catalog.
    Live(&'a Engine),
    /// Resolve tables from a pinned snapshot.
    At(&'a Snapshot),
}

impl Catalog<'_> {
    /// Pin the version of `name` this catalog view resolves to.
    fn pin(&self, name: &str) -> Result<std::sync::Arc<Table>, DbError> {
        match self {
            Catalog::Live(engine) => engine.pin_table(name),
            Catalog::At(snapshot) => snapshot.table(name),
        }
    }
}

/// Materialise a table's schema and rows from the catalog view.
fn materialize(cat: Catalog<'_>, name: &str) -> Result<(Schema, Vec<Row>), DbError> {
    let t = cat.pin(name)?;
    Ok((t.schema.clone(), t.rows().to_vec()))
}

/// Execute a SELECT against a catalog view (optimized pipeline).
pub(crate) fn run_select(cat: Catalog<'_>, sel: &SelectStmt) -> Result<ResultSet, DbError> {
    match &sel.from {
        None => general_select(sel, Schema::default(), vec![Vec::new()]),
        Some(base) if sel.joins.is_empty() => single_table_select(cat, base, sel),
        Some(base) => {
            let (schema, rows) = join_input(cat, base, &sel.joins)?;
            general_select(sel, schema, rows)
        }
    }
}

/// Execute a SELECT through the reference pipeline: table snapshots,
/// interpreted per-row evaluation, nested-loop joins. Semantically
/// equivalent to [`run_select`]; kept as the equivalence-test oracle and
/// microbench baseline.
pub(crate) fn run_select_reference(
    cat: Catalog<'_>,
    sel: &SelectStmt,
) -> Result<ResultSet, DbError> {
    let (schema, mut rows) = match &sel.from {
        None => (Schema::default(), vec![Vec::new()]),
        Some(base) => {
            if sel.joins.is_empty() {
                materialize(cat, base)?
            } else {
                join_input_nested_loop(cat, base, &sel.joins)?
            }
        }
    };

    if let Some(w) = &sel.where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            let v = eval(
                w,
                &RowCtx {
                    schema: &schema,
                    row: &r,
                },
            )?;
            if truthy(&v) {
                kept.push(r);
            }
        }
        rows = kept;
    }

    let (columns, out_rows) = if is_aggregation(sel) {
        aggregate_project(sel, &schema, &rows)?
    } else {
        let columns = output_names(sel, &schema);
        let mut out = Vec::with_capacity(rows.len());
        for r in &rows {
            let ctx = RowCtx {
                schema: &schema,
                row: r,
            };
            let mut projected = Vec::with_capacity(columns.len());
            for item in &sel.items {
                match item {
                    SelectItem::Star => projected.extend(r.iter().cloned()),
                    SelectItem::Expr { expr, .. } => projected.push(eval(expr, &ctx)?),
                }
            }
            out.push(projected);
        }
        (columns, out)
    };

    finalize(sel, columns, out_rows)
}

/// Does the statement have an aggregation shape (aggregate call or
/// GROUP BY)?
fn is_aggregation(sel: &SelectStmt) -> bool {
    !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Star => false,
        })
}

/// Single-table SELECT: stream over the pinned table version (no lock is
/// held during the scan), optionally through a secondary-index point
/// lookup, with compiled expressions throughout.
fn single_table_select(
    cat: Catalog<'_>,
    base: &str,
    sel: &SelectStmt,
) -> Result<ResultSet, DbError> {
    let pinned = cat.pin(base)?;
    let table: &Table = &pinned;
    let schema = &table.schema;

    let filter = sel.where_clause.as_ref().map(|w| compile(w, schema));
    let filter = filter.as_ref();
    let t_plan = Instant::now();
    let candidates = plan_access(sel.where_clause.as_ref(), table).candidates;
    obs::record_duration(obs::Hist::PlanNs, t_plan.elapsed());

    // Columnar tables first try the vectorized operator path; an
    // unvectorizable WHERE clause falls through to the row path below
    // (served by the table's materialized-row cache).
    if let Some(store) = table.column_store() {
        if let Some((columns, out_rows)) =
            columnar_select(store, schema, sel, candidates.as_deref())?
        {
            return finalize(sel, columns, out_rows);
        }
    }

    if is_aggregation(sel) {
        if let Some(key_idx) = resolve_group_keys(sel, schema) {
            if let Some(plan) = plan_fast(sel, schema, &key_idx) {
                let out_rows = match &candidates {
                    Some(ids) => {
                        let mut agg = FastAgg::new(plan, key_idx);
                        for &i in ids {
                            let row = &table.rows()[i];
                            if passes(filter, row)? {
                                agg.update(row);
                            }
                        }
                        agg.finish()?
                    }
                    None => fast_agg_scan(table.rows(), filter, plan, key_idx)?,
                };
                let columns = output_names(sel, schema);
                return finalize(sel, columns, out_rows);
            }
        }
        // General aggregation (expressions over aggregates, unresolved
        // keys, …): materialise only the matching rows, then group.
        let star = [CompiledItem::Star];
        let rows = match &candidates {
            Some(ids) => project_ids(table, ids, filter, &star)?,
            None => project_scan(table.rows(), filter, &star)?,
        };
        let (columns, out_rows) = aggregate_project(sel, schema, &rows)?;
        return finalize(sel, columns, out_rows);
    }

    // Plain filter/project: stream, never snapshot.
    let items = compile_items(sel, schema);
    let columns = output_names(sel, schema);
    let out_rows = match &candidates {
        Some(ids) => project_ids(table, ids, filter, &items)?,
        None => project_scan(table.rows(), filter, &items)?,
    };
    finalize(sel, columns, out_rows)
}

/// General pipeline over an already-materialised relation (joined input or
/// table-less SELECT), with compiled filter and projection.
fn general_select(
    sel: &SelectStmt,
    schema: Schema,
    mut rows: Vec<Row>,
) -> Result<ResultSet, DbError> {
    if let Some(w) = &sel.where_clause {
        let f = compile(w, &schema);
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if f.matches(&r)? {
                kept.push(r);
            }
        }
        rows = kept;
    }

    let (columns, out_rows) = if is_aggregation(sel) {
        aggregate_project(sel, &schema, &rows)?
    } else {
        let items = compile_items(sel, &schema);
        let columns = output_names(sel, &schema);
        let mut out = Vec::with_capacity(rows.len());
        for r in &rows {
            out.push(project_row(r, &items)?);
        }
        (columns, out)
    };

    finalize(sel, columns, out_rows)
}

/// One compiled projection item.
#[derive(Debug, Clone)]
enum CompiledItem {
    /// `*` — pass the whole row through.
    Star,
    /// A compiled expression.
    Expr(CompiledExpr),
}

fn compile_items(sel: &SelectStmt, schema: &Schema) -> Vec<CompiledItem> {
    sel.items
        .iter()
        .map(|item| match item {
            SelectItem::Star => CompiledItem::Star,
            SelectItem::Expr { expr, .. } => CompiledItem::Expr(compile(expr, schema)),
        })
        .collect()
}

fn passes(filter: Option<&CompiledExpr>, row: &[Value]) -> Result<bool, DbError> {
    match filter {
        Some(f) => f.matches(row),
        None => Ok(true),
    }
}

fn project_row(r: &Row, items: &[CompiledItem]) -> Result<Row, DbError> {
    let mut projected = Vec::with_capacity(items.len());
    for item in items {
        match item {
            CompiledItem::Star => projected.extend(r.iter().cloned()),
            CompiledItem::Expr(e) => projected.push(e.eval(r)?),
        }
    }
    Ok(projected)
}

fn project_segment(
    rows: &[Row],
    filter: Option<&CompiledExpr>,
    items: &[CompiledItem],
) -> Result<Vec<Row>, DbError> {
    let mut out = Vec::new();
    for r in rows {
        if !passes(filter, r)? {
            continue;
        }
        out.push(project_row(r, items)?);
    }
    Ok(out)
}

/// Filter + project index candidates (already in row order).
fn project_ids(
    table: &Table,
    ids: &[usize],
    filter: Option<&CompiledExpr>,
    items: &[CompiledItem],
) -> Result<Vec<Row>, DbError> {
    let mut out = Vec::new();
    for &i in ids {
        let r = &table.rows()[i];
        if !passes(filter, r)? {
            continue;
        }
        out.push(project_row(r, items)?);
    }
    obs::add(obs::Counter::ResidualChecks, ids.len() as u64);
    obs::add(obs::Counter::ResidualDrops, (ids.len() - out.len()) as u64);
    Ok(out)
}

/// How many scan segments to use for `n` rows.
fn scan_threads(n: usize) -> usize {
    let tuning = scan_tuning();
    if n < tuning.threshold {
        return 1;
    }
    // Cap segments so each stays at least half a threshold's worth of rows:
    // right at the threshold two workers split the scan, and the full
    // thread budget only engages once the input is large enough to feed it.
    let useful = n.div_ceil((tuning.threshold / 2).max(1));
    tuning.max_threads.min(useful).max(1)
}

/// Filter + project a full table scan, in parallel segments above the
/// threshold. Segment outputs concatenate in segment order, so the result
/// is identical to the sequential scan.
fn project_scan(
    rows: &[Row],
    filter: Option<&CompiledExpr>,
    items: &[CompiledItem],
) -> Result<Vec<Row>, DbError> {
    obs::add(obs::Counter::ScanRowsVisited, rows.len() as u64);
    let threads = scan_threads(rows.len());
    if threads <= 1 {
        obs::incr(obs::Counter::SerialScans);
        return project_segment(rows, filter, items);
    }
    obs::incr(obs::Counter::ParallelScans);
    let chunk = rows.len().div_ceil(threads);
    let partials: Vec<Result<Vec<Row>, DbError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks(chunk)
            .map(|seg| scope.spawn(move || project_segment(seg, filter, items)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    for p in partials {
        out.extend(p?); // first failing segment = first error in row order
    }
    Ok(out)
}

/// Streaming aggregation over a full scan, in parallel segments above the
/// threshold; partials merge in segment order so group order matches the
/// sequential first-seen order.
fn fast_agg_scan(
    rows: &[Row],
    filter: Option<&CompiledExpr>,
    plan: Vec<FastItem>,
    key_idx: Vec<usize>,
) -> Result<Vec<Row>, DbError> {
    obs::add(obs::Counter::ScanRowsVisited, rows.len() as u64);
    let threads = scan_threads(rows.len());
    if threads <= 1 {
        obs::incr(obs::Counter::SerialScans);
        let mut agg = FastAgg::new(plan, key_idx);
        for row in rows {
            if passes(filter, row)? {
                agg.update(row);
            }
        }
        return agg.finish();
    }
    obs::incr(obs::Counter::ParallelScans);
    let chunk = rows.len().div_ceil(threads);
    let partials: Vec<Result<FastAgg, DbError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = rows
            .chunks(chunk)
            .map(|seg| {
                let plan = plan.clone();
                let key_idx = key_idx.clone();
                scope.spawn(move || {
                    let mut agg = FastAgg::new(plan, key_idx);
                    for row in seg {
                        if passes(filter, row)? {
                            agg.update(row);
                        }
                    }
                    Ok(agg)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let mut iter = partials.into_iter();
    let mut agg = iter.next().expect("at least one segment")?;
    for p in iter {
        agg.merge(p?);
    }
    agg.finish()
}

// ---------------------------------------------------------------------------
// Vectorized execution over columnar tables
// ---------------------------------------------------------------------------
//
// Columnar tables (`crate::column`) get a column-at-a-time operator path:
// the WHERE clause is lowered into [`VecAtom`]s that evaluate one column
// vector at a time into a selection vector of row positions; dictionary
// predicates compare u32 codes against a precomputed per-entry truth table
// instead of strings. Aggregation then runs batched over the selected
// positions ([`vectorized_fast_agg`]), grouping single TEXT keys directly
// by dictionary code.
//
// The path is deliberately sequential: it reuses [`Accumulator`] in row
// order, so results are byte-identical to the row path (same Welford
// update order, same first-seen group order, same tie-breaking) — the
// property the equivalence corpus asserts.

/// Engine-exact comparison of two f64 images — the numeric arm of
/// `Value::total_cmp` (NaN sorts last, two NaNs are equal).
#[inline]
fn num_cmp(x: f64, y: f64) -> std::cmp::Ordering {
    match x.partial_cmp(&y) {
        Some(o) => o,
        None => x.is_nan().cmp(&y.is_nan()),
    }
}

/// Normalized f64 bits with [`ValueKey`]'s equivalence classes
/// (`-0.0` → `0.0`, canonical NaN).
#[inline]
fn norm_bits(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let f = if f.is_nan() { f64::NAN } else { f };
    f.to_bits()
}

/// Comparison operator of a vectorizable conjunct.
#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn of(op: &str) -> Option<CmpOp> {
        Some(match op {
            "=" => CmpOp::Eq,
            "<>" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }

    #[inline]
    fn holds(self, ord: std::cmp::Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

/// One vectorized WHERE conjunct. Every variant replicates the row
/// evaluator's semantics exactly; in particular, comparisons with a NULL
/// cell are false for every operator.
#[derive(Debug)]
enum VecAtom {
    /// `col <op> lit` where both sides compare through their f64 image.
    NumCmp { col: usize, op: CmpOp, rhs: f64 },
    /// Payload-independent comparison (NULL literal, or a cross-type
    /// compare decided by type rank): NULL cells are false, every non-NULL
    /// cell yields `result`.
    ConstCmp { col: usize, result: bool },
    /// Per-dictionary-code truth table over a TEXT column — comparisons,
    /// IN lists and LIKE all precompute one bool per distinct string and
    /// evaluate on u32 codes. `null_pass` is the NULL-cell result
    /// (true for NOT LIKE).
    DictPass {
        col: usize,
        pass: Vec<bool>,
        null_pass: bool,
    },
    /// `col [NOT] IN (lits)` over a non-TEXT column: membership in a
    /// normalized f64-bits set (elements that can never equal a numeric
    /// cell are dropped at compile time).
    NumIn {
        col: usize,
        set: HashSet<u64>,
        negated: bool,
    },
    /// `col IS [NOT] NULL`.
    IsNull { col: usize, negated: bool },
}

impl VecAtom {
    /// Does row `pos` pass this conjunct?
    #[inline]
    fn test(&self, store: &ColumnStore, pos: usize) -> bool {
        match self {
            VecAtom::NumCmp { col, op, rhs } => {
                let c = store.col(*col);
                !c.nulls().is_null(pos) && op.holds(num_cmp(c.f64_at(pos), *rhs))
            }
            VecAtom::ConstCmp { col, result } => *result && !store.col(*col).nulls().is_null(pos),
            VecAtom::DictPass {
                col,
                pass,
                null_pass,
            } => {
                let ColumnVec::Text(d) = store.col(*col) else {
                    unreachable!("DictPass compiled for a non-TEXT column");
                };
                if d.nulls.is_null(pos) {
                    *null_pass
                } else {
                    pass[d.codes[pos] as usize]
                }
            }
            VecAtom::NumIn { col, set, negated } => {
                let c = store.col(*col);
                !c.nulls().is_null(pos) && (set.contains(&norm_bits(c.f64_at(pos))) != *negated)
            }
            VecAtom::IsNull { col, negated } => store.col(*col).nulls().is_null(pos) != *negated,
        }
    }

    /// Column-at-a-time pass over the full table: append every passing
    /// position to `out`. The hot shapes (numeric compare, dictionary
    /// truth table) run with the column-type match hoisted out of the row
    /// loop; the rest fall back to per-row [`VecAtom::test`].
    fn fill(&self, store: &ColumnStore, out: &mut Vec<usize>) {
        // `IS NULL` over a column with no NULLs selects nothing.
        if let VecAtom::IsNull {
            col,
            negated: false,
        } = self
        {
            if store.col(*col).nulls().null_count() == 0 {
                return;
            }
        }
        out.reserve(store.len());
        match self {
            VecAtom::NumCmp { col, op, rhs } => match store.col(*col) {
                ColumnVec::Int { data, nulls } => {
                    for (pos, &x) in data.iter().enumerate() {
                        if !nulls.is_null(pos) && op.holds(num_cmp(x as f64, *rhs)) {
                            out.push(pos);
                        }
                    }
                }
                ColumnVec::Float { data, nulls } => {
                    for (pos, &x) in data.iter().enumerate() {
                        if !nulls.is_null(pos) && op.holds(num_cmp(x, *rhs)) {
                            out.push(pos);
                        }
                    }
                }
                _ => self.fill_generic(store, out),
            },
            VecAtom::DictPass {
                col,
                pass,
                null_pass,
            } => {
                let ColumnVec::Text(d) = store.col(*col) else {
                    unreachable!("DictPass compiled for a non-TEXT column");
                };
                for (pos, &c) in d.codes.iter().enumerate() {
                    let ok = if d.nulls.is_null(pos) {
                        *null_pass
                    } else {
                        pass[c as usize]
                    };
                    if ok {
                        out.push(pos);
                    }
                }
            }
            _ => self.fill_generic(store, out),
        }
    }

    fn fill_generic(&self, store: &ColumnStore, out: &mut Vec<usize>) {
        for pos in 0..store.len() {
            if self.test(store, pos) {
                out.push(pos);
            }
        }
    }
}

/// A non-NULL representative of `dtype`, for compile-time evaluation of
/// payload-independent (type-rank) comparisons.
fn representative(dtype: DataType) -> Value {
    match dtype {
        DataType::Int => Value::Int(0),
        DataType::Float => Value::Float(0.0),
        DataType::Bool => Value::Bool(false),
        DataType::Timestamp => Value::Timestamp(0),
        DataType::Text => Value::Text(String::new()),
    }
}

/// Lower a WHERE clause into vectorized conjuncts. `None` means some
/// conjunct doesn't vectorize and the caller must take the row path; when
/// `Some`, the atoms cover the entire clause (no residual filter).
fn compile_vec_filter(
    where_clause: Option<&SqlExpr>,
    schema: &Schema,
    store: &ColumnStore,
) -> Option<Vec<VecAtom>> {
    let Some(w) = where_clause else {
        return Some(Vec::new());
    };
    let mut conjuncts = Vec::new();
    split_conjuncts(w, &mut conjuncts);
    conjuncts
        .iter()
        .map(|c| compile_vec_atom(c, schema, store))
        .collect()
}

fn compile_vec_atom(e: &SqlExpr, schema: &Schema, store: &ColumnStore) -> Option<VecAtom> {
    match e {
        SqlExpr::Binary(op, l, r) if CmpOp::of(op).is_some() => {
            // Normalize to `col <op> lit`, flipping when the literal is on
            // the left (same as the access planner).
            let (name, lit, op) = match (&**l, &**r) {
                (SqlExpr::Col(n), SqlExpr::Lit(v)) => (n, v, *op),
                (SqlExpr::Lit(v), SqlExpr::Col(n)) => (
                    n,
                    v,
                    match *op {
                        "<" => ">",
                        "<=" => ">=",
                        ">" => "<",
                        ">=" => "<=",
                        other => other,
                    },
                ),
                _ => return None,
            };
            let ci = schema.index_of(name)?;
            if let ColumnVec::Text(d) = store.col(ci) {
                // Equality against a string probes the dictionary lookup
                // directly; other shapes compute a truth table per entry
                // through the scalar evaluator — exact for every literal
                // type.
                let pass = if let ("=", Value::Text(s)) = (op, lit) {
                    let mut pass = vec![false; d.dict().len()];
                    if let Some(c) = d.code_of(s) {
                        pass[c as usize] = true;
                    }
                    pass
                } else {
                    d.dict()
                        .iter()
                        .map(|s| {
                            binary_values(op, Value::Text(s.clone()), lit.clone())
                                .ok()
                                .map(|v| truthy(&v))
                        })
                        .collect::<Option<Vec<bool>>>()?
                };
                return Some(VecAtom::DictPass {
                    col: ci,
                    pass,
                    null_pass: false,
                });
            }
            if lit.is_null() {
                // Every comparison against NULL is false.
                return Some(VecAtom::ConstCmp {
                    col: ci,
                    result: false,
                });
            }
            match lit.as_f64() {
                // Non-TEXT cells all carry an f64 image, so the engine
                // compares them numerically (`total_cmp`).
                Some(f) => Some(VecAtom::NumCmp {
                    col: ci,
                    op: CmpOp::of(op)?,
                    rhs: f,
                }),
                // Non-numeric literal (TEXT) vs a numeric column: type-rank
                // ordering makes the result constant over non-NULL cells.
                None => {
                    let rep = representative(schema.columns[ci].dtype);
                    let v = binary_values(op, rep, lit.clone()).ok()?;
                    Some(VecAtom::ConstCmp {
                        col: ci,
                        result: truthy(&v),
                    })
                }
            }
        }
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => {
            let SqlExpr::Col(name) = &**expr else {
                return None;
            };
            let ci = schema.index_of(name)?;
            let lits = list
                .iter()
                .map(|e| match e {
                    SqlExpr::Lit(v) => Some(v),
                    _ => None,
                })
                .collect::<Option<Vec<&Value>>>()?;
            if let ColumnVec::Text(d) = store.col(ci) {
                let pass = d
                    .dict()
                    .iter()
                    .map(|s| {
                        let cell = Value::Text(s.clone());
                        lits.iter().any(|l| cell.sql_eq(l)) != *negated
                    })
                    .collect();
                return Some(VecAtom::DictPass {
                    col: ci,
                    pass,
                    null_pass: false,
                });
            }
            let mut set = HashSet::with_capacity(lits.len());
            for l in &lits {
                if !l.is_null() {
                    if let Some(f) = l.as_f64() {
                        set.insert(norm_bits(f));
                    }
                }
            }
            Some(VecAtom::NumIn {
                col: ci,
                set,
                negated: *negated,
            })
        }
        SqlExpr::IsNull { expr, negated } => {
            let SqlExpr::Col(name) = &**expr else {
                return None;
            };
            Some(VecAtom::IsNull {
                col: schema.index_of(name)?,
                negated: *negated,
            })
        }
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let SqlExpr::Col(name) = &**expr else {
                return None;
            };
            let ci = schema.index_of(name)?;
            let ColumnVec::Text(d) = store.col(ci) else {
                return None;
            };
            let pat = LikePattern::parse(pattern);
            let pass = d
                .dict()
                .iter()
                .map(|s| pat.matches(s) != *negated)
                .collect();
            // LIKE on NULL evaluates the match as false, so NOT LIKE passes.
            Some(VecAtom::DictPass {
                col: ci,
                pass,
                null_pass: *negated,
            })
        }
        _ => None,
    }
}

/// Evaluate the atom conjunction into a selection vector of row positions
/// (ascending). The first atom fills column-at-a-time; each later atom
/// narrows the survivors. Index candidates, when present, are narrowed
/// directly — the atoms cover the full WHERE clause, so this matches the
/// row path's residual filtering.
fn vectorized_selection(
    store: &ColumnStore,
    atoms: &[VecAtom],
    candidates: Option<&[usize]>,
) -> Vec<usize> {
    match candidates {
        Some(ids) => {
            let out: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&p| atoms.iter().all(|a| a.test(store, p)))
                .collect();
            obs::add(obs::Counter::ResidualChecks, ids.len() as u64);
            obs::add(obs::Counter::ResidualDrops, (ids.len() - out.len()) as u64);
            out
        }
        None => {
            obs::add(obs::Counter::ScanRowsVisited, store.len() as u64);
            match atoms.split_first() {
                None => (0..store.len()).collect(),
                Some((first, rest)) => {
                    let mut sv = Vec::new();
                    first.fill(store, &mut sv);
                    for a in rest {
                        sv.retain(|&p| a.test(store, p));
                    }
                    sv
                }
            }
        }
    }
}

/// Batched fast-path aggregation over selected positions. Single TEXT
/// group keys resolve groups by dictionary code (no hashing, no string
/// clones on the hot path); other key shapes reuse [`FastAgg`]'s
/// byte-encoded grouping fed straight from the typed vectors.
fn vectorized_fast_agg(
    store: &ColumnStore,
    sv: &[usize],
    plan: Vec<FastItem>,
    key_idx: Vec<usize>,
) -> Result<Vec<Row>, DbError> {
    if let [ki] = key_idx[..] {
        if let ColumnVec::Text(d) = store.col(ki) {
            return dict_grouped_agg(store, sv, &plan, d);
        }
    }
    let mut agg = FastAgg::new(plan, key_idx);
    for &p in sv {
        agg.update_at(store, p);
    }
    agg.finish()
}

/// GROUP BY over dictionary codes: group identity is the u32 code (plus
/// one NULL slot), resolved through a direct code → group table. Group
/// order is first-seen row order and accumulator updates run in row
/// order — identical to [`FastAgg`].
fn dict_grouped_agg(
    store: &ColumnStore,
    sv: &[usize],
    plan: &[FastItem],
    d: &DictColumn,
) -> Result<Vec<Row>, DbError> {
    const NONE: u32 = u32::MAX;
    let mut code_group = vec![NONE; d.dict().len()];
    let mut null_group = NONE;
    let mut keys: Vec<Value> = Vec::new();
    // Pass 1: resolve every selected row to a dense group index once, so
    // the aggregation passes below touch one column at a time.
    let mut gidx: Vec<u32> = Vec::with_capacity(sv.len());
    for &p in sv {
        let gi = if d.nulls.is_null(p) {
            if null_group == NONE {
                null_group = keys.len() as u32;
                keys.push(Value::Null);
            }
            null_group
        } else {
            let c = d.codes[p] as usize;
            if code_group[c] == NONE {
                code_group[c] = keys.len() as u32;
                keys.push(Value::Text(d.dict()[c].clone()));
            }
            code_group[c]
        };
        gidx.push(gi);
    }
    // Pass 2, per aggregate item: the column-type match is hoisted out of
    // the row loop, and each (group, item) accumulator still sees its
    // values in row order — identical results to the row-at-a-time path.
    let mut acc_cols: Vec<Vec<Accumulator>> = Vec::new();
    for it in plan {
        let FastItem::Agg(kind, col) = it else {
            continue;
        };
        let mut accs: Vec<Accumulator> = keys.iter().map(|_| Accumulator::new(*kind)).collect();
        let mut feed = |vals: &mut dyn Iterator<Item = Value>| {
            for (v, &g) in vals.zip(&gidx) {
                accs[g as usize].update(&v);
            }
        };
        match col {
            None => feed(&mut sv.iter().map(|_| Value::Int(1))),
            Some(i) => match store.col(*i) {
                ColumnVec::Int { data, nulls } => feed(&mut sv.iter().map(|&p| {
                    if nulls.is_null(p) {
                        Value::Null
                    } else {
                        Value::Int(data[p])
                    }
                })),
                ColumnVec::Float { data, nulls } => feed(&mut sv.iter().map(|&p| {
                    if nulls.is_null(p) {
                        Value::Null
                    } else {
                        Value::Float(data[p])
                    }
                })),
                ColumnVec::Bool { data, nulls } => feed(&mut sv.iter().map(|&p| {
                    if nulls.is_null(p) {
                        Value::Null
                    } else {
                        Value::Bool(data[p])
                    }
                })),
                ColumnVec::Timestamp { data, nulls } => feed(&mut sv.iter().map(|&p| {
                    if nulls.is_null(p) {
                        Value::Null
                    } else {
                        Value::Timestamp(data[p])
                    }
                })),
                ColumnVec::Text(_) => feed(&mut sv.iter().map(|&p| store.value(p, *i))),
            },
        }
        acc_cols.push(accs);
    }
    let mut out = Vec::with_capacity(keys.len());
    for (g, key) in keys.iter().enumerate() {
        let mut row = Vec::with_capacity(plan.len());
        let mut a = 0;
        for it in plan {
            match it {
                // The single group key, wherever the projection places it.
                FastItem::Key(_) => row.push(key.clone()),
                FastItem::Agg(..) => {
                    row.push(acc_cols[a][g].finish().map_err(DbError::Type)?);
                    a += 1;
                }
            }
        }
        out.push(row);
    }
    Ok(out)
}

/// One projection slot of a pure-column projection.
enum ProjCol {
    /// `*` — every schema column.
    All,
    /// A single column by index.
    One(usize),
}

/// When every projection item is `*` or a plain resolvable column, the
/// output can be built straight from the typed vectors.
fn pure_column_projection(sel: &SelectStmt, schema: &Schema) -> Option<Vec<ProjCol>> {
    sel.items
        .iter()
        .map(|item| match item {
            SelectItem::Star => Some(ProjCol::All),
            SelectItem::Expr {
                expr: SqlExpr::Col(name),
                ..
            } => schema.index_of(name).map(ProjCol::One),
            SelectItem::Expr { .. } => None,
        })
        .collect()
}

/// How much of a single-table SELECT runs vectorized on a columnar table.
/// Shared by the executor and `EXPLAIN`, so the report is truthful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VecStrategy {
    /// Selection and aggregation/projection all run column-at-a-time.
    Full,
    /// Selection is vectorized; aggregation or projection falls back to
    /// row-at-a-time evaluation over the selected positions.
    Partial,
    /// The WHERE clause doesn't vectorize — the whole query takes the
    /// row path (over the materialized-row cache).
    None,
}

impl VecStrategy {
    fn name(self) -> &'static str {
        match self {
            VecStrategy::Full => "full",
            VecStrategy::Partial => "partial",
            VecStrategy::None => "none",
        }
    }
}

/// Decide the vectorization strategy from the same facts the executor
/// uses.
fn vectorize_strategy(schema: &Schema, store: &ColumnStore, sel: &SelectStmt) -> VecStrategy {
    if compile_vec_filter(sel.where_clause.as_ref(), schema, store).is_none() {
        return VecStrategy::None;
    }
    let full = if is_aggregation(sel) {
        resolve_group_keys(sel, schema)
            .is_some_and(|key_idx| plan_fast(sel, schema, &key_idx).is_some())
    } else {
        pure_column_projection(sel, schema).is_some()
    };
    if full {
        VecStrategy::Full
    } else {
        VecStrategy::Partial
    }
}

/// Output column names paired with the produced rows.
type NamedRows = (Vec<String>, Vec<Row>);

/// Execute a single-table SELECT through the vectorized path. `None`
/// means the WHERE clause doesn't vectorize and the caller should use the
/// row path; `Some` carries `(columns, rows)` ready for [`finalize`].
fn columnar_select(
    store: &ColumnStore,
    schema: &Schema,
    sel: &SelectStmt,
    candidates: Option<&[usize]>,
) -> Result<Option<NamedRows>, DbError> {
    let Some(atoms) = compile_vec_filter(sel.where_clause.as_ref(), schema, store) else {
        obs::incr(obs::Counter::VectorizedFallbacks);
        return Ok(None);
    };
    obs::incr(obs::Counter::VectorizedScans);
    let sv = vectorized_selection(store, &atoms, candidates);

    if is_aggregation(sel) {
        if let Some(key_idx) = resolve_group_keys(sel, schema) {
            if let Some(plan) = plan_fast(sel, schema, &key_idx) {
                let out = vectorized_fast_agg(store, &sv, plan, key_idx)?;
                return Ok(Some((output_names(sel, schema), out)));
            }
        }
        // General aggregation: materialize only the selected rows, then
        // run the expression path over them (same as the row engine).
        let rows: Vec<Row> = sv.iter().map(|&p| store.materialize_row(p)).collect();
        return Ok(Some(aggregate_project(sel, schema, &rows)?));
    }

    let columns = output_names(sel, schema);
    let mut out = Vec::with_capacity(sv.len());
    match pure_column_projection(sel, schema) {
        Some(proj) => {
            for &p in &sv {
                let mut row = Vec::with_capacity(columns.len());
                for pc in &proj {
                    match pc {
                        ProjCol::All => row.extend((0..schema.arity()).map(|c| store.value(p, c))),
                        ProjCol::One(c) => row.push(store.value(p, *c)),
                    }
                }
                out.push(row);
            }
        }
        None => {
            // Expression projection: evaluate compiled items per selected
            // materialized row (errors surface for selected rows only,
            // exactly like the row path).
            let items = compile_items(sel, schema);
            for &p in &sv {
                let row = store.materialize_row(p);
                out.push(project_row(&row, &items)?);
            }
        }
    }
    Ok(Some((columns, out)))
}

/// Index probe outcome for a `col <op> <const>` conjunct.
enum Probe {
    /// Probe the index with this key.
    Key(ValueKey),
    /// The comparison can never be true (NULL or cross-type mismatch).
    Never,
}

/// One index-servable access condition extracted from the WHERE clause.
enum IndexCond {
    /// `col = lit` — single key probe (hash or ordered index).
    Eq(ValueKey),
    /// `col IN (lits)` — one probe per distinct key, positions unioned
    /// (hash or ordered index).
    In(Vec<ValueKey>),
    /// Merged range conjuncts (`<`, `<=`, `>`, `>=`, BETWEEN-shaped pairs)
    /// over one column — ordered index only.
    Range(Bound<ValueKey>, Bound<ValueKey>),
}

/// Translate an equality literal into the key class stored for a column of
/// `dtype`, replicating `Value::sql_eq` across types: numeric columns
/// compare by f64 image (so `TRUE` probes a numeric column as `1`), BOOLEAN
/// columns accept `0`/`1` numerics, TEXT only matches text, and NULL
/// matches nothing.
fn probe_key(dtype: DataType, lit: &Value) -> Probe {
    if lit.is_null() {
        return Probe::Never;
    }
    match dtype {
        DataType::Int | DataType::Float | DataType::Timestamp => match lit.as_f64() {
            Some(f) => {
                let f = if f == 0.0 { 0.0 } else { f };
                let f = if f.is_nan() { f64::NAN } else { f }; // canonical NaN
                Probe::Key(ValueKey::Num(f.to_bits()))
            }
            None => Probe::Never,
        },
        DataType::Bool => match lit {
            Value::Bool(b) => Probe::Key(ValueKey::Bool(*b)),
            Value::Text(_) => Probe::Never,
            other => match other.as_f64() {
                Some(f) => {
                    if f == 1.0 {
                        Probe::Key(ValueKey::Bool(true))
                    } else if f == 0.0 {
                        Probe::Key(ValueKey::Bool(false))
                    } else {
                        Probe::Never
                    }
                }
                None => Probe::Never,
            },
        },
        DataType::Text => match lit {
            Value::Text(s) => Probe::Key(ValueKey::Text(s.clone())),
            _ => Probe::Never,
        },
    }
}

/// Split a WHERE clause into its top-level AND conjuncts.
fn split_conjuncts<'e>(e: &'e SqlExpr, out: &mut Vec<&'e SqlExpr>) {
    if let SqlExpr::Binary("AND", l, r) = e {
        split_conjuncts(l, out);
        split_conjuncts(r, out);
    } else {
        out.push(e);
    }
}

/// Can every name in the expression resolve (columns and functions)? The
/// index path is only taken when this holds, so that name errors surface
/// from a scan exactly as they would without an index.
fn names_resolve(e: &SqlExpr, schema: &Schema) -> bool {
    match e {
        SqlExpr::Lit(_) => true,
        SqlExpr::Col(name) => schema.index_of(name).is_some(),
        SqlExpr::Unary(_, x) => names_resolve(x, schema),
        SqlExpr::Binary(_, l, r) => names_resolve(l, schema) && names_resolve(r, schema),
        SqlExpr::Func { name, args, .. } => {
            AggKind::from_name(name).is_none()
                && crate::expr::is_known_scalar(name)
                && args.iter().all(|a| names_resolve(a, schema))
        }
        SqlExpr::InList { expr, list, .. } => {
            names_resolve(expr, schema) && list.iter().all(|e| names_resolve(e, schema))
        }
        SqlExpr::IsNull { expr, .. } | SqlExpr::Like { expr, .. } => names_resolve(expr, schema),
    }
}

/// Borrowing view of an owned bound (`Bound::as_ref` is not yet stable).
fn bound_ref(b: &Bound<ValueKey>) -> Bound<&ValueKey> {
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// The tighter of two lower bounds (greater key wins; on a tie, Excluded).
fn tighter_lower(a: Bound<ValueKey>, b: Bound<ValueKey>) -> Bound<ValueKey> {
    let (ka, ea) = match &a {
        Bound::Unbounded => return b,
        Bound::Included(k) => (k, false),
        Bound::Excluded(k) => (k, true),
    };
    let (kb, _) = match &b {
        Bound::Unbounded => return a,
        Bound::Included(k) => (k, false),
        Bound::Excluded(k) => (k, true),
    };
    match ka.cmp(kb) {
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Equal => {
            if ea {
                a
            } else {
                b
            }
        }
    }
}

/// The tighter of two upper bounds (smaller key wins; on a tie, Excluded).
fn tighter_upper(a: Bound<ValueKey>, b: Bound<ValueKey>) -> Bound<ValueKey> {
    let (ka, ea) = match &a {
        Bound::Unbounded => return b,
        Bound::Included(k) => (k, false),
        Bound::Excluded(k) => (k, true),
    };
    let (kb, _) = match &b {
        Bound::Unbounded => return a,
        Bound::Included(k) => (k, false),
        Bound::Excluded(k) => (k, true),
    };
    match ka.cmp(kb) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if ea {
                a
            } else {
                b
            }
        }
    }
}

/// Candidate row positions for an index-assisted lookup. Competing
/// AND-conjuncts are ranked by estimated candidate count and the cheapest
/// access path wins:
///
/// * `col = lit` (any index) — estimate `rows / distinct_keys`, the
///   original distinct-key selectivity proxy.
/// * `col IN (lits)` (any index; probe per element, union the positions,
///   dedup) — estimate `k · rows / distinct_keys`.
/// * range conjuncts `<`, `<=`, `>`, `>=` — including BETWEEN-shaped pairs,
///   which merge into one `(lower, upper)` window per column — served by an
///   *ordered* index only; flat estimate `rows / 3`.
///
/// Literal translation mirrors the evaluator: an equality or IN element
/// whose literal can never match the column type is dropped (an empty
/// remaining probe set falsifies the whole AND chain); a range bound
/// against NULL falsifies the chain (every comparison with NULL is false),
/// while a cross-type range bound merely skips that conjunct — under
/// `type_rank` ordering it is constant-true or constant-false for the
/// whole column, which the residual filter handles.
///
/// Candidates come back in row order and are always a superset of the
/// matching rows; the caller still applies the full WHERE over them.
fn plan_access(where_clause: Option<&SqlExpr>, table: &Table) -> AccessPlan {
    let nrows = table.len() as f64;
    let Some(w) = where_clause else {
        return counted(AccessPlan::full_scan(nrows));
    };
    if !names_resolve(w, &table.schema) {
        return counted(AccessPlan::full_scan(nrows));
    }
    let mut conjuncts = Vec::new();
    split_conjuncts(w, &mut conjuncts);

    let mut best: Option<(f64, usize, IndexCond)> = None; // (est, col, cond)
    let consider =
        |est: f64, ci: usize, cond: IndexCond, best: &mut Option<(f64, usize, IndexCond)>| {
            if best.as_ref().is_none_or(|(e, _, _)| est < *e) {
                *best = Some((est, ci, cond));
            }
        };
    // Range windows accumulate per column across conjuncts, then compete
    // as one merged condition each.
    let mut ranges: Vec<(usize, Bound<ValueKey>, Bound<ValueKey>)> = Vec::new();

    for c in conjuncts {
        match c {
            SqlExpr::Binary(op, l, r) if matches!(*op, "=" | "<" | "<=" | ">" | ">=") => {
                // Normalize to `col <op> lit`, flipping the operator when
                // the literal is on the left.
                let (name, lit, op) = match (&**l, &**r) {
                    (SqlExpr::Col(n), SqlExpr::Lit(v)) => (n, v, *op),
                    (SqlExpr::Lit(v), SqlExpr::Col(n)) => (
                        n,
                        v,
                        match *op {
                            "<" => ">",
                            "<=" => ">=",
                            ">" => "<",
                            ">=" => "<=",
                            other => other,
                        },
                    ),
                    _ => continue,
                };
                let Some(ci) = table.schema.index_of(name) else {
                    continue;
                };
                let Some(distinct) = table.index_distinct_keys(ci) else {
                    continue;
                };
                let probe = probe_key(table.schema.columns[ci].dtype, lit);
                if op == "=" {
                    match probe {
                        // A type-impossible equality falsifies the AND chain.
                        Probe::Never => return counted(AccessPlan::never()),
                        Probe::Key(key) => consider(
                            nrows / distinct.max(1) as f64,
                            ci,
                            IndexCond::Eq(key),
                            &mut best,
                        ),
                    }
                    continue;
                }
                // Range conjunct: ordered indexes only.
                if !table.has_ordered_index_on(ci) {
                    continue;
                }
                let key = match probe {
                    Probe::Key(key) => key,
                    Probe::Never => {
                        if lit.is_null() {
                            // Any comparison against NULL is false.
                            return counted(AccessPlan::never());
                        }
                        // Cross-type bound: constant over the whole column
                        // under type_rank ordering — leave it to the
                        // residual filter.
                        continue;
                    }
                };
                let (lo, hi) = match op {
                    "<" => (Bound::Unbounded, Bound::Excluded(key)),
                    "<=" => (Bound::Unbounded, Bound::Included(key)),
                    ">" => (Bound::Excluded(key), Bound::Unbounded),
                    _ => (Bound::Included(key), Bound::Unbounded),
                };
                match ranges.iter_mut().find(|(c, _, _)| *c == ci) {
                    Some((_, cur_lo, cur_hi)) => {
                        *cur_lo = tighter_lower(std::mem::replace(cur_lo, Bound::Unbounded), lo);
                        *cur_hi = tighter_upper(std::mem::replace(cur_hi, Bound::Unbounded), hi);
                    }
                    None => ranges.push((ci, lo, hi)),
                }
            }
            SqlExpr::InList {
                expr,
                list,
                negated: false,
            } => {
                let SqlExpr::Col(name) = &**expr else {
                    continue;
                };
                let Some(ci) = table.schema.index_of(name) else {
                    continue;
                };
                let Some(distinct) = table.index_distinct_keys(ci) else {
                    continue;
                };
                if !list.iter().all(|e| matches!(e, SqlExpr::Lit(_))) {
                    continue;
                }
                let dtype = table.schema.columns[ci].dtype;
                let mut keys: Vec<ValueKey> = Vec::with_capacity(list.len());
                for e in list {
                    let SqlExpr::Lit(lit) = e else { unreachable!() };
                    // Elements that can never match are dropped (NULL
                    // elements make `IN` yield NULL, never true).
                    if let Probe::Key(key) = probe_key(dtype, lit) {
                        if !keys.contains(&key) {
                            keys.push(key);
                        }
                    }
                }
                if keys.is_empty() {
                    // No element can ever match: the IN is constant-false.
                    return counted(AccessPlan::never());
                }
                let est = keys.len() as f64 * nrows / distinct.max(1) as f64;
                consider(est, ci, IndexCond::In(keys), &mut best);
            }
            _ => continue,
        }
    }

    for (ci, lo, hi) in ranges {
        consider(nrows / 3.0, ci, IndexCond::Range(lo, hi), &mut best);
    }

    let Some((est, ci, cond)) = best else {
        return counted(AccessPlan::full_scan(nrows));
    };
    let kind = match &cond {
        IndexCond::Eq(_) => AccessPathKind::PointLookup,
        IndexCond::In(_) => AccessPathKind::InList,
        IndexCond::Range(..) => AccessPathKind::RangeWindow,
    };
    let candidates = match cond {
        IndexCond::Eq(key) => {
            obs::incr(obs::Counter::IndexProbes);
            table.index_lookup(ci, &key).map(<[usize]>::to_vec)
        }
        IndexCond::In(keys) => {
            obs::add(obs::Counter::IndexProbes, keys.len() as u64);
            let mut out = Some(Vec::new());
            for key in &keys {
                out = match (out, table.index_lookup(ci, key)) {
                    (Some(mut acc), Some(ids)) => {
                        acc.extend_from_slice(ids);
                        Some(acc)
                    }
                    _ => None,
                };
            }
            out.map(|mut acc| {
                acc.sort_unstable();
                acc.dedup();
                acc
            })
        }
        IndexCond::Range(lo, hi) => {
            obs::incr(obs::Counter::IndexProbes);
            table.range_lookup(ci, bound_ref(&lo), bound_ref(&hi))
        }
    };
    counted(match candidates {
        Some(c) => AccessPlan {
            kind,
            column: Some(table.schema.columns[ci].name.clone()),
            est_rows: est,
            candidates: Some(c),
        },
        // The index disappeared between estimation and probing (should not
        // happen under the read guard) — degrade to a scan.
        None => AccessPlan::full_scan(nrows),
    })
}

/// Which access path the planner chose for a single-table SELECT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessPathKind {
    /// `col = lit` index probe.
    PointLookup,
    /// `col IN (...)` multi-probe, positions unioned.
    InList,
    /// Merged range window over an ordered index.
    RangeWindow,
    /// No usable index condition — visit every row.
    FullScan,
    /// The WHERE clause is provably constant-false; no row can match.
    Never,
}

impl AccessPathKind {
    /// Stable name used in EXPLAIN output.
    pub(crate) fn name(self) -> &'static str {
        match self {
            AccessPathKind::PointLookup => "point-lookup",
            AccessPathKind::InList => "in-list",
            AccessPathKind::RangeWindow => "range-window",
            AccessPathKind::FullScan => "full-scan",
            AccessPathKind::Never => "never",
        }
    }
}

/// The planner's access decision for one single-table SELECT: the chosen
/// path, the index column driving it (when any), the optimizer's candidate
/// row estimate, and the candidate positions themselves (`None` = visit
/// every row).
pub(crate) struct AccessPlan {
    /// Chosen access path.
    pub(crate) kind: AccessPathKind,
    /// Index column serving the probe, for index-backed paths.
    pub(crate) column: Option<String>,
    /// Estimated candidate rows (the ranking key among competing paths).
    pub(crate) est_rows: f64,
    /// Candidate row positions; `None` means scan all rows.
    pub(crate) candidates: Option<Vec<usize>>,
}

impl AccessPlan {
    fn full_scan(nrows: f64) -> Self {
        AccessPlan {
            kind: AccessPathKind::FullScan,
            column: None,
            est_rows: nrows,
            candidates: None,
        }
    }

    fn never() -> Self {
        AccessPlan {
            kind: AccessPathKind::Never,
            column: None,
            est_rows: 0.0,
            candidates: Some(Vec::new()),
        }
    }
}

/// Record the planner's decision in the `plan.*` counters and pass the
/// plan through.
fn counted(plan: AccessPlan) -> AccessPlan {
    obs::incr(match plan.kind {
        AccessPathKind::PointLookup => obs::Counter::PlanPointLookup,
        AccessPathKind::InList => obs::Counter::PlanInList,
        AccessPathKind::RangeWindow => obs::Counter::PlanRangeWindow,
        AccessPathKind::FullScan => obs::Counter::PlanFullScan,
        AccessPathKind::Never => obs::Counter::PlanFalsified,
    });
    if let Some(c) = &plan.candidates {
        obs::add(obs::Counter::IndexCandidateRows, c.len() as u64);
    }
    plan
}

/// Candidate row positions for an index-assisted lookup, or `None` when no
/// index applies. Thin view over [`plan_access`] kept for the equivalence
/// tests.
#[cfg(test)]
fn plan_point_lookup(where_clause: Option<&SqlExpr>, table: &Table) -> Option<Vec<usize>> {
    plan_access(where_clause, table).candidates
}

/// Render `EXPLAIN [ANALYZE]` for a SELECT as a one-column result set
/// (column `plan`), one plan step per row, listed top-down from the last
/// operation applied to the access path at the bottom. ANALYZE also runs
/// the query, annotating the scan with the actual candidate row count and
/// appending a trailing `Rows returned` line.
pub(crate) fn run_explain(
    cat: Catalog<'_>,
    sel: &SelectStmt,
    analyze: bool,
) -> Result<ResultSet, DbError> {
    let mut lines: Vec<String> = Vec::new();
    if let Some(n) = sel.limit {
        lines.push(format!("Limit: {n}"));
    }
    if !sel.order_by.is_empty() {
        let keys: Vec<String> = sel
            .order_by
            .iter()
            .map(|k| {
                let name = match k.position {
                    Some(p) => p.to_string(),
                    None => k.column.clone(),
                };
                if k.desc {
                    format!("{name} DESC")
                } else {
                    name
                }
            })
            .collect();
        lines.push(format!("Sort: {}", keys.join(", ")));
    }
    if sel.distinct {
        lines.push("Distinct".to_string());
    }
    let items: Vec<String> = sel
        .items
        .iter()
        .map(|it| match it {
            SelectItem::Star => "*".to_string(),
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => format!("{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => expr.to_string(),
        })
        .collect();
    if is_aggregation(sel) {
        let mut line = format!("Aggregate: {}", items.join(", "));
        if !sel.group_by.is_empty() {
            line.push_str(&format!(" group by {}", sel.group_by.join(", ")));
        }
        lines.push(line);
    } else {
        lines.push(format!("Project: {}", items.join(", ")));
    }
    if let Some(w) = &sel.where_clause {
        lines.push(format!("Filter: {w}"));
    }
    // Joins apply left-to-right, so in top-down order the last one comes
    // first.
    for j in sel.joins.iter().rev() {
        lines.push(format!(
            "Join {} ON {} = {}",
            j.table, j.left_col, j.right_col
        ));
    }
    match &sel.from {
        None => lines.push("Values: 1 row".to_string()),
        Some(base) => {
            let pinned = cat.pin(base)?;
            let table: &Table = &pinned;
            let nrows = table.len();
            let plan = if sel.joins.is_empty() {
                plan_access(sel.where_clause.as_ref(), table)
            } else {
                // Joined queries materialise the base table; the index
                // planner only serves single-table SELECTs.
                AccessPlan::full_scan(nrows as f64)
            };
            // Columnar tables report their layout and how much of the
            // query the vectorized path covers — decided by the same
            // strategy function the executor uses.
            let layout_note = table.column_store().map(|store| {
                if sel.joins.is_empty() {
                    format!(
                        " layout=columnar vectorized={}",
                        vectorize_strategy(&table.schema, store, sel).name()
                    )
                } else {
                    // Joined queries always materialise rows.
                    " layout=columnar".to_string()
                }
            });
            let mut scan = format!("Scan {base} access={}", plan.kind.name());
            if let Some(col) = &plan.column {
                scan.push_str(&format!(" column={col}"));
            }
            if let Some(note) = layout_note {
                scan.push_str(&note);
            }
            scan.push_str(&format!(" est_rows={:.1}", plan.est_rows));
            if analyze {
                let actual = plan.candidates.as_ref().map_or(nrows, Vec::len);
                scan.push_str(&format!(" actual_rows={actual}"));
            }
            lines.push(scan);
        }
    }
    if analyze {
        let rs = run_select(cat, sel)?;
        lines.push(format!("Rows returned: {}", rs.len()));
    }
    let rows: Vec<Row> = lines.into_iter().map(|l| vec![Value::Text(l)]).collect();
    Ok(ResultSet::new(vec!["plan".to_string()], rows))
}

/// Group-key column indices, when every GROUP BY name resolves and the
/// query has an aggregation shape at all.
fn resolve_group_keys(sel: &SelectStmt, schema: &Schema) -> Option<Vec<usize>> {
    if !is_aggregation(sel) {
        return None;
    }
    sel.group_by.iter().map(|g| schema.index_of(g)).collect()
}

/// DISTINCT → ORDER BY → LIMIT, shared by both execution paths.
fn finalize(
    sel: &SelectStmt,
    columns: Vec<String>,
    mut out_rows: Vec<Row>,
) -> Result<ResultSet, DbError> {
    if sel.distinct {
        let mut seen: HashSet<Vec<ValueKey>> = HashSet::with_capacity(out_rows.len());
        out_rows.retain(|r| seen.insert(r.iter().map(ValueKey::of).collect()));
    }

    if !sel.order_by.is_empty() {
        let mut keys = Vec::with_capacity(sel.order_by.len());
        for k in &sel.order_by {
            let idx = match k.position {
                Some(p) => {
                    if p == 0 || p > columns.len() {
                        return Err(DbError::Execution(format!(
                            "ORDER BY position {p} out of range"
                        )));
                    }
                    p - 1
                }
                None => resolve_output_column(&columns, &k.column)
                    .ok_or_else(|| DbError::NoSuchColumn(k.column.clone()))?,
            };
            keys.push((idx, k.desc));
        }
        out_rows.sort_by(|a, b| {
            for (idx, desc) in &keys {
                let ord = a[*idx].total_cmp(&b[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(n) = sel.limit {
        out_rows.truncate(n);
    }

    Ok(ResultSet::new(columns, out_rows))
}

/// Resolve an ORDER BY name against output column names: exact match first,
/// then match on the unqualified suffix (`mbps` ↔ `bw.mbps`).
fn resolve_output_column(columns: &[String], name: &str) -> Option<usize> {
    if let Some(i) = columns.iter().position(|c| c == name) {
        return Some(i);
    }
    columns.iter().position(|c| {
        c.rsplit('.').next() == Some(name) || name.rsplit('.').next() == Some(c.as_str())
    })
}

/// Which accumulated/joined columns implement a join clause.
fn resolve_join_keys(
    schema: &Schema,
    jschema: &Schema,
    j: &JoinClause,
) -> Result<(usize, usize), DbError> {
    let (acc_key, new_key) = if schema.index_of(&j.left_col).is_some()
        && jschema.index_of(&j.right_col).is_some()
    {
        (&j.left_col, &j.right_col)
    } else if schema.index_of(&j.right_col).is_some() && jschema.index_of(&j.left_col).is_some() {
        (&j.right_col, &j.left_col)
    } else {
        return Err(DbError::NoSuchColumn(format!(
            "join keys {} / {} not found",
            j.left_col, j.right_col
        )));
    };
    let ai = schema.index_of(acc_key).expect("checked above");
    let ni = jschema.index_of(new_key).expect("checked above");
    Ok((ai, ni))
}

/// Build the joined input relation with hash equi-joins. The hash table is
/// built on the smaller input; output column names are qualified
/// (`table.column`) so both sides stay addressable. Output order is
/// accumulated-major / joined-minor regardless of build side, matching the
/// nested-loop reference.
fn join_input(
    cat: Catalog<'_>,
    base: &str,
    joins: &[JoinClause],
) -> Result<(Schema, Vec<Row>), DbError> {
    let (bs, brows) = materialize(cat, base)?;
    let mut schema = qualify(&bs, base)?;
    let mut rows = brows;

    for j in joins {
        let (js, jrows) = materialize(cat, &j.table)?;
        let jschema = qualify(&js, &j.table)?;
        let (ai, ni) = resolve_join_keys(&schema, &jschema, j)?;

        let out = if jrows.len() <= rows.len() {
            // Build on the joined side, probe with accumulated rows.
            let mut built: HashMap<ValueKey, Vec<usize>> = HashMap::new();
            for (k, r) in jrows.iter().enumerate() {
                let key = ValueKey::of(&r[ni]);
                if !key.is_null() {
                    built.entry(key).or_default().push(k);
                }
            }
            let mut out = Vec::new();
            for r in &rows {
                let key = ValueKey::of(&r[ai]);
                if key.is_null() {
                    continue; // NULL keys never match
                }
                if let Some(matches) = built.get(&key) {
                    for &k in matches {
                        let mut joined = r.clone();
                        joined.extend(jrows[k].iter().cloned());
                        out.push(joined);
                    }
                }
            }
            out
        } else {
            // Build on the (smaller) accumulated side; bucket matches per
            // accumulated row, then emit in accumulated order.
            let mut built: HashMap<ValueKey, Vec<usize>> = HashMap::new();
            for (a, r) in rows.iter().enumerate() {
                let key = ValueKey::of(&r[ai]);
                if !key.is_null() {
                    built.entry(key).or_default().push(a);
                }
            }
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
            for (k, r) in jrows.iter().enumerate() {
                let key = ValueKey::of(&r[ni]);
                if key.is_null() {
                    continue;
                }
                if let Some(accs) = built.get(&key) {
                    for &a in accs {
                        buckets[a].push(k);
                    }
                }
            }
            let mut out = Vec::new();
            for (r, bucket) in rows.iter().zip(&buckets) {
                for &k in bucket {
                    let mut joined = r.clone();
                    joined.extend(jrows[k].iter().cloned());
                    out.push(joined);
                }
            }
            out
        };

        let mut cols = schema.columns;
        cols.extend(jschema.columns);
        schema = Schema::new(cols)?;
        rows = out;
    }
    Ok((schema, rows))
}

/// Nested-loop join used by the reference executor.
fn join_input_nested_loop(
    cat: Catalog<'_>,
    base: &str,
    joins: &[JoinClause],
) -> Result<(Schema, Vec<Row>), DbError> {
    let (bs, brows) = materialize(cat, base)?;
    let mut schema = qualify(&bs, base)?;
    let mut rows = brows;

    for j in joins {
        let (js, jrows) = materialize(cat, &j.table)?;
        let jschema = qualify(&js, &j.table)?;
        let (ai, ni) = resolve_join_keys(&schema, &jschema, j)?;

        let mut out = Vec::new();
        for r in &rows {
            if r[ai].is_null() {
                continue;
            }
            for jr in &jrows {
                if !jr[ni].is_null() && r[ai].sql_eq(&jr[ni]) {
                    let mut joined = r.clone();
                    joined.extend(jr.iter().cloned());
                    out.push(joined);
                }
            }
        }

        let mut cols = schema.columns;
        cols.extend(jschema.columns);
        schema = Schema::new(cols)?;
        rows = out;
    }
    Ok((schema, rows))
}

fn qualify(schema: &Schema, table: &str) -> Result<Schema, DbError> {
    Schema::new(
        schema
            .columns
            .iter()
            .map(|c| Column {
                name: format!("{table}.{}", c.name),
                dtype: c.dtype,
                nullable: c.nullable,
            })
            .collect(),
    )
}

/// Plan of a fast-path aggregation item.
#[derive(Debug, Clone)]
enum FastItem {
    /// Pass through group-key slot `k`.
    Key(usize),
    /// Accumulate `agg(column i)`; `None` column means `count(*)`.
    Agg(AggKind, Option<usize>),
}

/// Build the fast-path plan for the common `SELECT g…, agg(col)… GROUP BY
/// g…` shape. Returns `None` when any item needs the general expression
/// path.
fn plan_fast(sel: &SelectStmt, schema: &Schema, key_idx: &[usize]) -> Option<Vec<FastItem>> {
    let mut plan = Vec::with_capacity(sel.items.len());
    for item in &sel.items {
        let expr = match item {
            SelectItem::Expr { expr, .. } => expr,
            SelectItem::Star => return None,
        };
        match expr {
            SqlExpr::Col(name) => {
                let i = schema.index_of(name)?;
                let k = key_idx.iter().position(|&ki| ki == i)?;
                plan.push(FastItem::Key(k));
            }
            SqlExpr::Func { name, args, star } => {
                let kind = AggKind::from_name(name)?;
                if *star {
                    plan.push(FastItem::Agg(kind, None));
                } else {
                    match args.as_slice() {
                        [SqlExpr::Col(col)] => {
                            let i = schema.index_of(col)?;
                            plan.push(FastItem::Agg(kind, Some(i)));
                        }
                        // count(<non-null literal>) counts rows; other
                        // aggregates over literals take the general path.
                        [SqlExpr::Lit(l)] if kind == AggKind::Count && !l.is_null() => {
                            plan.push(FastItem::Agg(kind, None))
                        }
                        _ => return None,
                    }
                }
            }
            _ => return None,
        }
    }
    Some(plan)
}

/// Streaming state for the single-pass aggregation: one scan, one
/// accumulator set per group, byte-encoded keys. This is what makes
/// in-database aggregation beat row-at-a-time processing in the frontend
/// (paper §4.2). Partial states from parallel segments combine with
/// [`FastAgg::merge`].
struct FastAgg {
    plan: Vec<FastItem>,
    key_idx: Vec<usize>,
    group_of: HashMap<Vec<u8>, usize>,
    keys: Vec<Vec<Value>>,
    key_bytes: Vec<Vec<u8>>,
    accs: Vec<Vec<Accumulator>>,
}

impl FastAgg {
    fn new(plan: Vec<FastItem>, key_idx: Vec<usize>) -> Self {
        let mut agg = FastAgg {
            plan,
            key_idx,
            group_of: HashMap::new(),
            keys: Vec::new(),
            key_bytes: Vec::new(),
            accs: Vec::new(),
        };
        if agg.key_idx.is_empty() {
            // One global group, present even for zero input rows.
            agg.keys.push(Vec::new());
            agg.key_bytes.push(Vec::new());
            let fresh = agg.fresh_accs();
            agg.accs.push(fresh);
        }
        agg
    }

    fn fresh_accs(&self) -> Vec<Accumulator> {
        self.plan
            .iter()
            .filter_map(|it| match it {
                FastItem::Agg(kind, _) => Some(Accumulator::new(*kind)),
                FastItem::Key(_) => None,
            })
            .collect()
    }

    fn update(&mut self, row: &Row) {
        let gi = if self.key_idx.is_empty() {
            0
        } else {
            let mut key = Vec::with_capacity(self.key_idx.len() * 9);
            for &i in &self.key_idx {
                encode_value_bytes(&row[i], &mut key);
            }
            match self.group_of.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = self.keys.len();
                    self.keys
                        .push(self.key_idx.iter().map(|&i| row[i].clone()).collect());
                    self.key_bytes.push(key.clone());
                    self.group_of.insert(key, gi);
                    let fresh = self.fresh_accs();
                    self.accs.push(fresh);
                    gi
                }
            }
        };
        let group_accs = &mut self.accs[gi];
        let star_value = Value::Int(1);
        let mut a = 0;
        for it in &self.plan {
            if let FastItem::Agg(_, col) = it {
                let v = match col {
                    Some(i) => &row[*i],
                    None => &star_value,
                };
                group_accs[a].update(v);
                a += 1;
            }
        }
    }

    /// [`FastAgg::update`] fed from a column store: key bytes and
    /// aggregate inputs come straight from the typed vectors, with no full
    /// row materialization.
    fn update_at(&mut self, store: &ColumnStore, pos: usize) {
        let gi = if self.key_idx.is_empty() {
            0
        } else {
            let mut key = Vec::with_capacity(self.key_idx.len() * 9);
            for &i in &self.key_idx {
                encode_value_bytes(&store.value(pos, i), &mut key);
            }
            match self.group_of.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = self.keys.len();
                    self.keys
                        .push(self.key_idx.iter().map(|&i| store.value(pos, i)).collect());
                    self.key_bytes.push(key.clone());
                    self.group_of.insert(key, gi);
                    let fresh = self.fresh_accs();
                    self.accs.push(fresh);
                    gi
                }
            }
        };
        let group_accs = &mut self.accs[gi];
        let mut a = 0;
        for it in &self.plan {
            if let FastItem::Agg(_, col) = it {
                let v = match col {
                    Some(i) => store.value(pos, *i),
                    None => Value::Int(1),
                };
                group_accs[a].update(&v);
                a += 1;
            }
        }
    }

    /// Fold a later segment's partial state into this one. New groups
    /// append in the other segment's first-seen order, so merging partials
    /// in segment order reproduces the sequential group order.
    fn merge(&mut self, other: FastAgg) {
        if self.key_idx.is_empty() {
            for (a, o) in self.accs[0].iter_mut().zip(&other.accs[0]) {
                a.merge(o);
            }
            return;
        }
        for gi2 in 0..other.keys.len() {
            let kb = &other.key_bytes[gi2];
            match self.group_of.get(kb) {
                Some(&gi) => {
                    for (a, o) in self.accs[gi].iter_mut().zip(&other.accs[gi2]) {
                        a.merge(o);
                    }
                }
                None => {
                    let gi = self.keys.len();
                    self.group_of.insert(kb.clone(), gi);
                    self.keys.push(other.keys[gi2].clone());
                    self.key_bytes.push(kb.clone());
                    self.accs.push(other.accs[gi2].clone());
                }
            }
        }
    }

    fn finish(self) -> Result<Vec<Row>, DbError> {
        let mut out = Vec::with_capacity(self.keys.len());
        for (key, group_accs) in self.keys.iter().zip(&self.accs) {
            let mut row = Vec::with_capacity(self.plan.len());
            let mut a = 0;
            for it in &self.plan {
                match it {
                    FastItem::Key(k) => row.push(key[*k].clone()),
                    FastItem::Agg(..) => {
                        row.push(group_accs[a].finish().map_err(DbError::Type)?);
                        a += 1;
                    }
                }
            }
            out.push(row);
        }
        Ok(out)
    }
}

/// Slice-based wrapper used by the general path (post-join/filter input).
fn try_fast_aggregate(
    sel: &SelectStmt,
    schema: &Schema,
    rows: &[Row],
    key_idx: &[usize],
) -> Option<Result<Vec<Row>, DbError>> {
    let plan = plan_fast(sel, schema, key_idx)?;
    let mut agg = FastAgg::new(plan, key_idx.to_vec());
    for row in rows {
        agg.update(row);
    }
    Some(agg.finish())
}

fn aggregate_project(
    sel: &SelectStmt,
    schema: &Schema,
    rows: &[Row],
) -> Result<NamedRows, DbError> {
    // Group rows by the GROUP BY key.
    let key_idx: Result<Vec<usize>, DbError> = sel
        .group_by
        .iter()
        .map(|g| {
            schema
                .index_of(g)
                .ok_or_else(|| DbError::NoSuchColumn(g.clone()))
        })
        .collect();
    let key_idx = key_idx?;

    if let Some(fast) = try_fast_aggregate(sel, schema, rows, &key_idx) {
        return Ok((output_names(sel, schema), fast?));
    }

    let mut group_of: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<Vec<&Row>> = Vec::new();
    if key_idx.is_empty() {
        // One global group — present even with zero input rows, so that
        // `SELECT count(*) FROM empty` yields 0.
        groups.push(rows.iter().collect());
    } else {
        for r in rows {
            let key: String = key_idx
                .iter()
                .map(|i| encode_value(&r[*i]))
                .collect::<Vec<_>>()
                .join("\u{1}");
            let gi = *group_of.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(r);
        }
    }

    let columns = output_names(sel, schema);
    let null_row: Row = vec![Value::Null; schema.arity()];
    let mut out = Vec::with_capacity(groups.len());
    for g in &groups {
        let rep: &Row = g.first().copied().unwrap_or(&null_row);
        let ctx = RowCtx { schema, row: rep };
        let mut projected = Vec::with_capacity(columns.len());
        for item in &sel.items {
            match item {
                SelectItem::Star => projected.extend(rep.iter().cloned()),
                SelectItem::Expr { expr, .. } => {
                    let substituted = substitute_aggregates(expr, schema, g)?;
                    projected.push(eval(&substituted, &ctx)?);
                }
            }
        }
        out.push(projected);
    }
    Ok((columns, out))
}

/// Replace every aggregate call in `expr` with the literal aggregate value
/// computed over `group`, leaving a plain row expression behind.
fn substitute_aggregates(
    expr: &SqlExpr,
    schema: &Schema,
    group: &[&Row],
) -> Result<SqlExpr, DbError> {
    Ok(match expr {
        SqlExpr::Func { name, args, star } => {
            if let Some(kind) = AggKind::from_name(name) {
                if args.len() != 1 {
                    return Err(DbError::Type(format!(
                        "aggregate {name}() expects exactly one argument"
                    )));
                }
                let mut acc = Accumulator::new(kind);
                for r in group {
                    let v = eval(&args[0], &RowCtx { schema, row: r })?;
                    acc.update(&v);
                }
                SqlExpr::Lit(acc.finish().map_err(DbError::Type)?)
            } else {
                let new_args: Result<Vec<SqlExpr>, DbError> = args
                    .iter()
                    .map(|a| substitute_aggregates(a, schema, group))
                    .collect();
                SqlExpr::Func {
                    name: name.clone(),
                    args: new_args?,
                    star: *star,
                }
            }
        }
        SqlExpr::Unary(op, x) => {
            SqlExpr::Unary(*op, Box::new(substitute_aggregates(x, schema, group)?))
        }
        SqlExpr::Binary(op, l, r) => SqlExpr::Binary(
            op,
            Box::new(substitute_aggregates(l, schema, group)?),
            Box::new(substitute_aggregates(r, schema, group)?),
        ),
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => SqlExpr::InList {
            expr: Box::new(substitute_aggregates(expr, schema, group)?),
            list: list
                .iter()
                .map(|e| substitute_aggregates(e, schema, group))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        SqlExpr::IsNull { expr, negated } => SqlExpr::IsNull {
            expr: Box::new(substitute_aggregates(expr, schema, group)?),
            negated: *negated,
        },
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => SqlExpr::Like {
            expr: Box::new(substitute_aggregates(expr, schema, group)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        other => other.clone(),
    })
}

fn output_names(sel: &SelectStmt, schema: &Schema) -> Vec<String> {
    let mut names = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Star => names.extend(schema.names()),
            SelectItem::Expr { expr, alias } => names.push(match alias {
                Some(a) => a.clone(),
                None => expr.to_string_for_order(),
            }),
        }
    }
    names
}

/// Canonical encoding used for grouping in the general expression path.
/// Numeric values encode by their f64 image so `1` and `1.0` collide,
/// matching `Value::sql_eq` (and [`ValueKey`], the hashable equivalent).
pub(crate) fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "\u{0}null".to_string(),
        Value::Text(s) => format!("t:{s}"),
        Value::Bool(b) => format!("b:{b}"),
        other => {
            let f = other.as_f64().unwrap_or(f64::NAN);
            let f = if f == 0.0 { 0.0 } else { f }; // normalize -0.0
            let f = if f.is_nan() { f64::NAN } else { f }; // canonical NaN
            format!("n:{}", f.to_bits())
        }
    }
}

/// Allocation-light binary encoding with the same equivalence classes as
/// [`encode_value`], used for hot grouping paths.
fn encode_value_bytes(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Text(s) => {
            out.push(2);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(3);
            out.push(u8::from(*b));
        }
        other => {
            let f = other.as_f64().unwrap_or(f64::NAN);
            let f = if f == 0.0 { 0.0 } else { f }; // normalize -0.0
            let f = if f.is_nan() { f64::NAN } else { f }; // canonical NaN
            out.push(1);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
    }
}

/// Schema of a result set inferred from its first row — used when a result
/// is materialised into a (temp) table. Columns with no observed value
/// default to FLOAT.
pub fn infer_schema(columns: &[String], rows: &[Row]) -> Result<Schema, DbError> {
    let mut cols = Vec::with_capacity(columns.len());
    for (i, name) in columns.iter().enumerate() {
        let dtype = rows
            .iter()
            .find_map(|r| r.get(i).and_then(Value::data_type))
            .unwrap_or(DataType::Float);
        cols.push(Column::new(name, dtype));
    }
    Schema::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Engine {
        let e = Engine::new();
        e.execute("CREATE TABLE t (id INTEGER, grp TEXT, v FLOAT)")
            .unwrap();
        e.execute(
            "INSERT INTO t VALUES (1,'a',10.0),(2,'a',20.0),(3,'b',30.0),(4,'b',50.0),(5,'c',NULL)",
        )
        .unwrap();
        e
    }

    #[test]
    fn star_projection() {
        let rs = db().query("SELECT * FROM t WHERE id = 3").unwrap();
        assert_eq!(rs.column_names(), &["id", "grp", "v"]);
        assert_eq!(
            rs.rows()[0],
            vec![Value::Int(3), Value::Text("b".into()), Value::Float(30.0)]
        );
    }

    #[test]
    fn expression_projection_with_alias() {
        let rs = db()
            .query("SELECT v * 2 AS dbl, id FROM t WHERE id = 1")
            .unwrap();
        assert_eq!(rs.column_names(), &["dbl", "id"]);
        assert_eq!(rs.rows()[0][0], Value::Float(20.0));
    }

    #[test]
    fn group_by_with_expression_on_aggregate() {
        let rs = db()
            .query("SELECT grp, avg(v) + 1 AS a1 FROM t GROUP BY grp ORDER BY grp")
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(
            rs.rows()[0],
            vec![Value::Text("a".into()), Value::Float(16.0)]
        );
        assert_eq!(
            rs.rows()[1],
            vec![Value::Text("b".into()), Value::Float(41.0)]
        );
        // group 'c' has only a NULL value -> avg NULL -> NULL + 1 = NULL
        assert_eq!(rs.rows()[2], vec![Value::Text("c".into()), Value::Null]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let e = Engine::new();
        e.execute("CREATE TABLE empty (x INTEGER)").unwrap();
        let rs = e.query("SELECT count(*), max(x) FROM empty").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn count_star_vs_count_column() {
        let rs = db().query("SELECT count(*), count(v) FROM t").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(5), Value::Int(4)]);
    }

    #[test]
    fn distinct_dedupes() {
        let rs = db()
            .query("SELECT DISTINCT grp FROM t ORDER BY grp")
            .unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn distinct_treats_int_float_equal() {
        let e = Engine::new();
        e.execute("CREATE TABLE m (k FLOAT)").unwrap();
        e.execute("INSERT INTO m VALUES (1.0), (1), (2)").unwrap();
        let rs = e.query("SELECT DISTINCT k FROM m").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let rs = db()
            .query("SELECT id FROM t ORDER BY id DESC LIMIT 2")
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(5));
        assert_eq!(rs.rows()[1][0], Value::Int(4));
    }

    #[test]
    fn order_by_position() {
        let rs = db()
            .query("SELECT grp, v FROM t WHERE v IS NOT NULL ORDER BY 2 DESC LIMIT 1")
            .unwrap();
        assert_eq!(rs.rows()[0][1], Value::Float(50.0));
    }

    #[test]
    fn order_by_aggregate_name() {
        let rs = db()
            .query("SELECT grp, sum(v) FROM t GROUP BY grp ORDER BY sum(v) DESC LIMIT 1")
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Text("b".into()));
    }

    #[test]
    fn nulls_sort_first() {
        let rs = db().query("SELECT v FROM t ORDER BY v").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Null);
    }

    #[test]
    fn select_without_from() {
        let e = Engine::new();
        let rs = e.query("SELECT 1 + 2 AS three, 'x' AS tag").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(3), Value::Text("x".into())]);
    }

    #[test]
    fn join_null_keys_never_match() {
        let e = Engine::new();
        e.execute("CREATE TABLE a (k INTEGER)").unwrap();
        e.execute("CREATE TABLE b (k INTEGER)").unwrap();
        e.execute("INSERT INTO a VALUES (1), (NULL)").unwrap();
        e.execute("INSERT INTO b VALUES (1), (NULL)").unwrap();
        let rs = e.query("SELECT a.k FROM a JOIN b ON a.k = b.k").unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn join_one_to_many() {
        let e = Engine::new();
        e.execute("CREATE TABLE runs (id INTEGER, host TEXT)")
            .unwrap();
        e.execute("CREATE TABLE vals (run INTEGER, v FLOAT)")
            .unwrap();
        e.execute("INSERT INTO runs VALUES (1,'h1'),(2,'h2')")
            .unwrap();
        e.execute("INSERT INTO vals VALUES (1,1.0),(1,2.0),(2,3.0)")
            .unwrap();
        let rs = e
            .query(
                "SELECT runs.host, sum(vals.v) FROM vals JOIN runs ON vals.run = runs.id \
                 GROUP BY runs.host ORDER BY runs.host",
            )
            .unwrap();
        assert_eq!(
            rs.rows()[0],
            vec![Value::Text("h1".into()), Value::Float(3.0)]
        );
        assert_eq!(
            rs.rows()[1],
            vec![Value::Text("h2".into()), Value::Float(3.0)]
        );
    }

    #[test]
    fn join_build_side_does_not_change_output() {
        // Joined side larger than accumulated side → build flips to the
        // accumulated side; output must stay accumulated-major.
        let e = Engine::new();
        e.execute("CREATE TABLE small (k INTEGER)").unwrap();
        e.execute("CREATE TABLE big (k INTEGER, tag TEXT)").unwrap();
        e.execute("INSERT INTO small VALUES (2), (1)").unwrap();
        e.execute("INSERT INTO big VALUES (1,'x1'),(2,'y1'),(1,'x2'),(3,'z'),(2,'y2'),(9,'w')")
            .unwrap();
        let rs = e
            .query("SELECT small.k, big.tag FROM small JOIN big ON small.k = big.k")
            .unwrap();
        let got: Vec<(i64, String)> = rs
            .rows()
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_str().unwrap().to_string()))
            .collect();
        assert_eq!(
            got,
            vec![
                (2, "y1".into()),
                (2, "y2".into()),
                (1, "x1".into()),
                (1, "x2".into())
            ]
        );
        let reference = e
            .query_reference("SELECT small.k, big.tag FROM small JOIN big ON small.k = big.k")
            .unwrap();
        assert_eq!(rs, reference);
    }

    #[test]
    fn grouping_treats_int_float_equal() {
        let e = Engine::new();
        e.execute("CREATE TABLE m (k FLOAT, v INTEGER)").unwrap();
        e.execute("INSERT INTO m VALUES (1.0, 10), (1, 20), (2, 5)")
            .unwrap();
        let rs = e
            .query("SELECT k, count(*) FROM m GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows()[0][1], Value::Int(2));
    }

    #[test]
    fn infer_schema_from_rows() {
        let cols = vec!["a".to_string(), "b".to_string()];
        let rows = vec![
            vec![Value::Null, Value::Text("x".into())],
            vec![Value::Int(1), Value::Text("y".into())],
        ];
        let s = infer_schema(&cols, &rows).unwrap();
        assert_eq!(s.columns[0].dtype, DataType::Int);
        assert_eq!(s.columns[1].dtype, DataType::Text);
    }

    #[test]
    fn derive_threshold_clamps_and_scales() {
        // Cheap rows / expensive spawn → high threshold, clamped at 64k.
        assert_eq!(derive_threshold(1_000_000, 1), 65_536);
        // Expensive rows → low threshold, clamped at 1024.
        assert_eq!(derive_threshold(100, 1_000), 1024);
        // In between: 4 * 20_000 / 5 = 16_000.
        assert_eq!(derive_threshold(20_000, 5), 16_000);
        // A zero per-row measurement must not divide by zero.
        assert_eq!(derive_threshold(10_000, 0), 40_000);
    }

    #[test]
    fn explain_reports_access_path() {
        let e = db();
        e.execute("CREATE INDEX ix_id ON t (id)").unwrap();
        let rs = e.query("EXPLAIN SELECT * FROM t WHERE id = 3").unwrap();
        assert_eq!(rs.column_names(), &["plan"]);
        let text: Vec<String> = rs
            .rows()
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            text,
            vec![
                "Project: *".to_string(),
                "Filter: (id = 3)".to_string(),
                "Scan t access=point-lookup column=id est_rows=1.0".to_string(),
            ]
        );

        let rs = e
            .query("EXPLAIN ANALYZE SELECT * FROM t WHERE id = 3")
            .unwrap();
        let last = rs.rows().last().unwrap()[0].as_str().unwrap().to_string();
        assert_eq!(last, "Rows returned: 1");
        let scan = rs.rows()[rs.len() - 2][0].as_str().unwrap().to_string();
        assert!(scan.ends_with("actual_rows=1"), "{scan}");
    }

    #[test]
    fn unknown_group_column_errors() {
        assert!(matches!(
            db().query("SELECT count(*) FROM t GROUP BY zzz"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn unknown_order_column_errors() {
        assert!(matches!(
            db().query("SELECT id FROM t ORDER BY zzz"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    fn indexed_db() -> Engine {
        let e = db();
        e.execute("CREATE INDEX ix_id ON t (id)").unwrap();
        e
    }

    #[test]
    fn index_point_lookup_matches_scan() {
        let idx = indexed_db();
        let plain = db();
        for q in [
            "SELECT * FROM t WHERE id = 3",
            "SELECT * FROM t WHERE 3 = id",
            "SELECT grp FROM t WHERE id = 4 AND v > 10",
            "SELECT count(*) FROM t WHERE id = 1",
            "SELECT * FROM t WHERE id = 99",
            "SELECT * FROM t WHERE id = NULL",
            "SELECT * FROM t WHERE id = 'x'",
            "SELECT * FROM t WHERE id = 3.0",
            "SELECT * FROM t WHERE id = 3.5",
        ] {
            assert_eq!(idx.query(q).unwrap(), plain.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn index_lookup_on_aggregation() {
        let idx = indexed_db();
        let rs = idx
            .query("SELECT count(*), max(v) FROM t WHERE id = 3")
            .unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(1), Value::Float(30.0)]);
        // No match still yields the global group.
        let rs = idx
            .query("SELECT count(*), max(v) FROM t WHERE id = 42")
            .unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn index_stays_correct_after_mutations() {
        let e = indexed_db();
        e.execute("INSERT INTO t VALUES (3, 'z', 99.0)").unwrap();
        let rs = e.query("SELECT count(*) FROM t WHERE id = 3").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(2));
        e.execute("DELETE FROM t WHERE grp = 'b'").unwrap();
        let rs = e.query("SELECT count(*) FROM t WHERE id = 3").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(1));
        e.execute("UPDATE t SET id = 7 WHERE id = 3").unwrap();
        let rs = e.query("SELECT grp FROM t WHERE id = 7").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Text("z".into()));
    }

    #[test]
    fn most_selective_index_wins() {
        use crate::sql::{self, Stmt};
        // 1000 rows: `flag` has 2 distinct values (500 rows each), `id` has
        // 1000 distinct values (1 row each). Both are indexed; the planner
        // must probe `id`, not the first conjunct's `flag`.
        let e = Engine::new();
        e.execute("CREATE TABLE big (id INTEGER, flag INTEGER, v FLOAT)")
            .unwrap();
        let mut rows = Vec::new();
        for i in 0..1000 {
            rows.push(vec![
                Value::Int(i),
                Value::Int(i % 2),
                Value::Float(i as f64),
            ]);
        }
        e.insert_rows("big", rows).unwrap();
        e.execute("CREATE INDEX ix_flag ON big (flag)").unwrap();
        e.execute("CREATE INDEX ix_id ON big (id)").unwrap();

        let plan = |q: &str| -> Option<Vec<usize>> {
            let Stmt::Select(sel) = sql::parse_statement(q).unwrap() else {
                unreachable!()
            };
            let t = e.table("big").unwrap();
            let guard = t.read();
            plan_point_lookup(sel.where_clause.as_ref(), &guard)
        };

        // flag listed first, id second: still 1 candidate, not 500.
        let c = plan("SELECT v FROM big WHERE flag = 1 AND id = 7").unwrap();
        assert_eq!(
            c,
            vec![7],
            "planner must pick the id index (1000 distinct keys)"
        );
        // Either order.
        let c = plan("SELECT v FROM big WHERE id = 8 AND flag = 0").unwrap();
        assert_eq!(c, vec![8]);
        // Single applicable index still works.
        let c = plan("SELECT v FROM big WHERE flag = 1").unwrap();
        assert_eq!(c.len(), 500);
        // A type-impossible conjunct anywhere falsifies the AND chain.
        let c = plan("SELECT v FROM big WHERE flag = 1 AND id = 'nope'").unwrap();
        assert!(c.is_empty());
        // And the query results agree with a full scan either way.
        let rs = e
            .query("SELECT v FROM big WHERE flag = 1 AND id = 7")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Float(7.0)]]);
    }

    fn plan_on(e: &Engine, table: &str, q: &str) -> Option<Vec<usize>> {
        use crate::sql::{self, Stmt};
        let Stmt::Select(sel) = sql::parse_statement(q).unwrap() else {
            unreachable!()
        };
        let t = e.table(table).unwrap();
        let guard = t.read();
        plan_point_lookup(sel.where_clause.as_ref(), &guard)
    }

    fn range_db() -> Engine {
        let e = Engine::new();
        e.execute("CREATE TABLE r (id INTEGER, v FLOAT, tag TEXT)")
            .unwrap();
        let mut rows = Vec::new();
        for i in 0..100 {
            rows.push(vec![
                Value::Int(i),
                Value::Float(i as f64 / 2.0),
                Value::Text(format!("t{}", i % 10)),
            ]);
        }
        e.insert_rows("r", rows).unwrap();
        e.execute("CREATE ORDERED INDEX ix_id ON r (id)").unwrap();
        e
    }

    #[test]
    fn in_list_probes_index() {
        let e = range_db();
        let c = plan_on(&e, "r", "SELECT * FROM r WHERE id IN (3, 1, 99, 1, 200)").unwrap();
        assert_eq!(
            c,
            vec![1, 3, 99],
            "positions unioned, deduped, in row order"
        );
        // Unmatchable and NULL elements are dropped from the probe set.
        let c = plan_on(&e, "r", "SELECT * FROM r WHERE id IN (5, 'x', NULL)").unwrap();
        assert_eq!(c, vec![5]);
        // An all-impossible IN falsifies the AND chain.
        let c = plan_on(&e, "r", "SELECT * FROM r WHERE id IN ('x', NULL)").unwrap();
        assert!(c.is_empty());
        // NOT IN and non-literal elements take the scan path.
        assert!(plan_on(&e, "r", "SELECT * FROM r WHERE id NOT IN (1, 2)").is_none());
        assert!(plan_on(&e, "r", "SELECT * FROM r WHERE id IN (1, v)").is_none());
        // Results agree with the scan either way.
        let rs = e
            .query("SELECT id FROM r WHERE id IN (3, 1, 99, 200) ORDER BY id")
            .unwrap();
        let reference = e
            .query_reference("SELECT id FROM r WHERE id IN (3, 1, 99, 200) ORDER BY id")
            .unwrap();
        assert_eq!(rs, reference);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn range_conjuncts_use_ordered_index() {
        let e = range_db();
        // Single-sided ranges.
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id < 3").unwrap(),
            vec![0, 1, 2]
        );
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id <= 2").unwrap(),
            vec![0, 1, 2]
        );
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id > 97").unwrap(),
            vec![98, 99]
        );
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id >= 98").unwrap(),
            vec![98, 99]
        );
        // Literal-on-the-left flips the operator.
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE 97 < id").unwrap(),
            vec![98, 99]
        );
        // BETWEEN-shaped pair merges into one window.
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id >= 10 AND id < 13").unwrap(),
            vec![10, 11, 12]
        );
        // Conflicting bounds collapse to empty without panicking.
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id > 50 AND id < 10").unwrap(),
            Vec::<usize>::new()
        );
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id > 10 AND id < 10").unwrap(),
            Vec::<usize>::new()
        );
        // A NULL bound falsifies the chain; a cross-type bound is left to
        // the residual filter (constant over the column).
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id < NULL").unwrap(),
            Vec::<usize>::new()
        );
        assert!(plan_on(&e, "r", "SELECT * FROM r WHERE id < 'x'").is_none());
        // Fractional bounds work on integer columns (key space is f64).
        assert_eq!(
            plan_on(&e, "r", "SELECT * FROM r WHERE id < 2.5").unwrap(),
            vec![0, 1, 2]
        );
        // A hash index never serves ranges.
        let h = Engine::new();
        h.execute("CREATE TABLE r (id INTEGER)").unwrap();
        h.execute("INSERT INTO r VALUES (1), (2)").unwrap();
        h.execute("CREATE INDEX ix ON r (id)").unwrap();
        assert!(plan_on(&h, "r", "SELECT * FROM r WHERE id < 2").is_none());
    }

    #[test]
    fn planner_prefers_cheapest_access_path() {
        let e = range_db();
        // Eq (1 row) beats the range (est rows/3) and the IN (3 rows).
        let c = plan_on(
            &e,
            "r",
            "SELECT * FROM r WHERE id IN (1,2,3) AND id = 2 AND id < 50",
        )
        .unwrap();
        assert_eq!(c, vec![2]);
        // IN with fewer estimated rows beats the range.
        let c = plan_on(&e, "r", "SELECT * FROM r WHERE id IN (1, 2) AND id < 50").unwrap();
        assert_eq!(c, vec![1, 2]);
        // Range query agrees with the reference end to end.
        let q = "SELECT id, v FROM r WHERE id >= 10 AND id < 20 AND v > 5.4 ORDER BY id";
        assert_eq!(e.query(q).unwrap(), e.query_reference(q).unwrap());
    }

    #[test]
    fn unknown_column_errors_despite_index() {
        // names_resolve() must keep the scan's error behavior even when an
        // indexed conjunct would yield zero candidates: a scan evaluates
        // `zzz` on every row before short-circuiting on `id = 99`.
        let e = indexed_db();
        assert!(matches!(
            e.query("SELECT * FROM t WHERE zzz = 1 AND id = 99"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    /// Row-layout and columnar twins over the same data, for byte-identical
    /// result checks across the vectorized path.
    fn twin_dbs() -> (Engine, Engine) {
        let row = Engine::new();
        let col = Engine::new();
        let cols = "(id INTEGER, fs TEXT, bw FLOAT, ok BOOLEAN, at TIMESTAMP)";
        row.execute(&format!("CREATE TABLE runs {cols}")).unwrap();
        col.execute(&format!("CREATE TABLE runs {cols} USING COLUMNAR"))
            .unwrap();
        let mut vals = Vec::new();
        for i in 0..200i64 {
            let fs = match i % 4 {
                0 => "'ufs'".to_string(),
                1 => "'nfs'".to_string(),
                2 => "'pvfs'".to_string(),
                _ => "NULL".to_string(),
            };
            let bw = if i % 7 == 0 {
                "NULL".to_string()
            } else {
                format!("{}.25", i * 3)
            };
            let ok = if i % 2 == 0 { "TRUE" } else { "FALSE" };
            vals.push(format!(
                "({i}, {fs}, {bw}, {ok}, '2026-01-01 00:00:{:02}')",
                i % 60
            ));
        }
        let stmt = format!("INSERT INTO runs VALUES {}", vals.join(", "));
        row.execute(&stmt).unwrap();
        col.execute(&stmt).unwrap();
        (row, col)
    }

    const VEC_CORPUS: &[&str] = &[
        "SELECT * FROM runs WHERE fs = 'ufs'",
        "SELECT id, bw FROM runs WHERE bw > 100.0 AND bw <= 400.0",
        "SELECT id FROM runs WHERE fs <> 'nfs' AND ok = TRUE",
        "SELECT id FROM runs WHERE fs < 'pvfs'",
        "SELECT id FROM runs WHERE fs LIKE 'u%'",
        "SELECT id FROM runs WHERE fs NOT LIKE '%fs'",
        "SELECT id FROM runs WHERE fs IN ('ufs', 'pvfs', 'zfs')",
        "SELECT id FROM runs WHERE id IN (3, 5, 8, 999)",
        "SELECT id FROM runs WHERE id NOT IN (3, 5, 8)",
        "SELECT id FROM runs WHERE bw IS NULL",
        "SELECT id FROM runs WHERE fs IS NOT NULL AND bw IS NOT NULL",
        "SELECT id FROM runs WHERE bw = NULL",
        "SELECT id FROM runs WHERE id = 'nope'",
        "SELECT id FROM runs WHERE fs > 5",
        "SELECT count(*) FROM runs WHERE fs = 'ufs'",
        "SELECT fs, count(*), sum(bw), avg(bw), min(bw), max(bw) FROM runs GROUP BY fs",
        "SELECT fs, avg(bw) FROM runs WHERE bw > 50.0 GROUP BY fs",
        "SELECT ok, count(*) FROM runs GROUP BY ok",
        "SELECT fs, ok, count(*) FROM runs GROUP BY fs, ok",
        "SELECT min(at), max(at) FROM runs WHERE fs = 'nfs'",
        "SELECT avg(bw) * 2 FROM runs WHERE fs = 'ufs'",
        "SELECT id * 2, bw FROM runs WHERE fs = 'pvfs'",
        "SELECT id FROM runs WHERE fs = 'ufs' OR fs = 'nfs'",
        "SELECT id FROM runs WHERE NOT (fs = 'ufs')",
        "SELECT DISTINCT fs FROM runs WHERE bw IS NOT NULL ORDER BY fs",
        "SELECT fs, avg(bw) FROM runs GROUP BY fs ORDER BY 2 DESC LIMIT 2",
    ];

    #[test]
    fn vectorized_path_matches_row_results() {
        let (row, col) = twin_dbs();
        for q in VEC_CORPUS {
            let a = row.query(q).unwrap();
            let b = col.query(q).unwrap();
            assert_eq!(a.column_names(), b.column_names(), "columns differ: {q}");
            assert_eq!(a.rows(), b.rows(), "rows differ: {q}");
        }
    }

    #[test]
    fn vectorized_path_respects_indexes() {
        let (row, col) = twin_dbs();
        for e in [&row, &col] {
            e.execute("CREATE INDEX ix_fs ON runs (fs)").unwrap();
            e.execute("CREATE ORDERED INDEX ox_id ON runs (id)")
                .unwrap();
        }
        for q in [
            "SELECT id, bw FROM runs WHERE fs = 'ufs' AND bw > 60.0",
            "SELECT fs, count(*) FROM runs WHERE id >= 20 AND id < 40 GROUP BY fs",
            "SELECT id FROM runs WHERE id IN (1, 2, 3) AND ok = FALSE",
        ] {
            let a = row.query(q).unwrap();
            let b = col.query(q).unwrap();
            assert_eq!(a.rows(), b.rows(), "rows differ: {q}");
        }
    }

    #[test]
    fn explain_reports_columnar_layout_and_strategy() {
        let (_, col) = twin_dbs();
        let text = |q: &str| {
            col.query(q)
                .unwrap()
                .rows()
                .iter()
                .map(|r| r[0].to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        // Fast aggregation over a dictionary group key: fully vectorized.
        let t = text("EXPLAIN SELECT fs, avg(bw) FROM runs WHERE bw > 10.0 GROUP BY fs");
        assert!(t.contains("layout=columnar vectorized=full"), "{t}");
        // OR doesn't vectorize: the row path serves the query.
        let t = text("EXPLAIN SELECT id FROM runs WHERE fs = 'ufs' OR fs = 'nfs'");
        assert!(t.contains("layout=columnar vectorized=none"), "{t}");
        // Expression projection: selection vectorizes, projection doesn't.
        let t = text("EXPLAIN SELECT id + 1 FROM runs WHERE fs = 'ufs'");
        assert!(t.contains("layout=columnar vectorized=partial"), "{t}");
        // ANALYZE still ends the scan line with the actual row count.
        let t = text("EXPLAIN ANALYZE SELECT id FROM runs WHERE fs = 'ufs'");
        let scan = t
            .lines()
            .find(|l| l.starts_with("Scan"))
            .expect("scan line");
        assert!(scan.contains(" vectorized=full "), "{scan}");
        assert!(scan.contains(" actual_rows=200"), "{scan}");
        // Row tables are unannotated.
        let (row, _) = twin_dbs();
        let t = row
            .query("EXPLAIN SELECT id FROM runs WHERE fs = 'ufs'")
            .unwrap()
            .rows()
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!t.contains("layout="), "{t}");
    }

    #[test]
    fn dictionary_group_order_is_first_seen() {
        let (row, col) = twin_dbs();
        // No ORDER BY: group order must be first-seen row order on both
        // layouts (dictionary-code grouping included).
        let q = "SELECT fs, count(*) FROM runs GROUP BY fs";
        assert_eq!(row.query(q).unwrap().rows(), col.query(q).unwrap().rows());
    }
}
