//! Error type shared across the engine.

use std::fmt;

/// Any failure reported by the database engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text could not be tokenized/parsed.
    Parse(String),
    /// A named table does not exist.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A referenced column does not exist (or is ambiguous).
    NoSuchColumn(String),
    /// A value did not fit the column type, or arity mismatched.
    Type(String),
    /// Anything else (planner/executor invariant violations).
    Execution(String),
    /// Durability-layer I/O failure (WAL append/recovery, checkpoint).
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "SQL parse error: {m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DbError::NoSuchTable("x".into()).to_string().contains("x"));
        assert!(DbError::Parse("boom".into()).to_string().contains("boom"));
        assert!(DbError::NoSuchColumn("c".into()).to_string().contains("c"));
    }
}
