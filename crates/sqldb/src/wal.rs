//! Write-ahead log: append-only, checksummed statement log with group
//! commit, crash recovery, and deterministic fault injection.
//!
//! The SQL-dump persistence of [`crate::Engine`] writes the whole catalog
//! at once — a crash mid-import loses every statement since the last dump.
//! The WAL closes that hole: every mutating statement is framed as
//!
//! ```text
//! [ len: u32 LE | seq: u64 LE | crc32: u32 LE | payload (len bytes) ]
//! ```
//!
//! and appended to the log *before* the engine applies it. The CRC covers
//! the sequence number and the payload, so a frame that was torn by a
//! crash, bit-flipped, or mis-positioned never validates. On open,
//! recovery scans the log from the last checkpoint, replays every valid
//! frame, and physically truncates the first torn or corrupt tail frame —
//! a half-written statement is dropped entirely, never half-applied.
//!
//! Durability cost is tunable per [`SyncPolicy`]: `Always` fsyncs every
//! frame, `Group` batches fsyncs inside a group-commit window (the
//! default), `Off` leaves flushing to the OS. A *checkpoint* writes the
//! ordinary SQL dump (atomically, via tmp + rename) and then compacts the
//! log back to its 16-byte header; sequence numbers keep counting across
//! checkpoints so a stale pre-checkpoint log segment can never be mistaken
//! for a fresh one.
//!
//! The [`IoFailpoint`] hook makes crashes deterministic for tests: a torn
//! write at byte N, a clean crash after k frames, or a short read during
//! recovery. The crash-consistency suite (`tests/wal_crash.rs` and the
//! workspace-level `crash_recovery.rs`) kills imports at randomized points
//! through these failpoints and asserts that the reopened database equals
//! a reference statement prefix.
#![warn(missing_docs)]

use crate::error::DbError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic bytes opening every WAL file.
const MAGIC: &[u8; 4] = b"PBWL";
/// On-disk format version.
const VERSION: u32 = 1;
/// Header: magic (4) + version (4) + start_seq (8).
const HEADER_LEN: u64 = 16;
/// Frame header: len (4) + seq (8) + crc (4).
const FRAME_HEADER_LEN: usize = 16;
/// Upper bound on a single frame payload — recovery treats anything larger
/// as a corrupt length field rather than attempting the allocation.
const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// When the log forces its buffered frames to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended frame — maximum durability, slowest.
    Always,
    /// Group commit: frames are written immediately but fsync is issued at
    /// most once per window, amortizing the sync cost over every statement
    /// that arrived inside it.
    Group(Duration),
    /// Never fsync explicitly; the OS flushes when it pleases.
    Off,
}

impl SyncPolicy {
    /// The default group-commit window (5 ms).
    pub fn group_default() -> Self {
        SyncPolicy::Group(Duration::from_millis(5))
    }
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::group_default()
    }
}

/// Options controlling a [`Wal`]'s durability and fault behavior.
#[derive(Debug, Clone, Default)]
pub struct WalOptions {
    /// fsync policy.
    pub sync: SyncPolicy,
    /// Fault-injection hook; [`IoFailpoint::none`] in production.
    pub failpoint: Arc<IoFailpoint>,
}

impl WalOptions {
    /// Options with the given sync policy and no fault injection.
    pub fn with_sync(sync: SyncPolicy) -> Self {
        WalOptions {
            sync,
            failpoint: Arc::new(IoFailpoint::none()),
        }
    }
}

/// Deterministic I/O fault injection for crash-consistency tests.
///
/// A failpoint wraps the log file's reads and writes. Once *tripped* the
/// WAL behaves like a killed process: every further append fails with
/// [`DbError::Io`], and whatever bytes reached the file stay exactly as
/// they were — including a torn, partially-written tail frame.
///
/// Beyond the WAL's own I/O, a failpoint also models *whole-node* death
/// for the replication subsystem ([`crate::repl`]): [`IoFailpoint::kill`]
/// drops a node outright, [`IoFailpoint::arm_ship_kill`] kills a primary
/// in the middle of shipping frames to its replicas, and
/// [`IoFailpoint::arm_promotion_kill`] kills a replica while it replays
/// its unapplied tail during promotion.
#[derive(Debug)]
pub struct IoFailpoint {
    /// Bytes still allowed to reach the file; `u64::MAX` = unlimited.
    write_budget: AtomicU64,
    /// Complete frames still allowed; `u64::MAX` = unlimited.
    frame_budget: AtomicU64,
    /// Bytes recovery is allowed to read back; `u64::MAX` = unlimited
    /// (models a short read of a truncated or still-dirty file).
    read_budget: AtomicU64,
    /// Frames still allowed to ship to replicas; `u64::MAX` = unlimited.
    ship_budget: AtomicU64,
    /// Die inside checkpoint, after the dump rename but before the log is
    /// compacted — the window where dump and log both hold every frame.
    compact_crash: AtomicBool,
    /// Die while replaying the unapplied tail during replica promotion.
    promote_crash: AtomicBool,
    /// Tripped: the simulated process is dead.
    crashed: AtomicBool,
}

impl Default for IoFailpoint {
    /// Defaults to a failpoint that never fires (unlimited budgets).
    fn default() -> Self {
        IoFailpoint::none()
    }
}

impl IoFailpoint {
    /// A failpoint that never fires.
    pub fn none() -> Self {
        IoFailpoint {
            write_budget: AtomicU64::new(u64::MAX),
            frame_budget: AtomicU64::new(u64::MAX),
            read_budget: AtomicU64::new(u64::MAX),
            ship_budget: AtomicU64::new(u64::MAX),
            compact_crash: AtomicBool::new(false),
            promote_crash: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
        }
    }

    /// Crash with a torn write: the append that would push the total bytes
    /// written past `bytes` is cut short mid-frame, then the failpoint
    /// trips.
    pub fn torn_write_after(bytes: u64) -> Self {
        let fp = IoFailpoint::none();
        fp.write_budget.store(bytes, Ordering::SeqCst);
        fp
    }

    /// Crash cleanly after `frames` complete frames have been appended.
    pub fn crash_after_frames(frames: u64) -> Self {
        let fp = IoFailpoint::none();
        fp.frame_budget.store(frames, Ordering::SeqCst);
        if frames == 0 {
            fp.crashed.store(true, Ordering::SeqCst);
        }
        fp
    }

    /// Make recovery see only the first `bytes` bytes of the log (a short
    /// read); everything past it looks like a torn tail.
    pub fn short_read_after(bytes: u64) -> Self {
        let fp = IoFailpoint::none();
        fp.read_budget.store(bytes, Ordering::SeqCst);
        fp
    }

    /// Crash inside the next checkpoint, after the new dump has been
    /// renamed into place but before the log is compacted — the recovery
    /// path must then *not* replay frames the dump already reflects.
    pub fn crash_before_compact() -> Self {
        let fp = IoFailpoint::none();
        fp.compact_crash.store(true, Ordering::SeqCst);
        fp
    }

    /// Crash cleanly after `frames` more frames have been *shipped* to
    /// replicas — a primary dying mid-shipment, after some replicas got a
    /// frame the rest never saw.
    pub fn kill_after_shipped_frames(frames: u64) -> Self {
        let fp = IoFailpoint::none();
        fp.arm_ship_kill(frames);
        fp
    }

    /// Crash while a promotion replays this node's unapplied tail.
    pub fn crash_during_promotion() -> Self {
        let fp = IoFailpoint::none();
        fp.arm_promotion_kill();
        fp
    }

    /// Arm [`IoFailpoint::kill_after_shipped_frames`] on an existing
    /// failpoint (e.g. one already wired into a running cluster node).
    pub fn arm_ship_kill(&self, frames: u64) {
        self.ship_budget.store(frames, Ordering::SeqCst);
        if frames == 0 {
            self.crashed.store(true, Ordering::SeqCst);
        }
    }

    /// Arm [`IoFailpoint::crash_during_promotion`] on an existing
    /// failpoint.
    pub fn arm_promotion_kill(&self) {
        self.promote_crash.store(true, Ordering::SeqCst);
    }

    /// Arm [`IoFailpoint::crash_before_compact`] on an existing failpoint
    /// (e.g. one already wired into a running cluster node).
    pub fn arm_compact_kill(&self) {
        self.compact_crash.store(true, Ordering::SeqCst);
    }

    /// Whole-node kill: trip the crash flag immediately. Every path guarded
    /// by this failpoint — appends, shipping, fetches routed through a
    /// cluster that consults it — fails from here on.
    pub fn kill(&self) {
        self.crashed.store(true, Ordering::SeqCst);
    }

    /// Has the simulated crash happened?
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Clear the crash state and all budgets (the "process restart" before
    /// reopening the log in a test).
    pub fn reset(&self) {
        self.write_budget.store(u64::MAX, Ordering::SeqCst);
        self.frame_budget.store(u64::MAX, Ordering::SeqCst);
        self.read_budget.store(u64::MAX, Ordering::SeqCst);
        self.ship_budget.store(u64::MAX, Ordering::SeqCst);
        self.compact_crash.store(false, Ordering::SeqCst);
        self.promote_crash.store(false, Ordering::SeqCst);
        self.crashed.store(false, Ordering::SeqCst);
    }

    pub(crate) fn check_alive(&self) -> Result<(), DbError> {
        if self.is_crashed() {
            return Err(DbError::Io(
                "simulated crash: write-ahead log is gone".into(),
            ));
        }
        Ok(())
    }

    /// Account one frame shipped to replicas; trips the crash flag (and
    /// errors) when the ship budget runs out — the primary dies with the
    /// shipment half delivered.
    pub(crate) fn admit_ship(&self) -> Result<(), DbError> {
        self.check_alive()?;
        let budget = self.ship_budget.load(Ordering::SeqCst);
        if budget == u64::MAX {
            return Ok(());
        }
        if budget == 0 {
            self.crashed.store(true, Ordering::SeqCst);
            return Err(DbError::Io(
                "simulated crash: primary killed mid-shipment".into(),
            ));
        }
        self.ship_budget.store(budget - 1, Ordering::SeqCst);
        Ok(())
    }

    /// Trip the crash flag if a kill was armed for the promotion replay.
    pub(crate) fn admit_promotion(&self) -> Result<(), DbError> {
        self.check_alive()?;
        if self.promote_crash.swap(false, Ordering::SeqCst) {
            self.crashed.store(true, Ordering::SeqCst);
            return Err(DbError::Io(
                "simulated crash: replica killed mid-promotion".into(),
            ));
        }
        Ok(())
    }

    /// How many of `want` bytes the next write may really deliver; trips
    /// the crash flag when the budget is exceeded.
    fn admit_write(&self, want: u64) -> u64 {
        let budget = self.write_budget.load(Ordering::SeqCst);
        if budget == u64::MAX {
            return want;
        }
        let allowed = want.min(budget);
        self.write_budget.store(budget - allowed, Ordering::SeqCst);
        if allowed < want {
            self.crashed.store(true, Ordering::SeqCst);
        }
        allowed
    }

    /// Account one complete frame; trips the crash flag when the frame
    /// budget is used up.
    fn admit_frame(&self) {
        let budget = self.frame_budget.load(Ordering::SeqCst);
        if budget == u64::MAX {
            return;
        }
        let left = budget.saturating_sub(1);
        self.frame_budget.store(left, Ordering::SeqCst);
        if left == 0 {
            self.crashed.store(true, Ordering::SeqCst);
        }
    }

    /// Trip the crash flag if a kill was armed between the checkpoint's
    /// dump rename and the log compaction.
    fn admit_compact(&self) -> Result<(), DbError> {
        if self.compact_crash.swap(false, Ordering::SeqCst) {
            self.crashed.store(true, Ordering::SeqCst);
            return Err(DbError::Io(
                "simulated crash: killed after checkpoint dump, before log compaction".into(),
            ));
        }
        Ok(())
    }

    /// Clamp a recovery read to the read budget.
    fn clamp_read(&self, len: u64) -> u64 {
        let budget = self.read_budget.load(Ordering::SeqCst);
        if budget == u64::MAX {
            len
        } else {
            len.min(budget)
        }
    }
}

/// What recovery found when the log was opened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid frames replayed from the log.
    pub frames_replayed: u64,
    /// Valid frames *not* replayed because the checkpoint dump already
    /// reflected them — their sequence number is below the checkpoint
    /// sequence recorded in the dump (a crash between the dump rename and
    /// the log compaction leaves such frames behind).
    pub frames_skipped: u64,
    /// Bytes of torn/corrupt tail physically truncated.
    pub torn_bytes: u64,
    /// Replayed statements that failed to execute (they failed identically
    /// in the original run — replay reproduces the engine state exactly).
    pub replay_errors: u64,
    /// First sequence number of the current log segment (advances at every
    /// checkpoint compaction).
    pub start_seq: u64,
    /// Sequence number the next appended frame will carry.
    pub next_seq: u64,
}

/// The write-ahead log: an open, append-positioned log file.
///
/// Every append writes its frame to the file immediately; only the
/// *fsync* is deferred by the [`SyncPolicy`]. A plain process kill
/// therefore loses nothing the append call returned for (the OS page
/// cache still holds it); only a machine crash — or the simulated
/// [`IoFailpoint`] crash, which models one — can lose the tail written
/// since the last fsync.
pub struct Wal {
    file: File,
    path: PathBuf,
    opts: WalOptions,
    /// Scratch buffer the next frame is encoded into (reused across
    /// appends so the hot path never allocates).
    buf: Vec<u8>,
    /// Sequence number of the next frame.
    next_seq: u64,
    /// First seq of this segment (post-checkpoint).
    start_seq: u64,
    /// Frames appended since the last fsync.
    unsynced: u64,
    /// When the current group-commit window opened.
    window_open: Option<Instant>,
    /// Total frames currently in the log segment.
    frames: u64,
    /// Observer the log streams frames through; see [`FrameTap`].
    tap: Option<Arc<dyn FrameTap>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("opts", &self.opts)
            .field("next_seq", &self.next_seq)
            .field("start_seq", &self.start_seq)
            .field("unsynced", &self.unsynced)
            .field("frames", &self.frames)
            .field("tap", &self.tap.as_ref().map(|_| "FrameTap"))
            .finish_non_exhaustive()
    }
}

/// Observer of a [`Wal`]'s frame stream — the hook the replication
/// subsystem ([`crate::repl`]) uses to ship committed frames off-node.
///
/// The log calls [`FrameTap::on_frame`] after a frame has fully reached
/// the file (same ordering guarantee the engine gets: log first, then
/// everything else), [`FrameTap::on_commit`] right after an fsync makes
/// the written tail durable, and [`FrameTap::pre_compact`] before frames
/// are dropped from the segment — the tap's last chance to ship them.
/// Errors from any hook abort the surrounding operation.
pub trait FrameTap: Send + Sync {
    /// A frame reached the log file. `crc` is the frame's stored
    /// `frame_crc(seq, payload)`, so a shipping tap can forward and
    /// re-verify it without re-hashing.
    fn on_frame(&self, seq: u64, crc: u32, stmt: &str) -> Result<(), DbError>;

    /// The written tail was just fsynced — every frame passed to
    /// [`FrameTap::on_frame`] so far is durable on the primary.
    fn on_commit(&self) -> Result<(), DbError> {
        Ok(())
    }

    /// The log is about to drop every frame in the segment (checkpoint
    /// compaction). Returning an error aborts the compaction and keeps
    /// the frames in the log.
    fn pre_compact(&self) -> Result<(), DbError> {
        Ok(())
    }
}

impl Wal {
    /// Create a fresh, empty log at `path` (truncating any existing file),
    /// starting at sequence `start_seq`.
    pub fn create(path: &Path, opts: WalOptions, start_seq: u64) -> Result<Wal, DbError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", &e))?;
        write_header(&mut file, path, start_seq)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            opts,
            buf: Vec::new(),
            next_seq: start_seq,
            start_seq,
            unsynced: 0,
            window_open: None,
            frames: 0,
            tap: None,
        })
    }

    /// Open (or create) the log at `path`, scan and validate every frame,
    /// truncate any torn tail, and return the log positioned for appending
    /// plus the decoded statements in order. The caller replays the
    /// statements into its engine *before* attaching the log, so the
    /// replay itself is not re-logged.
    pub fn open_recover(
        path: &Path,
        opts: WalOptions,
    ) -> Result<(Wal, Vec<String>, RecoveryReport), DbError> {
        if !path.exists() {
            let wal = Wal::create(path, opts, 1)?;
            let report = RecoveryReport {
                start_seq: 1,
                next_seq: 1,
                ..RecoveryReport::default()
            };
            return Ok((wal, Vec::new(), report));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open", &e))?;
        let file_len = file.metadata().map_err(|e| io_err(path, "stat", &e))?.len();
        let readable = opts.failpoint.clamp_read(file_len);

        let mut bytes = vec![0u8; readable as usize];
        file.read_exact(&mut bytes)
            .map_err(|e| io_err(path, "read", &e))?;

        // Header: malformed/foreign files are refused rather than silently
        // truncated to nothing — a wrong path should be loud.
        if bytes.len() < HEADER_LEN as usize {
            // A torn header can only come from a crash during create();
            // rebuild an empty segment.
            let wal = Wal::create(path, opts, 1)?;
            let report = RecoveryReport {
                torn_bytes: readable,
                start_seq: 1,
                next_seq: 1,
                ..RecoveryReport::default()
            };
            return Ok((wal, Vec::new(), report));
        }
        if &bytes[0..4] != MAGIC {
            return Err(DbError::Io(format!(
                "{} is not a perfbase WAL (bad magic)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(DbError::Io(format!(
                "{}: unsupported WAL version {version}",
                path.display()
            )));
        }
        let start_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

        // Scan frames until the tail stops validating.
        let mut statements = Vec::new();
        let mut pos = HEADER_LEN as usize;
        let mut seq = start_seq;
        while let Some((payload, next)) = read_frame(&bytes, pos, seq) {
            statements.push(payload);
            pos = next;
            seq += 1;
        }
        let valid_len = pos as u64;
        let torn = file_len.saturating_sub(valid_len);
        if torn > 0 {
            file.set_len(valid_len)
                .map_err(|e| io_err(path, "truncate", &e))?;
            file.sync_all().map_err(|e| io_err(path, "sync", &e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err(path, "seek", &e))?;

        let frames = statements.len() as u64;
        let report = RecoveryReport {
            frames_replayed: frames,
            frames_skipped: 0,
            torn_bytes: torn,
            replay_errors: 0,
            start_seq,
            next_seq: seq,
        };
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            opts,
            buf: Vec::new(),
            next_seq: seq,
            start_seq,
            unsynced: 0,
            window_open: None,
            frames,
            tap: None,
        };
        Ok((wal, statements, report))
    }

    /// Append one statement as a frame; returns its sequence number. The
    /// frame is written to the log file (and synced as the policy
    /// dictates) before this returns — the caller applies the statement to
    /// the engine only afterwards.
    pub fn append(&mut self, stmt: &str) -> Result<u64, DbError> {
        let t_append = Instant::now();
        let fp = self.opts.failpoint.clone();
        fp.check_alive()?;
        let payload = stmt.as_bytes();
        if payload.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(DbError::Io(format!(
                "statement of {} bytes exceeds WAL frame limit",
                payload.len()
            )));
        }
        let seq = self.next_seq;
        let crc = frame_crc(seq, payload);
        // Encode the frame into the reused scratch buffer — no per-append
        // allocation — then hand it to the file in one write. Frames reach
        // the file on every append; only the fsync is deferred, so a
        // process kill loses at most the not-yet-synced tail.
        let frame_len = FRAME_HEADER_LEN + payload.len();
        self.buf.clear();
        self.buf.reserve(frame_len);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&seq.to_le_bytes());
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.extend_from_slice(payload);

        let allowed = fp.admit_write(frame_len as u64) as usize;
        self.file
            .write_all(&self.buf[..allowed])
            .map_err(|e| io_err(&self.path, "append", &e))?;
        if allowed < frame_len {
            // Torn write: the partial frame made it to the file, then the
            // simulated process dies.
            let _ = self.file.sync_data();
            return Err(DbError::Io(format!(
                "simulated crash: torn write after {allowed} of {frame_len} frame bytes"
            )));
        }
        self.next_seq += 1;
        self.frames += 1;
        self.unsynced += 1;
        // The tap sees the frame after it reached the file but before any
        // window-expiry fsync, so an `on_commit` fired by `maybe_sync`
        // below already covers this frame. A tap error propagates with the
        // frame in the log and the statement unapplied — the same state a
        // crash leaves, which recovery already handles.
        if let Some(tap) = self.tap.clone() {
            tap.on_frame(seq, crc, stmt)?;
        }
        self.maybe_sync()?;
        fp.admit_frame();
        // Timed inclusive of any policy-driven inline fsync, so the append
        // histogram reflects the latency a statement actually paid.
        obs::wal_append(frame_len as u64, t_append.elapsed().as_nanos() as u64);
        Ok(seq)
    }

    /// Apply the sync policy after an append.
    fn maybe_sync(&mut self) -> Result<(), DbError> {
        match self.opts.sync {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::Off => Ok(()),
            SyncPolicy::Group(window) => {
                let now = Instant::now();
                match self.window_open {
                    None => {
                        // First frame of a new window rides on the previous
                        // sync; open the window.
                        self.window_open = Some(now);
                        Ok(())
                    }
                    Some(opened) if now.duration_since(opened) >= window => self.sync(),
                    Some(_) => Ok(()),
                }
            }
        }
    }

    /// Force every written frame to stable storage (closes the current
    /// group-commit window).
    pub fn sync(&mut self) -> Result<(), DbError> {
        if self.unsynced > 0 {
            let batch = self.unsynced;
            let t_sync = Instant::now();
            self.file
                .sync_data()
                .map_err(|e| io_err(&self.path, "fsync", &e))?;
            obs::wal_fsync(batch, t_sync.elapsed().as_nanos() as u64);
            self.unsynced = 0;
            if let Some(tap) = self.tap.clone() {
                tap.on_commit()?;
            }
        }
        self.window_open = None;
        Ok(())
    }

    /// Compact the log after a successful checkpoint: drop every frame
    /// (they are all reflected in the checkpoint dump) and restart the
    /// segment at the next sequence number. Returns frames dropped.
    ///
    /// Carries the [`IoFailpoint::crash_before_compact`] kill point: the
    /// checkpoint dump is already renamed into place when this runs, so a
    /// crash here leaves dump *and* log both holding every frame —
    /// recovery must skip the already-checkpointed frames (it knows them
    /// by the checkpoint sequence recorded in the dump header).
    pub fn compact(&mut self) -> Result<u64, DbError> {
        let fp = self.opts.failpoint.clone();
        fp.check_alive()?;
        fp.admit_compact()?;
        // Pre-compaction barrier: give the tap its last chance to ship the
        // frames about to be dropped. An error keeps the segment intact.
        if let Some(tap) = self.tap.clone() {
            tap.pre_compact()?;
        }
        self.sync()?;
        let dropped = self.frames;
        self.start_seq = self.next_seq;
        self.file
            .set_len(0)
            .map_err(|e| io_err(&self.path, "truncate", &e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, "seek", &e))?;
        write_header(&mut self.file, &self.path, self.start_seq)?;
        self.frames = 0;
        self.unsynced = 0;
        self.window_open = None;
        Ok(dropped)
    }

    /// Sequence number the next frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Frames currently in the log segment.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fault-injection hook this log writes through.
    pub fn failpoint(&self) -> &Arc<IoFailpoint> {
        &self.opts.failpoint
    }

    /// Install (or clear) the frame observer. Frames appended before the
    /// tap was installed are not replayed into it — callers bring the
    /// observer up to date themselves (replication base-copies the
    /// engine's current state before attaching).
    pub fn set_tap(&mut self, tap: Option<Arc<dyn FrameTap>>) {
        self.tap = tap;
    }
}

impl Drop for Wal {
    /// Best-effort fsync of the written-but-unsynced tail on a clean drop
    /// — frames are already in the file (appends write immediately), this
    /// just closes an idle group-commit window. A simulated crash skips
    /// it: a dead process cannot fsync.
    fn drop(&mut self) {
        if !self.opts.failpoint.is_crashed() {
            let _ = self.sync();
        }
    }
}

/// Validate and decode the frame at `pos`; `None` on any torn/corrupt/
/// out-of-sequence frame (recovery truncates there).
fn read_frame(bytes: &[u8], pos: usize, expect_seq: u64) -> Option<(String, usize)> {
    let header_end = pos.checked_add(FRAME_HEADER_LEN)?;
    if header_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?);
    if len > MAX_PAYLOAD {
        return None;
    }
    let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().ok()?);
    let end = header_end.checked_add(len as usize)?;
    if end > bytes.len() {
        return None;
    }
    if seq != expect_seq {
        return None;
    }
    let payload = &bytes[header_end..end];
    if frame_crc(seq, payload) != crc {
        return None;
    }
    let text = String::from_utf8(payload.to_vec()).ok()?;
    Some((text, end))
}

fn write_header(file: &mut File, path: &Path, start_seq: u64) -> Result<(), DbError> {
    let mut header = Vec::with_capacity(HEADER_LEN as usize);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&start_seq.to_le_bytes());
    file.write_all(&header)
        .map_err(|e| io_err(path, "write header", &e))?;
    file.sync_data()
        .map_err(|e| io_err(path, "sync header", &e))?;
    Ok(())
}

fn io_err(path: &Path, op: &str, e: &std::io::Error) -> DbError {
    DbError::Io(format!("{op} {}: {e}", path.display()))
}

/// CRC32 (IEEE 802.3 polynomial, reflected) over the frame's sequence
/// number followed by its payload.
pub fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut crc = crc32_update(0xFFFF_FFFF, &seq.to_le_bytes());
    crc = crc32_update(crc, payload);
    !crc
}

/// IEEE CRC-32 lookup table (reflected polynomial), built at compile time.
/// Byte-at-a-time lookups keep the per-frame checksum off the append hot
/// path — the bit-at-a-time loop showed up in the `wal_append` microbench.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("perfbase_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vector() {
        // CRC32("123456789") == 0xCBF43926 for the IEEE polynomial.
        let crc = !crc32_update(0xFFFF_FFFF, b"123456789");
        assert_eq!(crc, 0xCBF4_3926);
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let path = tmp("roundtrip.wal");
        let mut wal = Wal::create(&path, WalOptions::with_sync(SyncPolicy::Off), 1).unwrap();
        for i in 0..10 {
            let seq = wal.append(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            assert_eq!(seq, 1 + i);
        }
        wal.sync().unwrap();
        drop(wal);
        let (wal, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert_eq!(stmts.len(), 10);
        assert_eq!(stmts[3], "INSERT INTO t VALUES (3)");
        assert_eq!(report.frames_replayed, 10);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(report.next_seq, 11);
        assert_eq!(wal.next_seq(), 11);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn.wal");
        let mut wal = Wal::create(&path, WalOptions::with_sync(SyncPolicy::Off), 1).unwrap();
        wal.append("CREATE TABLE t (a INTEGER)").unwrap();
        wal.append("INSERT INTO t VALUES (1)").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Chop 5 bytes off the last frame.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (wal, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert_eq!(stmts, vec!["CREATE TABLE t (a INTEGER)".to_string()]);
        assert_eq!(report.frames_replayed, 1);
        assert!(report.torn_bytes > 0);
        // The file was physically truncated to the last valid frame.
        let truncated = std::fs::metadata(&path).unwrap().len();
        assert!(
            truncated < len - 5 || truncated == len - 5 - report.torn_bytes + (len - 5 - truncated)
        );
        // Appending after recovery continues the sequence.
        assert_eq!(wal.next_seq(), 2);
    }

    #[test]
    fn corrupt_crc_cuts_log_there() {
        let path = tmp("crc.wal");
        let mut wal = Wal::create(&path, WalOptions::with_sync(SyncPolicy::Off), 1).unwrap();
        wal.append("A1").unwrap();
        wal.append("B2").unwrap();
        wal.append("C3").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip one payload byte of the second frame. Frames are 16+2 bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = HEADER_LEN as usize + 18 + 16;
        bytes[second_payload] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert_eq!(stmts, vec!["A1".to_string()]);
        // Frames 2 and 3 are gone — corruption truncates the tail.
        assert_eq!(report.frames_replayed, 1);
        assert!(report.torn_bytes >= 18 * 2);
    }

    #[test]
    fn torn_write_failpoint_trips_and_recovers_prefix() {
        let path = tmp("failpoint.wal");
        let fp = Arc::new(IoFailpoint::torn_write_after(50));
        let opts = WalOptions {
            sync: SyncPolicy::Off,
            failpoint: fp.clone(),
        };
        let mut wal = Wal::create(&path, opts, 1).unwrap();
        let mut ok = 0;
        let mut died = false;
        for i in 0..100 {
            match wal.append(&format!("stmt {i}")) {
                Ok(_) => ok += 1,
                Err(e) => {
                    assert!(e.to_string().contains("simulated crash"), "{e}");
                    died = true;
                    break;
                }
            }
        }
        assert!(died, "failpoint never fired");
        assert!(fp.is_crashed());
        // Further appends also fail.
        assert!(wal.append("after death").is_err());
        drop(wal);
        fp.reset();
        let (_, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert_eq!(stmts.len(), ok);
        assert!(report.torn_bytes > 0, "the torn frame should be on disk");
    }

    #[test]
    fn crash_after_frames_is_clean() {
        let path = tmp("frames.wal");
        let fp = Arc::new(IoFailpoint::crash_after_frames(3));
        let opts = WalOptions {
            sync: SyncPolicy::Off,
            failpoint: fp.clone(),
        };
        let mut wal = Wal::create(&path, opts, 1).unwrap();
        for i in 0..3 {
            wal.append(&format!("s{i}")).unwrap();
        }
        assert!(wal.append("s3").is_err());
        drop(wal);
        fp.reset();
        let (_, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(report.torn_bytes, 0, "clean crash leaves no torn tail");
    }

    #[test]
    fn short_read_failpoint_truncates_recovery() {
        let path = tmp("shortread.wal");
        let mut wal = Wal::create(&path, WalOptions::with_sync(SyncPolicy::Off), 1).unwrap();
        for i in 0..5 {
            wal.append(&format!("statement number {i}")).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let full = std::fs::metadata(&path).unwrap().len();
        let fp = Arc::new(IoFailpoint::short_read_after(full - 10));
        let opts = WalOptions {
            sync: SyncPolicy::Off,
            failpoint: fp,
        };
        let (_, stmts, _) = Wal::open_recover(&path, opts).unwrap();
        assert_eq!(
            stmts.len(),
            4,
            "short read must drop exactly the last frame"
        );
    }

    #[test]
    fn compaction_resets_segment_and_keeps_seq_monotonic() {
        let path = tmp("compact.wal");
        let mut wal = Wal::create(&path, WalOptions::with_sync(SyncPolicy::Off), 1).unwrap();
        for i in 0..4 {
            wal.append(&format!("s{i}")).unwrap();
        }
        let dropped = wal.compact().unwrap();
        assert_eq!(dropped, 4);
        assert_eq!(wal.frames(), 0);
        let seq = wal.append("after checkpoint").unwrap();
        assert_eq!(seq, 5, "sequence numbers keep counting across checkpoints");
        drop(wal);
        let (_, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert_eq!(stmts, vec!["after checkpoint".to_string()]);
        assert_eq!(report.start_seq, 5);
        assert_eq!(report.next_seq, 6);
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = tmp("foreign.wal");
        std::fs::write(
            &path,
            b"-- perfbase embedded database dump\nCREATE TABLE x;",
        )
        .unwrap();
        let err = Wal::open_recover(&path, WalOptions::default()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn group_commit_window_batches_syncs() {
        let path = tmp("group.wal");
        let opts = WalOptions::with_sync(SyncPolicy::Group(Duration::from_secs(3600)));
        let mut wal = Wal::create(&path, opts, 1).unwrap();
        // A huge window: none of these appends should block on fsync.
        for i in 0..100 {
            wal.append(&format!("s{i}")).unwrap();
        }
        assert!(wal.unsynced > 0, "frames are pending inside the window");
        wal.sync().unwrap();
        assert_eq!(wal.unsynced, 0);
    }

    #[test]
    fn sync_always_leaves_nothing_pending() {
        let path = tmp("always.wal");
        let mut wal = Wal::create(&path, WalOptions::with_sync(SyncPolicy::Always), 1).unwrap();
        wal.append("s").unwrap();
        assert_eq!(wal.unsynced, 0);
    }

    #[test]
    fn empty_or_missing_file_starts_fresh() {
        let path = tmp("fresh.wal");
        std::fs::remove_file(&path).ok();
        let (wal, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert!(stmts.is_empty());
        assert_eq!(report.next_seq, 1);
        assert_eq!(wal.frames(), 0);
        drop(wal);
        // A torn header (crash during create) also rebuilds cleanly.
        std::fs::write(&path, b"PBW").unwrap();
        let (_, stmts, report) = Wal::open_recover(&path, WalOptions::default()).unwrap();
        assert!(stmts.is_empty());
        assert_eq!(report.torn_bytes, 3);
    }
}
