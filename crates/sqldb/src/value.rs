//! Typed values and data types.

use std::cmp::Ordering;
use std::fmt;

/// Column data types. These map 1:1 onto the perfbase experiment-definition
/// `<datatype>` element (paper §3.1: "integer, float, text or other types";
/// the other types in use are boolean and timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Seconds since the Unix epoch (UTC).
    Timestamp,
}

impl DataType {
    /// SQL type name, used by the SQL front-end and `DESCRIBE`-style output.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Int => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOLEAN",
            DataType::Timestamp => "TIMESTAMP",
        }
    }

    /// Parse an SQL type name (several aliases accepted).
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(DataType::Text),
            "BOOLEAN" | "BOOL" => Some(DataType::Bool),
            "TIMESTAMP" | "DATETIME" => Some(DataType::Timestamp),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / missing content (paper §3.2 allows variables without
    /// content).
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Unix timestamp (seconds, UTC).
    Timestamp(i64),
}

impl Value {
    /// The value's type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int, Float, Bool and Timestamp coerce; Text does not).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(f64::from(*b)),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce into `ty`, used on INSERT so that `1` can populate a FLOAT
    /// column and `'2004-11-23 18:30:30'` a TIMESTAMP column.
    pub fn coerce(self, ty: DataType) -> Result<Value, String> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let err = |v: &Value| Err(format!("cannot coerce {v} to {ty}"));
        match ty {
            DataType::Int => match &self {
                Value::Int(_) => Ok(self),
                Value::Float(f) if f.fract() == 0.0 => Ok(Value::Int(*f as i64)),
                Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
                Value::Text(s) => s.trim().parse().map(Value::Int).or_else(|_| err(&self)),
                _ => err(&self),
            },
            DataType::Float => match &self {
                Value::Float(_) => Ok(self),
                Value::Int(i) => Ok(Value::Float(*i as f64)),
                Value::Text(s) => s.trim().parse().map(Value::Float).or_else(|_| err(&self)),
                _ => err(&self),
            },
            DataType::Text => match self {
                Value::Text(_) => Ok(self),
                other => Ok(Value::Text(other.to_string())),
            },
            DataType::Bool => match &self {
                Value::Bool(_) => Ok(self),
                Value::Int(i) => Ok(Value::Bool(*i != 0)),
                Value::Text(s) => match s.trim().to_ascii_lowercase().as_str() {
                    "true" | "t" | "yes" | "1" | "on" => Ok(Value::Bool(true)),
                    "false" | "f" | "no" | "0" | "off" => Ok(Value::Bool(false)),
                    _ => err(&self),
                },
                _ => err(&self),
            },
            DataType::Timestamp => match &self {
                Value::Timestamp(_) => Ok(self),
                Value::Int(i) => Ok(Value::Timestamp(*i)),
                Value::Text(s) => parse_timestamp(s)
                    .map(Value::Timestamp)
                    .ok_or(())
                    .or_else(|_| err(&self)),
                _ => err(&self),
            },
        }
    }

    /// Total ordering used by ORDER BY, GROUP BY and the ordered index:
    /// NULL sorts first, numbers compare numerically across Int/Float, text
    /// lexicographically. NaN compares equal to itself and greater than
    /// every other number (IEEE-total-order style, NaN last) — the fallback
    /// must not collapse to `Equal`, which would make the comparator
    /// non-transitive (NaN==1, NaN==2, 1<2) and corrupt sorts.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => match x.partial_cmp(&y) {
                    Some(o) => o,
                    // partial_cmp is None iff at least one side is NaN:
                    // the NaN side sorts last, two NaNs are equal.
                    None => x.is_nan().cmp(&y.is_nan()),
                },
                // Heterogeneous non-numeric: order by type discriminant.
                _ => type_rank(a).cmp(&type_rank(b)),
            },
        }
    }

    /// Equality used by filters and grouping (numeric cross-type equality).
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }
}

/// Hashable key with the same equivalence classes as grouping, DISTINCT and
/// equi-joins: numeric values (Int, Float, Bool-as-number is *not* included —
/// see below, Timestamp) collapse onto their f64 image so `1` and `1.0`
/// produce the same key, `-0.0` normalizes to `0.0`, text and bool keep their
/// own identity, and NULL is its own variant (callers that implement SQL `=`
/// must treat [`ValueKey::Null`] as matching nothing).
///
/// This is the `HashMap` key for hash joins, secondary indexes, GROUP BY and
/// DISTINCT. It deliberately mirrors the engine's canonical string/byte
/// encodings, not `Value::sql_eq` (which additionally equates `TRUE` with
/// `1` — a cross-type comparison that never occurs within one typed column).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// NULL (never equal to anything under SQL `=`).
    Null,
    /// Normalized f64 bit pattern of a numeric value.
    Num(u64),
    /// Text identity.
    Text(String),
    /// Bool identity.
    Bool(bool),
}

impl ValueKey {
    /// Key of a value.
    pub fn of(v: &Value) -> ValueKey {
        match v {
            Value::Null => ValueKey::Null,
            Value::Text(s) => ValueKey::Text(s.clone()),
            Value::Bool(b) => ValueKey::Bool(*b),
            other => {
                let f = other.as_f64().unwrap_or(f64::NAN);
                let f = if f == 0.0 { 0.0 } else { f }; // normalize -0.0
                                                        // Collapse every NaN payload onto the canonical quiet NaN so
                                                        // all NaNs land in one equivalence class (and one index key).
                let f = if f.is_nan() { f64::NAN } else { f };
                ValueKey::Num(f.to_bits())
            }
        }
    }

    /// Is this the NULL key?
    pub fn is_null(&self) -> bool {
        matches!(self, ValueKey::Null)
    }
}

/// Map an f64 bit pattern (as stored in [`ValueKey::Num`]) to a u64 whose
/// unsigned order equals the engine's numeric order: negatives ascend,
/// positives ascend above them, NaN sorts above everything — exactly
/// matching [`Value::total_cmp`]'s NaN-last rule so ordered-index range
/// scans and the filter evaluator agree on every comparison.
fn num_order_key(bits: u64) -> u64 {
    let f = f64::from_bits(bits);
    if f.is_nan() {
        u64::MAX
    } else if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Total order over keys, used by the ordered (BTreeMap) index variant.
/// Within one typed column only a single class ever occurs (plus Null), so
/// the cross-class ordering just needs to be *some* stable total order;
/// Null sorts first to mirror [`Value::total_cmp`].
impl Ord for ValueKey {
    fn cmp(&self, other: &ValueKey) -> Ordering {
        use ValueKey::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Num(a), Num(b)) => num_order_key(*a).cmp(&num_order_key(*b)),
            (Num(_), _) => Ordering::Less,
            (_, Num(_)) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }
}

impl PartialOrd for ValueKey {
    fn partial_cmp(&self, other: &ValueKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Timestamp(_) => 4,
        Value::Text(_) => 5,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Text(a), Text(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => f.write_str(&format_timestamp(*t)),
        }
    }
}

/// Days-from-civil algorithm (Howard Hinnant): days since 1970-01-01.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse `YYYY-MM-DD[ HH:MM[:SS]]` (also accepts `T` as a date/time
/// separator) into Unix seconds. Returns `None` on malformed input.
pub fn parse_timestamp(s: &str) -> Option<i64> {
    let s = s.trim();
    let (date, time) = match s.find([' ', 'T']) {
        Some(i) => (&s[..i], Some(&s[i + 1..])),
        None => (s, None),
    };
    let mut dp = date.split('-');
    let y: i64 = dp.next()?.parse().ok()?;
    let m: u32 = dp.next()?.parse().ok()?;
    let d: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let mut secs = days_from_civil(y, m, d) * 86_400;
    if let Some(t) = time {
        let mut tp = t.split(':');
        let h: i64 = tp.next()?.parse().ok()?;
        let mi: i64 = tp.next()?.parse().ok()?;
        let se: i64 = match tp.next() {
            Some(x) => x.parse().ok()?,
            None => 0,
        };
        if tp.next().is_some()
            || !(0..24).contains(&h)
            || !(0..60).contains(&mi)
            || !(0..60).contains(&se)
        {
            return None;
        }
        secs += h * 3600 + mi * 60 + se;
    }
    Some(secs)
}

/// Format Unix seconds as `YYYY-MM-DD HH:MM:SS` (UTC).
pub fn format_timestamp(secs: i64) -> String {
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_roundtrip() {
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Timestamp,
        ] {
            assert_eq!(DataType::from_sql_name(t.sql_name()), Some(t));
        }
        assert_eq!(DataType::from_sql_name("varchar"), Some(DataType::Text));
        assert_eq!(DataType::from_sql_name("nope"), None);
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(3).coerce(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.0).coerce(DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert!(Value::Float(3.5).coerce(DataType::Int).is_err());
        assert_eq!(
            Value::Text(" 42 ".into()).coerce(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Text("yes".into()).coerce(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::Int(7).coerce(DataType::Text).unwrap(),
            Value::Text("7".into())
        );
        assert!(Value::Text("abc".into()).coerce(DataType::Float).is_err());
        assert_eq!(Value::Null.coerce(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn ordering_rules() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Equal);
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(2.5)), Greater);
        assert_eq!(
            Value::Text("a".into()).total_cmp(&Value::Text("b".into())),
            Less
        );
    }

    #[test]
    fn nan_ordering_is_transitive_and_deterministic() {
        use std::cmp::Ordering::*;
        let nan = Value::Float(f64::NAN);
        // NaN sorts last: greater than every number, equal to itself.
        assert_eq!(nan.total_cmp(&Value::Int(1)), Greater);
        assert_eq!(Value::Int(1).total_cmp(&nan), Less);
        assert_eq!(nan.total_cmp(&Value::Float(f64::INFINITY)), Greater);
        assert_eq!(nan.total_cmp(&Value::Float(f64::NAN)), Equal);
        // The comparator is a strict weak order over a NaN-containing set:
        // sorting must not panic and must be stable across input orders.
        let mut a = vec![
            Value::Float(2.0),
            Value::Float(f64::NAN),
            Value::Int(1),
            Value::Null,
            Value::Float(-1.5),
        ];
        let mut b = a.clone();
        b.reverse();
        a.sort_by(|x, y| x.total_cmp(y));
        b.sort_by(|x, y| x.total_cmp(y));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_cmp(y), Equal);
        }
        assert!(a[0].is_null());
        assert!(matches!(a[4], Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn value_key_total_order_matches_numeric_order() {
        let keys: Vec<ValueKey> = [
            f64::NEG_INFINITY,
            -3.5,
            -0.0,
            0.0,
            1.0,
            2.5,
            f64::INFINITY,
            f64::NAN,
        ]
        .iter()
        .map(|f| ValueKey::of(&Value::Float(*f)))
        .collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1], "{:?} > {:?}", w[0], w[1]);
        }
        // -0.0 and 0.0 collapse; every NaN payload collapses.
        assert_eq!(keys[2].cmp(&keys[3]), Ordering::Equal);
        assert_eq!(
            ValueKey::of(&Value::Float(f64::NAN)),
            ValueKey::of(&Value::Float(-f64::NAN))
        );
        assert!(ValueKey::Null < ValueKey::of(&Value::Int(i64::MIN)));
    }

    #[test]
    fn sql_eq_null_is_never_equal() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(Value::Int(1).sql_eq(&Value::Float(1.0)));
        assert!(!Value::Int(1).sql_eq(&Value::Text("1".into())));
    }

    #[test]
    fn timestamp_parse_format_roundtrip() {
        let cases = [
            "1970-01-01 00:00:00",
            "2004-11-23 18:30:30",
            "2026-07-06 12:00:00",
            "1969-12-31 23:59:59",
            "2000-02-29 01:02:03",
        ];
        for c in cases {
            let t = parse_timestamp(c).unwrap();
            assert_eq!(format_timestamp(t), c, "case {c}");
        }
    }

    #[test]
    fn timestamp_epoch_is_zero() {
        assert_eq!(parse_timestamp("1970-01-01"), Some(0));
        assert_eq!(parse_timestamp("1970-01-02"), Some(86_400));
        assert_eq!(
            parse_timestamp("2004-11-23T18:30:30"),
            parse_timestamp("2004-11-23 18:30:30")
        );
    }

    #[test]
    fn timestamp_rejects_malformed() {
        for bad in [
            "",
            "2004",
            "2004-13-01",
            "2004-00-10",
            "2004-01-32",
            "2004-1-1 25:00",
            "x-y-z",
        ] {
            assert_eq!(parse_timestamp(bad), None, "{bad}");
        }
    }

    #[test]
    fn value_key_equivalence_classes() {
        assert_eq!(
            ValueKey::of(&Value::Int(1)),
            ValueKey::of(&Value::Float(1.0))
        );
        assert_eq!(
            ValueKey::of(&Value::Float(0.0)),
            ValueKey::of(&Value::Float(-0.0))
        );
        assert_eq!(
            ValueKey::of(&Value::Timestamp(5)),
            ValueKey::of(&Value::Int(5))
        );
        assert_ne!(
            ValueKey::of(&Value::Int(1)),
            ValueKey::of(&Value::Text("1".into()))
        );
        assert_ne!(
            ValueKey::of(&Value::Bool(true)),
            ValueKey::of(&Value::Int(1))
        );
        assert!(ValueKey::of(&Value::Null).is_null());
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ValueKey::of(&Value::Int(2)));
        assert!(set.contains(&ValueKey::of(&Value::Float(2.0))));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(
            Value::Timestamp(parse_timestamp("2004-11-23 18:30:30").unwrap()).to_string(),
            "2004-11-23 18:30:30"
        );
    }
}
