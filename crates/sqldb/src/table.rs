//! In-memory row storage with optional secondary hash indexes.

use crate::error::DbError;
use crate::schema::Schema;
use crate::value::{Value, ValueKey};
use std::collections::HashMap;

/// A row is a vector of values, one per schema column.
pub type Row = Vec<Value>;

/// A secondary hash index over one column: equality key → row positions.
///
/// NULL keys are not indexed — SQL `=` never matches NULL, so a point
/// lookup can never want them.
#[derive(Debug, Clone)]
struct Index {
    name: String,
    column: usize,
    map: HashMap<ValueKey, Vec<usize>>,
}

impl Index {
    fn build(name: String, column: usize, rows: &[Row]) -> Self {
        let mut map: HashMap<ValueKey, Vec<usize>> = HashMap::new();
        for (i, r) in rows.iter().enumerate() {
            let key = ValueKey::of(&r[column]);
            if !key.is_null() {
                map.entry(key).or_default().push(i);
            }
        }
        Index { name, column, map }
    }
}

/// An in-memory table: a schema plus row storage plus secondary indexes.
///
/// Tables are stored behind `RwLock`s in the [`crate::Engine`] catalog; the
/// table itself is a plain data structure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column definitions.
    pub schema: Schema,
    rows: Vec<Row>,
    indexes: Vec<Index>,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table { schema, rows: Vec::new(), indexes: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Read-only view of all rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Create a hash index named `name` over `column`. Creating a second
    /// index on an already-indexed column is a no-op (the existing index
    /// serves the same lookups); a duplicate index *name* on a different
    /// column is an error.
    pub fn create_index(&mut self, name: &str, column: &str) -> Result<(), DbError> {
        let ci = self
            .schema
            .index_of(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_string()))?;
        if self.indexes.iter().any(|ix| ix.column == ci) {
            return Ok(());
        }
        if self.indexes.iter().any(|ix| ix.name == name) {
            return Err(DbError::Execution(format!("index '{name}' already exists")));
        }
        self.indexes.push(Index::build(name.to_string(), ci, &self.rows));
        Ok(())
    }

    /// Is there an index over `column` (by position)?
    pub fn has_index_on(&self, column: usize) -> bool {
        self.indexes.iter().any(|ix| ix.column == column)
    }

    /// Indexed positions of rows whose `column` equals `key`, or `None` when
    /// no index covers that column. NULL keys return an empty slice — SQL
    /// `=` never matches NULL.
    pub fn index_lookup(&self, column: usize, key: &ValueKey) -> Option<&[usize]> {
        let ix = self.indexes.iter().find(|ix| ix.column == column)?;
        if key.is_null() {
            return Some(&[]);
        }
        Some(ix.map.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Number of distinct keys in the index over `column`, or `None` when
    /// the column carries no index. The planner uses this as a selectivity
    /// proxy: more distinct keys → fewer rows per key → cheaper probe.
    pub fn index_distinct_keys(&self, column: usize) -> Option<usize> {
        self.indexes.iter().find(|ix| ix.column == column).map(|ix| ix.map.len())
    }

    /// `(index name, column name)` for every index, in creation order. Used
    /// by the SQL dumper to round-trip indexes.
    pub fn index_columns(&self) -> Vec<(String, String)> {
        self.indexes
            .iter()
            .map(|ix| (ix.name.clone(), self.schema.columns[ix.column].name.clone()))
            .collect()
    }

    /// Validate, coerce and append one row.
    pub fn insert(&mut self, row: Row) -> Result<(), DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::Type(format!(
                "insert arity mismatch: expected {} values, got {}",
                self.schema.arity(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            if v.is_null() && !col.nullable {
                return Err(DbError::Type(format!("column '{}' is NOT NULL", col.name)));
            }
            let cv = v.coerce(col.dtype).map_err(DbError::Type)?;
            out.push(cv);
        }
        let pos = self.rows.len();
        for ix in &mut self.indexes {
            let key = ValueKey::of(&out[ix.column]);
            if !key.is_null() {
                ix.map.entry(key).or_default().push(pos);
            }
        }
        self.rows.push(out);
        Ok(())
    }

    /// Append many rows (stops at the first bad row).
    pub fn insert_all(&mut self, rows: Vec<Row>) -> Result<usize, DbError> {
        self.rows.reserve(rows.len());
        let mut n = 0;
        for r in rows {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Remove rows matching `pred`; returns the number removed. Deletion
    /// shifts row positions, so all indexes are rebuilt afterwards.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.rebuild_indexes();
        }
        removed
    }

    /// Update rows in place via `f`, which returns true when it modified the
    /// row; returns the number of rows modified. Indexes are rebuilt when
    /// any row changed (an update may rewrite indexed key columns).
    pub fn update_where(&mut self, mut f: impl FnMut(&mut Row) -> bool) -> usize {
        let mut n = 0;
        for r in &mut self.rows {
            if f(r) {
                n += 1;
            }
        }
        if n > 0 {
            self.rebuild_indexes();
        }
        n
    }

    fn rebuild_indexes(&mut self) {
        for ix in &mut self.indexes {
            *ix = Index::build(ix.name.clone(), ix.column, &self.rows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn t() -> Table {
        Table::new(
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("bw", DataType::Float),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_coerces_types() {
        let mut tb = t();
        tb.insert(vec![Value::Int(1), Value::Int(5)]).unwrap();
        assert_eq!(tb.rows()[0][1], Value::Float(5.0));
    }

    #[test]
    fn insert_rejects_arity_mismatch() {
        let mut tb = t();
        assert!(tb.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_rejects_null_in_not_null() {
        let mut tb = t();
        assert!(tb.insert(vec![Value::Null, Value::Float(1.0)]).is_err());
        tb.insert(vec![Value::Int(1), Value::Null]).unwrap(); // bw is nullable
    }

    #[test]
    fn delete_and_update() {
        let mut tb = t();
        for i in 0..5 {
            tb.insert(vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
        }
        let n = tb.update_where(|r| {
            if r[0].as_i64().unwrap() % 2 == 0 {
                r[1] = Value::Float(0.0);
                true
            } else {
                false
            }
        });
        assert_eq!(n, 3);
        let n = tb.delete_where(|r| r[1] == Value::Float(0.0));
        assert_eq!(n, 3);
        assert_eq!(tb.len(), 2);
    }

    fn lookup_ids(tb: &Table, key: i64) -> Vec<i64> {
        tb.index_lookup(0, &ValueKey::of(&Value::Int(key)))
            .unwrap()
            .iter()
            .map(|&i| tb.rows()[i][0].as_i64().unwrap())
            .collect()
    }

    #[test]
    fn index_tracks_insert_delete_update() {
        let mut tb = t();
        tb.create_index("by_id", "id").unwrap();
        for i in 0..6 {
            tb.insert(vec![Value::Int(i % 3), Value::Float(i as f64)]).unwrap();
        }
        assert_eq!(lookup_ids(&tb, 1), vec![1, 1]);
        assert!(tb.index_lookup(0, &ValueKey::of(&Value::Int(9))).unwrap().is_empty());
        // Delete shifts positions; the index must follow.
        tb.delete_where(|r| r[0] == Value::Int(0));
        assert_eq!(lookup_ids(&tb, 2), vec![2, 2]);
        // Update rewrites the key column; the index must follow.
        tb.update_where(|r| {
            if r[0] == Value::Int(1) {
                r[0] = Value::Int(7);
                true
            } else {
                false
            }
        });
        assert!(tb.index_lookup(0, &ValueKey::of(&Value::Int(1))).unwrap().is_empty());
        assert_eq!(lookup_ids(&tb, 7), vec![7, 7]);
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut tb = t();
        for i in 0..4 {
            tb.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        tb.create_index("by_id", "id").unwrap();
        assert_eq!(lookup_ids(&tb, 2), vec![2]);
        assert!(tb.has_index_on(0));
        assert!(!tb.has_index_on(1));
        assert_eq!(tb.index_columns(), vec![("by_id".to_string(), "id".to_string())]);
    }

    #[test]
    fn index_skips_null_keys() {
        let mut tb = Table::new(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Float),
            ])
            .unwrap(),
        );
        tb.create_index("by_k", "k").unwrap();
        tb.insert(vec![Value::Null, Value::Float(1.0)]).unwrap();
        tb.insert(vec![Value::Int(5), Value::Float(2.0)]).unwrap();
        // NULL never matches '='.
        assert!(tb.index_lookup(0, &ValueKey::Null).unwrap().is_empty());
        assert_eq!(tb.index_lookup(0, &ValueKey::of(&Value::Int(5))).unwrap(), &[1]);
    }

    #[test]
    fn duplicate_index_rules() {
        let mut tb = t();
        tb.create_index("one", "id").unwrap();
        // Same column again: no-op.
        tb.create_index("two", "id").unwrap();
        assert_eq!(tb.index_columns().len(), 1);
        // Same name, different column: error.
        assert!(tb.create_index("one", "bw").is_err());
        // Unknown column: error.
        assert!(tb.create_index("x", "zzz").is_err());
    }
}
