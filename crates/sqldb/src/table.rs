//! In-memory row storage.

use crate::error::DbError;
use crate::schema::Schema;
use crate::value::Value;

/// A row is a vector of values, one per schema column.
pub type Row = Vec<Value>;

/// An in-memory table: a schema plus row storage.
///
/// Tables are stored behind `RwLock`s in the [`crate::Engine`] catalog; the
/// table itself is a plain data structure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column definitions.
    pub schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table { schema, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Read-only view of all rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Validate, coerce and append one row.
    pub fn insert(&mut self, row: Row) -> Result<(), DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::Type(format!(
                "insert arity mismatch: expected {} values, got {}",
                self.schema.arity(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            if v.is_null() && !col.nullable {
                return Err(DbError::Type(format!("column '{}' is NOT NULL", col.name)));
            }
            let cv = v.coerce(col.dtype).map_err(DbError::Type)?;
            out.push(cv);
        }
        self.rows.push(out);
        Ok(())
    }

    /// Append many rows (stops at the first bad row).
    pub fn insert_all(&mut self, rows: Vec<Row>) -> Result<usize, DbError> {
        let mut n = 0;
        for r in rows {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Remove rows matching `pred`; returns the number removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        before - self.rows.len()
    }

    /// Update rows in place via `f`, which returns true when it modified the
    /// row; returns the number of rows modified.
    pub fn update_where(&mut self, mut f: impl FnMut(&mut Row) -> bool) -> usize {
        let mut n = 0;
        for r in &mut self.rows {
            if f(r) {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn t() -> Table {
        Table::new(
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("bw", DataType::Float),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_coerces_types() {
        let mut tb = t();
        tb.insert(vec![Value::Int(1), Value::Int(5)]).unwrap();
        assert_eq!(tb.rows()[0][1], Value::Float(5.0));
    }

    #[test]
    fn insert_rejects_arity_mismatch() {
        let mut tb = t();
        assert!(tb.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_rejects_null_in_not_null() {
        let mut tb = t();
        assert!(tb.insert(vec![Value::Null, Value::Float(1.0)]).is_err());
        tb.insert(vec![Value::Int(1), Value::Null]).unwrap(); // bw is nullable
    }

    #[test]
    fn delete_and_update() {
        let mut tb = t();
        for i in 0..5 {
            tb.insert(vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
        }
        let n = tb.update_where(|r| {
            if r[0].as_i64().unwrap() % 2 == 0 {
                r[1] = Value::Float(0.0);
                true
            } else {
                false
            }
        });
        assert_eq!(n, 3);
        let n = tb.delete_where(|r| r[1] == Value::Float(0.0));
        assert_eq!(n, 3);
        assert_eq!(tb.len(), 2);
    }
}
