//! In-memory table storage — row layout or columnar layout — with optional
//! secondary indexes (hash or ordered).
//!
//! Both layouts sit behind one [`Table`] interface. The row layout stores
//! `Vec<Row>`; the columnar layout stores a [`ColumnStore`] (typed vectors,
//! dictionary-encoded strings, null bitmaps — see [`crate::column`]) plus a
//! lazily materialized row cache so that [`Table::rows`] keeps working
//! unchanged for every existing caller. Mutations invalidate the cache; the
//! vectorized execution path in `exec` bypasses it entirely via
//! [`Table::column_store`].

use crate::column::{ColumnStore, ColumnarMemory};
use crate::error::DbError;
use crate::schema::Schema;
use crate::value::{DataType, Value, ValueKey};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;
use std::sync::OnceLock;

/// A row is a vector of values, one per schema column.
pub type Row = Vec<Value>;

/// Backing store of one secondary index: equality key → row positions.
///
/// `Hash` serves point probes in O(1); `Ordered` keeps keys sorted under
/// [`ValueKey`]'s total order so it additionally serves range scans. Both
/// keep each position vector sorted ascending (insertion appends the
/// largest position; incremental maintenance preserves relative order), so
/// index results come back in row-storage order like a scan would.
#[derive(Debug, Clone)]
enum IndexStore {
    Hash(HashMap<ValueKey, Vec<usize>>),
    Ordered(BTreeMap<ValueKey, Vec<usize>>),
}

impl IndexStore {
    /// Build from per-row keys in position order — layout-agnostic (the row
    /// layout feeds row slices, the columnar layout feeds reconstructed
    /// cell values).
    fn build(ordered: bool, keys: impl Iterator<Item = ValueKey>) -> Self {
        if ordered {
            let mut map: BTreeMap<ValueKey, Vec<usize>> = BTreeMap::new();
            for (i, key) in keys.enumerate() {
                if !key.is_null() {
                    map.entry(key).or_default().push(i);
                }
            }
            IndexStore::Ordered(map)
        } else {
            let mut map: HashMap<ValueKey, Vec<usize>> = HashMap::new();
            for (i, key) in keys.enumerate() {
                if !key.is_null() {
                    map.entry(key).or_default().push(i);
                }
            }
            IndexStore::Hash(map)
        }
    }

    fn get(&self, key: &ValueKey) -> Option<&Vec<usize>> {
        match self {
            IndexStore::Hash(m) => m.get(key),
            IndexStore::Ordered(m) => m.get(key),
        }
    }

    fn distinct_keys(&self) -> usize {
        match self {
            IndexStore::Hash(m) => m.len(),
            IndexStore::Ordered(m) => m.len(),
        }
    }

    fn push(&mut self, key: ValueKey, pos: usize) {
        match self {
            IndexStore::Hash(m) => m.entry(key).or_default().push(pos),
            IndexStore::Ordered(m) => m.entry(key).or_default().push(pos),
        }
    }

    /// Apply the delete remap table: position `p` survives as `new_of[p]`,
    /// or vanished when `new_of[p] == usize::MAX`. Relative order of the
    /// survivors is unchanged, so sorted position vectors stay sorted.
    fn remap_positions(&mut self, new_of: &[usize]) {
        let fix = |v: &mut Vec<usize>| {
            v.retain_mut(|p| {
                let n = new_of[*p];
                *p = n;
                n != usize::MAX
            });
            !v.is_empty()
        };
        match self {
            IndexStore::Hash(m) => m.retain(|_, v| fix(v)),
            IndexStore::Ordered(m) => m.retain(|_, v| fix(v)),
        }
    }

    /// Move one row position from `old` to `new` after an in-place update
    /// rewrote the indexed column. NULL keys are never stored.
    fn move_position(&mut self, old: &ValueKey, new: ValueKey, pos: usize) {
        if !old.is_null() {
            let emptied = match self {
                IndexStore::Hash(m) => m.get_mut(old),
                IndexStore::Ordered(m) => m.get_mut(old),
            }
            .map(|v| {
                if let Ok(i) = v.binary_search(&pos) {
                    v.remove(i);
                }
                v.is_empty()
            });
            if emptied == Some(true) {
                match self {
                    IndexStore::Hash(m) => {
                        m.remove(old);
                    }
                    IndexStore::Ordered(m) => {
                        m.remove(old);
                    }
                }
            }
        }
        if !new.is_null() {
            let v = match self {
                IndexStore::Hash(m) => m.entry(new).or_default(),
                IndexStore::Ordered(m) => m.entry(new).or_default(),
            };
            if let Err(i) = v.binary_search(&pos) {
                v.insert(i, pos);
            }
        }
    }
}

/// A secondary index over one column.
///
/// NULL keys are not indexed — SQL `=` never matches NULL, and every SQL
/// comparison against NULL is false, so neither a point probe nor a range
/// probe can ever want them.
#[derive(Debug, Clone)]
struct Index {
    name: String,
    column: usize,
    store: IndexStore,
}

impl Index {
    fn is_ordered(&self) -> bool {
        matches!(self.store, IndexStore::Ordered(_))
    }
}

/// Per-table memory accounting (see [`Table::memory_footprint`]). For a row
/// table the columnar numbers are what a columnar copy *would* cost (and
/// vice versa), so `perfbase stats` can show the layout trade-off either way.
#[derive(Debug, Clone, Copy, Default)]
pub struct TableMemory {
    /// Row count.
    pub rows: usize,
    /// True when the table is stored columnar.
    pub columnar: bool,
    /// Estimated bytes in the row layout (actual for row tables).
    pub row_layout_bytes: usize,
    /// Estimated bytes in the columnar layout (actual for columnar tables).
    pub columnar_layout_bytes: usize,
    /// Bytes held by string dictionaries.
    pub dict_bytes: usize,
    /// Total dictionary entries across TEXT columns.
    pub dict_entries: usize,
}

/// An in-memory table: a schema plus row or columnar storage plus secondary
/// indexes.
///
/// Tables are stored behind `RwLock`s in the [`crate::Engine`] catalog; the
/// table itself is a plain data structure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column definitions.
    pub schema: Schema,
    rows: Vec<Row>,
    /// Columnar backing store; `Some` makes `rows` unused.
    columnar: Option<ColumnStore>,
    /// Lazily materialized rows of a columnar table, so [`Table::rows`]
    /// stays source-compatible. Invalidated by every mutation.
    row_cache: OnceLock<Vec<Row>>,
    indexes: Vec<Index>,
}

impl Table {
    /// Empty row-layout table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            columnar: None,
            row_cache: OnceLock::new(),
            indexes: Vec::new(),
        }
    }

    /// Empty columnar table with the given schema.
    pub fn new_columnar(schema: Schema) -> Self {
        let store = ColumnStore::new(&schema);
        Table {
            schema,
            rows: Vec::new(),
            columnar: Some(store),
            row_cache: OnceLock::new(),
            indexes: Vec::new(),
        }
    }

    /// True when this table uses the columnar layout.
    pub fn is_columnar(&self) -> bool {
        self.columnar.is_some()
    }

    /// Columnar backing store, when this table is columnar.
    pub(crate) fn column_store(&self) -> Option<&ColumnStore> {
        self.columnar.as_ref()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.columnar {
            Some(st) => st.len(),
            None => self.rows.len(),
        }
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only view of all rows. For a columnar table this materializes
    /// (and caches) the rows on first use; fast paths avoid it by reading
    /// the column store directly.
    pub fn rows(&self) -> &[Row] {
        match &self.columnar {
            None => &self.rows,
            Some(st) => self.row_cache.get_or_init(|| st.to_rows()),
        }
    }

    /// Drop the materialized row cache after a mutation.
    fn invalidate_cache(&mut self) {
        self.row_cache.take();
    }

    /// Create an index named `name` over `column` (`ordered` selects the
    /// sorted variant that additionally serves range scans). At most one
    /// index exists per column: a second index on an already-indexed column
    /// is a no-op, except that an *ordered* request upgrades an existing
    /// hash index in place (keeping its name — the hash index served a
    /// strict subset of the lookups). A duplicate index *name* on a
    /// different column is an error.
    pub fn create_index(&mut self, name: &str, column: &str, ordered: bool) -> Result<(), DbError> {
        let ci = self
            .schema
            .index_of(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_string()))?;
        if let Some(pos) = self.indexes.iter().position(|ix| ix.column == ci) {
            if ordered && !self.indexes[pos].is_ordered() {
                self.indexes[pos].store =
                    Self::build_index_store(&self.rows, self.columnar.as_ref(), true, ci);
            }
            return Ok(());
        }
        if self.indexes.iter().any(|ix| ix.name == name) {
            return Err(DbError::Execution(format!("index '{name}' already exists")));
        }
        self.indexes.push(Index {
            name: name.to_string(),
            column: ci,
            store: Self::build_index_store(&self.rows, self.columnar.as_ref(), ordered, ci),
        });
        Ok(())
    }

    /// Build one index store from whichever layout backs the table.
    fn build_index_store(
        rows: &[Row],
        columnar: Option<&ColumnStore>,
        ordered: bool,
        ci: usize,
    ) -> IndexStore {
        match columnar {
            None => IndexStore::build(ordered, rows.iter().map(|r| ValueKey::of(&r[ci]))),
            Some(st) => IndexStore::build(
                ordered,
                (0..st.len()).map(|p| ValueKey::of(&st.value(p, ci))),
            ),
        }
    }

    /// Is there an index over `column` (by position)?
    pub fn has_index_on(&self, column: usize) -> bool {
        self.indexes.iter().any(|ix| ix.column == column)
    }

    /// Is there an *ordered* index over `column` (by position)?
    pub fn has_ordered_index_on(&self, column: usize) -> bool {
        self.indexes
            .iter()
            .any(|ix| ix.column == column && ix.is_ordered())
    }

    /// Indexed positions of rows whose `column` equals `key`, or `None` when
    /// no index covers that column. NULL keys return an empty slice — SQL
    /// `=` never matches NULL.
    pub fn index_lookup(&self, column: usize, key: &ValueKey) -> Option<&[usize]> {
        let ix = self.indexes.iter().find(|ix| ix.column == column)?;
        if key.is_null() {
            return Some(&[]);
        }
        Some(ix.store.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Positions (ascending) of rows whose `column` key falls within the
    /// bounds under [`ValueKey`]'s total order, or `None` when the column
    /// carries no *ordered* index. Inverted bounds yield an empty result
    /// rather than panicking in `BTreeMap::range`.
    pub fn range_lookup(
        &self,
        column: usize,
        lower: Bound<&ValueKey>,
        upper: Bound<&ValueKey>,
    ) -> Option<Vec<usize>> {
        let ix = self.indexes.iter().find(|ix| ix.column == column)?;
        let IndexStore::Ordered(map) = &ix.store else {
            return None;
        };
        if let (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) =
            (&lower, &upper)
        {
            let inverted = match a.cmp(b) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => {
                    matches!(lower, Bound::Excluded(_)) || matches!(upper, Bound::Excluded(_))
                }
                std::cmp::Ordering::Less => false,
            };
            if inverted {
                return Some(Vec::new());
            }
        }
        let mut out: Vec<usize> = map
            .range((lower, upper))
            .flat_map(|(_, v)| v)
            .copied()
            .collect();
        out.sort_unstable();
        Some(out)
    }

    /// Number of distinct keys in the index over `column`, or `None` when
    /// the column carries no index. The planner uses this as a selectivity
    /// proxy: more distinct keys → fewer rows per key → cheaper probe.
    pub fn index_distinct_keys(&self, column: usize) -> Option<usize> {
        self.indexes
            .iter()
            .find(|ix| ix.column == column)
            .map(|ix| ix.store.distinct_keys())
    }

    /// `(index name, column name, ordered)` for every index, in creation
    /// order. Used by the SQL dumper to round-trip indexes.
    pub fn index_columns(&self) -> Vec<(String, String, bool)> {
        self.indexes
            .iter()
            .map(|ix| {
                (
                    ix.name.clone(),
                    self.schema.columns[ix.column].name.clone(),
                    ix.is_ordered(),
                )
            })
            .collect()
    }

    /// Validate and coerce one row against the schema without mutating
    /// anything — the first half of [`Table::insert`], split out so a
    /// multi-row insert can validate the whole batch before applying any
    /// of it.
    fn check_row(&self, row: Row) -> Result<Row, DbError> {
        if row.len() != self.schema.arity() {
            return Err(DbError::Type(format!(
                "insert arity mismatch: expected {} values, got {}",
                self.schema.arity(),
                row.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            if v.is_null() && !col.nullable {
                return Err(DbError::Type(format!("column '{}' is NOT NULL", col.name)));
            }
            let cv = v.coerce(col.dtype).map_err(DbError::Type)?;
            out.push(cv);
        }
        Ok(out)
    }

    /// Append an already-validated row and index it.
    fn append_row(&mut self, row: Row) {
        let pos = self.len();
        for ix in &mut self.indexes {
            let key = ValueKey::of(&row[ix.column]);
            if !key.is_null() {
                ix.store.push(key, pos);
            }
        }
        match &mut self.columnar {
            None => self.rows.push(row),
            Some(st) => {
                st.push_row(&row);
                self.invalidate_cache();
            }
        }
    }

    /// Validate, coerce and append one row.
    pub fn insert(&mut self, row: Row) -> Result<(), DbError> {
        let out = self.check_row(row)?;
        self.append_row(out);
        Ok(())
    }

    /// Append many rows atomically: every row is validated and coerced
    /// before any row is applied, so a mid-batch type error leaves the
    /// table and its indexes exactly as they were.
    pub fn insert_all(&mut self, rows: Vec<Row>) -> Result<usize, DbError> {
        let mut checked = Vec::with_capacity(rows.len());
        for r in rows {
            checked.push(self.check_row(r)?);
        }
        let n = checked.len();
        if self.columnar.is_none() {
            self.rows.reserve(n);
        }
        for r in checked {
            self.append_row(r);
        }
        Ok(n)
    }

    /// Remove rows matching `pred`; returns the number removed. `pred` is
    /// called exactly once per row (engine closures count errors through
    /// it). Deletion shifts row positions, so surviving positions are
    /// remapped through every index — O(survivors) per index instead of a
    /// full rebuild.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        // `rows()` serves both layouts (materializing columnar tables once).
        let keep: Vec<bool> = self.rows().iter().map(|r| !pred(r)).collect();
        let removed = keep.iter().filter(|k| !**k).count();
        if removed == 0 {
            return 0;
        }
        // Old position → new position, usize::MAX for deleted rows.
        let mut new_of = vec![usize::MAX; keep.len()];
        let mut next = 0;
        for (i, k) in keep.iter().enumerate() {
            if *k {
                new_of[i] = next;
                next += 1;
            }
        }
        match &mut self.columnar {
            None => {
                let mut i = 0;
                self.rows.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            }
            Some(st) => st.retain(&keep),
        }
        self.invalidate_cache();
        for ix in &mut self.indexes {
            ix.store.remap_positions(&new_of);
        }
        removed
    }

    /// Update rows in place via `f`, which returns true when it modified the
    /// row; returns the number of rows modified. Indexes follow
    /// incrementally: for each changed row, the old key of every indexed
    /// column is captured before the callback and the position moved to the
    /// new key afterwards (no-op when the key is unchanged).
    pub fn update_where(&mut self, mut f: impl FnMut(&mut Row) -> bool) -> usize {
        if self.columnar.is_some() {
            return self.update_where_columnar(&mut f);
        }
        let mut n = 0;
        if self.indexes.is_empty() {
            for r in &mut self.rows {
                if f(r) {
                    n += 1;
                }
            }
            return n;
        }
        let rows = &mut self.rows;
        let indexes = &mut self.indexes;
        let mut old_keys = Vec::with_capacity(indexes.len());
        for (pos, r) in rows.iter_mut().enumerate() {
            old_keys.clear();
            old_keys.extend(indexes.iter().map(|ix| ValueKey::of(&r[ix.column])));
            if !f(r) {
                continue;
            }
            n += 1;
            for (ix, old) in indexes.iter_mut().zip(&old_keys) {
                let new = ValueKey::of(&r[ix.column]);
                if new != *old {
                    ix.store.move_position(old, new, pos);
                }
            }
        }
        n
    }

    /// Columnar flavour of [`Table::update_where`]: materialize each row for
    /// the callback, write changed rows back cell-by-cell (values coerce to
    /// the column type, exactly like the engine's SET path), and move index
    /// positions for rewritten keys.
    fn update_where_columnar(&mut self, f: &mut impl FnMut(&mut Row) -> bool) -> usize {
        let Table {
            schema,
            columnar,
            indexes,
            ..
        } = self;
        let st = columnar.as_mut().expect("columnar layout");
        let mut n = 0;
        let mut changed = false;
        let mut old_keys = Vec::with_capacity(indexes.len());
        for pos in 0..st.len() {
            let mut row = st.materialize_row(pos);
            old_keys.clear();
            old_keys.extend(indexes.iter().map(|ix| ValueKey::of(&row[ix.column])));
            if !f(&mut row) {
                continue;
            }
            n += 1;
            changed = true;
            st.set_row(pos, &row, schema);
            for (ix, old) in indexes.iter_mut().zip(&old_keys) {
                // Key of the *stored* (coerced) value, so index and storage
                // can never disagree.
                let new = ValueKey::of(&st.value(pos, ix.column));
                if new != *old {
                    ix.store.move_position(old, new, pos);
                }
            }
        }
        if changed {
            self.invalidate_cache();
        }
        n
    }

    /// Rebuild every index from scratch. Normal mutation paths maintain
    /// indexes incrementally; this remains public as the brute-force
    /// baseline (the `mutation_batch` microbench measures incremental
    /// maintenance against it) and as a recovery hammer.
    pub fn rebuild_indexes(&mut self) {
        let Table {
            rows,
            columnar,
            indexes,
            ..
        } = self;
        for ix in indexes {
            ix.store = Self::build_index_store(rows, columnar.as_ref(), ix.is_ordered(), ix.column);
        }
    }

    /// Memory accounting for this table: actual bytes of the current layout
    /// plus an estimate of what the *other* layout would cost, so the obs
    /// gauges can report the row-vs-columnar trade-off.
    pub fn memory_footprint(&self) -> TableMemory {
        let n = self.len();
        let arity = self.schema.arity();
        let value_sz = std::mem::size_of::<Value>();
        // Row layout: one Vec header + arity inline Values per row, plus the
        // heap payload of every text cell.
        let row_fixed = n * (std::mem::size_of::<Row>() + arity * value_sz);
        match &self.columnar {
            Some(st) => {
                let m: ColumnarMemory = st.memory();
                TableMemory {
                    rows: n,
                    columnar: true,
                    row_layout_bytes: row_fixed + m.row_text_bytes,
                    columnar_layout_bytes: m.data_bytes + m.dict_bytes,
                    dict_bytes: m.dict_bytes,
                    dict_entries: m.dict_entries,
                }
            }
            None => {
                // Estimate the columnar cost of this row table: 8 bytes per
                // numeric cell, 4-byte codes plus a distinct-string
                // dictionary per text column, one null bit per cell.
                let mut text_heap = 0;
                let mut columnar_est = 0;
                let mut dict_bytes = 0;
                let mut dict_entries = 0;
                for (ci, col) in self.schema.columns.iter().enumerate() {
                    columnar_est += n.div_ceil(8); // null bitmap
                    match col.dtype {
                        DataType::Int | DataType::Float | DataType::Timestamp => {
                            columnar_est += 8 * n;
                        }
                        DataType::Bool => columnar_est += n,
                        DataType::Text => {
                            columnar_est += 4 * n;
                            let mut distinct: HashSet<&str> = HashSet::new();
                            for r in &self.rows {
                                if let Value::Text(s) = &r[ci] {
                                    text_heap += s.len();
                                    distinct.insert(s.as_str());
                                }
                            }
                            dict_entries += distinct.len();
                            for s in distinct {
                                dict_bytes += 2 * (24 + s.len());
                            }
                        }
                    }
                }
                columnar_est += dict_bytes;
                TableMemory {
                    rows: n,
                    columnar: false,
                    row_layout_bytes: row_fixed + text_heap,
                    columnar_layout_bytes: columnar_est,
                    dict_bytes,
                    dict_entries,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn t() -> Table {
        Table::new(
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("bw", DataType::Float),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_coerces_types() {
        let mut tb = t();
        tb.insert(vec![Value::Int(1), Value::Int(5)]).unwrap();
        assert_eq!(tb.rows()[0][1], Value::Float(5.0));
    }

    #[test]
    fn insert_rejects_arity_mismatch() {
        let mut tb = t();
        assert!(tb.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_rejects_null_in_not_null() {
        let mut tb = t();
        assert!(tb.insert(vec![Value::Null, Value::Float(1.0)]).is_err());
        tb.insert(vec![Value::Int(1), Value::Null]).unwrap(); // bw is nullable
    }

    #[test]
    fn insert_all_is_atomic_on_mid_batch_error() {
        let mut tb = t();
        tb.create_index("by_id", "id", true).unwrap();
        tb.insert(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        // Row 2 of 3 violates NOT NULL: nothing from the batch may land.
        let err = tb.insert_all(vec![
            vec![Value::Int(2), Value::Float(2.0)],
            vec![Value::Null, Value::Float(3.0)],
            vec![Value::Int(4), Value::Float(4.0)],
        ]);
        assert!(err.is_err());
        assert_eq!(tb.len(), 1);
        assert_eq!(
            tb.index_lookup(0, &ValueKey::of(&Value::Int(2))).unwrap(),
            &[] as &[usize]
        );
        assert_eq!(
            tb.index_lookup(0, &ValueKey::of(&Value::Int(1))).unwrap(),
            &[0]
        );
        // A type error mid-batch behaves the same.
        let err = tb.insert_all(vec![
            vec![Value::Int(5), Value::Float(5.0)],
            vec![Value::Int(6), Value::Text("abc".into())],
        ]);
        assert!(err.is_err());
        assert_eq!(tb.len(), 1);
        assert_eq!(tb.index_distinct_keys(0), Some(1));
    }

    #[test]
    fn delete_and_update() {
        let mut tb = t();
        for i in 0..5 {
            tb.insert(vec![Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        let n = tb.update_where(|r| {
            if r[0].as_i64().unwrap() % 2 == 0 {
                r[1] = Value::Float(0.0);
                true
            } else {
                false
            }
        });
        assert_eq!(n, 3);
        let n = tb.delete_where(|r| r[1] == Value::Float(0.0));
        assert_eq!(n, 3);
        assert_eq!(tb.len(), 2);
    }

    fn lookup_ids(tb: &Table, key: i64) -> Vec<i64> {
        tb.index_lookup(0, &ValueKey::of(&Value::Int(key)))
            .unwrap()
            .iter()
            .map(|&i| tb.rows()[i][0].as_i64().unwrap())
            .collect()
    }

    #[test]
    fn index_tracks_insert_delete_update() {
        for ordered in [false, true] {
            let mut tb = t();
            tb.create_index("by_id", "id", ordered).unwrap();
            for i in 0..6 {
                tb.insert(vec![Value::Int(i % 3), Value::Float(i as f64)])
                    .unwrap();
            }
            assert_eq!(lookup_ids(&tb, 1), vec![1, 1]);
            assert!(tb
                .index_lookup(0, &ValueKey::of(&Value::Int(9)))
                .unwrap()
                .is_empty());
            // Delete shifts positions; the index must follow.
            tb.delete_where(|r| r[0] == Value::Int(0));
            assert_eq!(lookup_ids(&tb, 2), vec![2, 2]);
            // Update rewrites the key column; the index must follow.
            tb.update_where(|r| {
                if r[0] == Value::Int(1) {
                    r[0] = Value::Int(7);
                    true
                } else {
                    false
                }
            });
            assert!(tb
                .index_lookup(0, &ValueKey::of(&Value::Int(1)))
                .unwrap()
                .is_empty());
            assert_eq!(lookup_ids(&tb, 7), vec![7, 7]);
        }
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        let mut tb = t();
        tb.create_index("by_id", "id", true).unwrap();
        for i in 0..40 {
            tb.insert(vec![Value::Int(i % 7), Value::Float(i as f64)])
                .unwrap();
        }
        tb.delete_where(|r| r[1].as_f64().unwrap() % 3.0 == 0.0);
        tb.update_where(|r| {
            if r[0] == Value::Int(2) {
                r[0] = Value::Int(11);
                true
            } else {
                false
            }
        });
        let incremental: Vec<Vec<i64>> = (0..12).map(|k| lookup_ids(&tb, k)).collect();
        let mut rebuilt = tb.clone();
        rebuilt.rebuild_indexes();
        let reference: Vec<Vec<i64>> = (0..12).map(|k| lookup_ids(&rebuilt, k)).collect();
        assert_eq!(incremental, reference);
    }

    #[test]
    fn range_lookup_over_ordered_index() {
        let mut tb = t();
        tb.create_index("by_id", "id", true).unwrap();
        for i in [5, 1, 3, 2, 4, 3] {
            tb.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        let k = |i: i64| ValueKey::of(&Value::Int(i));
        let ids = |lo: Bound<&ValueKey>, hi: Bound<&ValueKey>| -> Vec<i64> {
            tb.range_lookup(0, lo, hi)
                .unwrap()
                .iter()
                .map(|&p| tb.rows()[p][0].as_i64().unwrap())
                .collect()
        };
        assert_eq!(
            ids(Bound::Included(&k(2)), Bound::Included(&k(4))),
            vec![3, 2, 4, 3]
        );
        assert_eq!(
            ids(Bound::Excluded(&k(2)), Bound::Excluded(&k(5))),
            vec![3, 4, 3]
        );
        assert_eq!(ids(Bound::Unbounded, Bound::Excluded(&k(3))), vec![1, 2]);
        assert_eq!(ids(Bound::Included(&k(4)), Bound::Unbounded), vec![5, 4]);
        // Inverted and empty ranges do not panic.
        assert!(ids(Bound::Included(&k(4)), Bound::Included(&k(2))).is_empty());
        assert!(ids(Bound::Excluded(&k(3)), Bound::Excluded(&k(3))).is_empty());
        assert!(ids(Bound::Included(&k(3)), Bound::Excluded(&k(3))).is_empty());
        // A hash index does not serve ranges.
        let mut hb = t();
        hb.create_index("h", "id", false).unwrap();
        assert!(hb
            .range_lookup(0, Bound::Unbounded, Bound::Unbounded)
            .is_none());
        assert!(!hb.has_ordered_index_on(0));
        assert!(tb.has_ordered_index_on(0));
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut tb = t();
        for i in 0..4 {
            tb.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        tb.create_index("by_id", "id", false).unwrap();
        assert_eq!(lookup_ids(&tb, 2), vec![2]);
        assert!(tb.has_index_on(0));
        assert!(!tb.has_index_on(1));
        assert_eq!(
            tb.index_columns(),
            vec![("by_id".to_string(), "id".to_string(), false)]
        );
    }

    #[test]
    fn index_skips_null_keys() {
        let mut tb = Table::new(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Float),
            ])
            .unwrap(),
        );
        tb.create_index("by_k", "k", true).unwrap();
        tb.insert(vec![Value::Null, Value::Float(1.0)]).unwrap();
        tb.insert(vec![Value::Int(5), Value::Float(2.0)]).unwrap();
        // NULL never matches '='.
        assert!(tb.index_lookup(0, &ValueKey::Null).unwrap().is_empty());
        assert_eq!(
            tb.index_lookup(0, &ValueKey::of(&Value::Int(5))).unwrap(),
            &[1]
        );
        // NULL keys are absent from range scans too.
        assert_eq!(
            tb.range_lookup(0, Bound::Unbounded, Bound::Unbounded)
                .unwrap(),
            vec![1]
        );
    }

    #[test]
    fn duplicate_index_rules() {
        let mut tb = t();
        tb.create_index("one", "id", false).unwrap();
        // Same column again: no-op.
        tb.create_index("two", "id", false).unwrap();
        assert_eq!(tb.index_columns().len(), 1);
        // Same name, different column: error.
        assert!(tb.create_index("one", "bw", false).is_err());
        // Unknown column: error.
        assert!(tb.create_index("x", "zzz", false).is_err());
    }

    #[test]
    fn ordered_request_upgrades_hash_index_in_place() {
        let mut tb = t();
        for i in 0..4 {
            tb.insert(vec![Value::Int(i), Value::Null]).unwrap();
        }
        tb.create_index("h", "id", false).unwrap();
        assert!(tb
            .range_lookup(0, Bound::Unbounded, Bound::Unbounded)
            .is_none());
        tb.create_index("o", "id", true).unwrap();
        // Upgraded in place: same name, now ordered, still one index.
        assert_eq!(
            tb.index_columns(),
            vec![("h".to_string(), "id".to_string(), true)]
        );
        assert_eq!(
            tb.range_lookup(0, Bound::Unbounded, Bound::Unbounded)
                .unwrap(),
            vec![0, 1, 2, 3]
        );
        // A later hash request over the ordered index stays a no-op.
        tb.create_index("h2", "id", false).unwrap();
        assert!(tb.has_ordered_index_on(0));
    }

    fn tc() -> Table {
        Table::new_columnar(
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("bw", DataType::Float),
            ])
            .unwrap(),
        )
    }

    /// A columnar table behaves identically to a row table through the whole
    /// mutation + index surface: same inserts, deletes, updates and lookups.
    #[test]
    fn columnar_matches_row_layout_through_mutations() {
        let mut rt = t();
        let mut ct = tc();
        assert!(ct.is_columnar() && !rt.is_columnar());
        for tb in [&mut rt, &mut ct] {
            tb.create_index("by_id", "id", true).unwrap();
            for i in 0..30 {
                tb.insert(vec![Value::Int(i % 7), Value::Float(i as f64)])
                    .unwrap();
            }
            tb.delete_where(|r| r[1].as_f64().unwrap() % 3.0 == 0.0);
            tb.update_where(|r| {
                if r[0] == Value::Int(2) {
                    r[0] = Value::Int(11);
                    true
                } else {
                    false
                }
            });
        }
        assert_eq!(rt.rows(), ct.rows());
        assert_eq!(rt.len(), ct.len());
        for k in 0..12 {
            assert_eq!(lookup_ids(&rt, k), lookup_ids(&ct, k), "key {k}");
        }
        assert_eq!(
            rt.range_lookup(
                0,
                Bound::Included(&ValueKey::of(&Value::Int(1))),
                Bound::Excluded(&ValueKey::of(&Value::Int(5)))
            ),
            ct.range_lookup(
                0,
                Bound::Included(&ValueKey::of(&Value::Int(1))),
                Bound::Excluded(&ValueKey::of(&Value::Int(5)))
            )
        );
    }

    #[test]
    fn columnar_row_cache_invalidates_on_mutation() {
        let mut tb = tc();
        tb.insert(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        assert_eq!(tb.rows().len(), 1); // cache materializes
        tb.insert(vec![Value::Int(2), Value::Float(2.0)]).unwrap();
        assert_eq!(tb.rows().len(), 2); // cache was invalidated
        tb.update_where(|r| {
            r[1] = Value::Float(9.0);
            true
        });
        assert_eq!(tb.rows()[0][1], Value::Float(9.0));
        tb.delete_where(|r| r[0] == Value::Int(1));
        assert_eq!(tb.rows().len(), 1);
        assert_eq!(tb.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn columnar_insert_all_stays_atomic() {
        let mut tb = tc();
        tb.create_index("by_id", "id", false).unwrap();
        tb.insert(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        let err = tb.insert_all(vec![
            vec![Value::Int(2), Value::Float(2.0)],
            vec![Value::Null, Value::Float(3.0)],
        ]);
        assert!(err.is_err());
        assert_eq!(tb.len(), 1);
        assert!(tb
            .index_lookup(0, &ValueKey::of(&Value::Int(2)))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn memory_footprint_reports_both_layouts() {
        let mut rt = t();
        let mut ct = tc();
        for tb in [&mut rt, &mut ct] {
            for i in 0..100 {
                tb.insert(vec![Value::Int(i), Value::Float(i as f64)])
                    .unwrap();
            }
        }
        let rm = rt.memory_footprint();
        let cm = ct.memory_footprint();
        assert!(!rm.columnar && cm.columnar);
        assert_eq!(rm.rows, 100);
        assert_eq!(cm.rows, 100);
        assert!(rm.row_layout_bytes > 0 && rm.columnar_layout_bytes > 0);
        assert!(cm.columnar_layout_bytes > 0 && cm.row_layout_bytes > 0);
        // Two numeric columns: columnar is far denser than 32-byte Values.
        assert!(cm.columnar_layout_bytes < cm.row_layout_bytes);
    }
}
