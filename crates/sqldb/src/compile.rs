//! Expression compilation: one-time lowering of [`SqlExpr`] trees into
//! evaluators with pre-resolved column indices.
//!
//! The interpreted evaluator in [`crate::expr`] resolves every column
//! reference with [`Schema::index_of`] on every row — a string scan over the
//! column list. For scans over thousands of rows that resolution dominates.
//! [`CompiledExpr`] does the name resolution exactly once per statement and
//! then evaluates directly against a `&[Value]` row slice.
//!
//! Semantics are identical to the interpreter by construction: the
//! value-level operator logic ([`crate::expr::binary_values`],
//! [`crate::expr::scalar_fn`], [`crate::expr::truthy`],
//! the LIKE matcher) is shared, and lazily-detected errors stay
//! lazy — an unknown column or function inside a short-circuited `AND`/`OR`
//! branch errors only if that branch is actually evaluated, just like the
//! interpreter.

use crate::error::DbError;
use crate::expr::{binary_values, scalar_fn, truthy, LikePattern};
use crate::schema::Schema;
use crate::sql::{SqlExpr, UnOp};
use crate::value::Value;

/// A compiled row expression. Built once per statement with [`compile`],
/// evaluated per row with [`CompiledExpr::eval`].
#[derive(Debug, Clone)]
pub(crate) enum CompiledExpr {
    /// Literal value.
    Lit(Value),
    /// Column reference resolved to a row index.
    Col(usize),
    /// Column reference that did not resolve; errors when evaluated
    /// (matching the interpreter's lazy `NoSuchColumn`).
    BadCol(String),
    /// Arithmetic negation.
    Neg(Box<CompiledExpr>),
    /// Logical NOT.
    Not(Box<CompiledExpr>),
    /// Short-circuit AND (NULL treated as false).
    And(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Short-circuit OR.
    Or(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Non-logical binary operator (comparison / arithmetic).
    Binary(&'static str, Box<CompiledExpr>, Box<CompiledExpr>),
    /// Scalar function call. Aggregates and unknown functions error when
    /// evaluated, like the interpreter.
    Func {
        /// Lower-cased function name.
        name: String,
        /// Compiled arguments.
        args: Vec<CompiledExpr>,
        /// True when `name` is an aggregate (rejected at eval time).
        is_aggregate: bool,
    },
    /// `x [NOT] IN (...)`.
    InList {
        /// Tested expression.
        expr: Box<CompiledExpr>,
        /// Candidate list.
        list: Vec<CompiledExpr>,
        /// NOT IN.
        negated: bool,
    },
    /// `x IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<CompiledExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
    /// `x [NOT] LIKE 'pat'`.
    Like {
        /// Tested expression.
        expr: Box<CompiledExpr>,
        /// Pattern literal, tokenized once at compile time.
        pattern: LikePattern,
        /// NOT LIKE.
        negated: bool,
    },
}

/// Lower `expr` against `schema`. Never fails: unresolved names become
/// [`CompiledExpr::BadCol`], which errors only if evaluated.
pub(crate) fn compile(expr: &SqlExpr, schema: &Schema) -> CompiledExpr {
    match expr {
        SqlExpr::Lit(v) => CompiledExpr::Lit(v.clone()),
        SqlExpr::Col(name) => match schema.index_of(name) {
            Some(i) => CompiledExpr::Col(i),
            None => CompiledExpr::BadCol(name.clone()),
        },
        SqlExpr::Unary(UnOp::Neg, x) => CompiledExpr::Neg(Box::new(compile(x, schema))),
        SqlExpr::Unary(UnOp::Not, x) => CompiledExpr::Not(Box::new(compile(x, schema))),
        SqlExpr::Binary("AND", l, r) => {
            CompiledExpr::And(Box::new(compile(l, schema)), Box::new(compile(r, schema)))
        }
        SqlExpr::Binary("OR", l, r) => {
            CompiledExpr::Or(Box::new(compile(l, schema)), Box::new(compile(r, schema)))
        }
        SqlExpr::Binary(op, l, r) => CompiledExpr::Binary(
            op,
            Box::new(compile(l, schema)),
            Box::new(compile(r, schema)),
        ),
        SqlExpr::Func { name, args, .. } => CompiledExpr::Func {
            name: name.clone(),
            args: args.iter().map(|a| compile(a, schema)).collect(),
            is_aggregate: crate::aggregate::AggKind::from_name(name).is_some(),
        },
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => CompiledExpr::InList {
            expr: Box::new(compile(expr, schema)),
            list: list.iter().map(|e| compile(e, schema)).collect(),
            negated: *negated,
        },
        SqlExpr::IsNull { expr, negated } => CompiledExpr::IsNull {
            expr: Box::new(compile(expr, schema)),
            negated: *negated,
        },
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => CompiledExpr::Like {
            expr: Box::new(compile(expr, schema)),
            pattern: LikePattern::parse(pattern),
            negated: *negated,
        },
    }
}

impl CompiledExpr {
    /// Evaluate against one row slice.
    pub(crate) fn eval(&self, row: &[Value]) -> Result<Value, DbError> {
        match self {
            CompiledExpr::Lit(v) => Ok(v.clone()),
            CompiledExpr::Col(i) => Ok(row[*i].clone()),
            CompiledExpr::BadCol(name) => Err(DbError::NoSuchColumn(name.clone())),
            CompiledExpr::Neg(x) => match x.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(DbError::Type(format!("cannot negate {other}"))),
            },
            CompiledExpr::Not(x) => Ok(Value::Bool(!truthy(&x.eval(row)?))),
            CompiledExpr::And(l, r) => {
                if !truthy(&l.eval(row)?) {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(truthy(&r.eval(row)?)))
            }
            CompiledExpr::Or(l, r) => {
                if truthy(&l.eval(row)?) {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(truthy(&r.eval(row)?)))
            }
            CompiledExpr::Binary(op, l, r) => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                binary_values(op, lv, rv)
            }
            CompiledExpr::Func {
                name,
                args,
                is_aggregate,
            } => {
                if *is_aggregate {
                    return Err(DbError::Execution(format!(
                        "aggregate function {name}() is not allowed in this context"
                    )));
                }
                let vals: Result<Vec<Value>, DbError> = args.iter().map(|a| a.eval(row)).collect();
                scalar_fn(name, &vals?)
            }
            CompiledExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let mut found = false;
                for item in list {
                    let w = item.eval(row)?;
                    if v.sql_eq(&w) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            CompiledExpr::IsNull { expr, negated } => {
                Ok(Value::Bool(expr.eval(row)?.is_null() != *negated))
            }
            CompiledExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                let matched = match &v {
                    Value::Text(s) => pattern.matches(s),
                    Value::Null => false,
                    other => pattern.matches(&other.to_string()),
                };
                Ok(Value::Bool(matched != *negated))
            }
        }
    }

    /// Evaluate as a WHERE predicate.
    pub(crate) fn matches(&self, row: &[Value]) -> Result<bool, DbError> {
        Ok(truthy(&self.eval(row)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{eval as interp, RowCtx};
    use crate::schema::Column;
    use crate::sql::{parse_statement, Stmt};
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Float),
            Column::new("s", DataType::Text),
            Column::new("n", DataType::Int),
        ])
        .unwrap()
    }

    fn where_expr(src: &str) -> SqlExpr {
        match parse_statement(&format!("SELECT a FROM t WHERE {src}")).unwrap() {
            Stmt::Select(s) => s.where_clause.unwrap(),
            other => panic!("{other:?}"),
        }
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(4),
            Value::Float(2.5),
            Value::Text("ufs".into()),
            Value::Null,
        ]
    }

    /// Compiled and interpreted evaluation agree (values and errors) on a
    /// catalogue of expression shapes.
    #[test]
    fn agrees_with_interpreter() {
        let schema = schema();
        let r = row();
        for src in [
            "a = 4",
            "a < b",
            "s = 'ufs' AND a >= 4",
            "s = 'nfs' OR b > 2",
            "n = 0",
            "n <> 0",
            "n IS NULL",
            "a IS NOT NULL",
            "a + 1 = 5",
            "a / 8 = 0.5",
            "a % 3 = 1",
            "-a = -4",
            "a * b = 10.0",
            "n + 1 IS NULL",
            "s IN ('nfs', 'ufs')",
            "s NOT IN ('nfs')",
            "s LIKE 'uf%'",
            "s NOT LIKE 'n%'",
            "abs(-2) = 2",
            "upper(s) = 'UFS'",
            "length(s) = 3",
            "coalesce(n, a) = 4",
            "round(b) = 3",
            "NOT (a = 1 OR b <> 2)",
            "a / 0 = 1",
            "a % 0 = 1",
            "sqrt(-1) = 1",
            "zzz = 1",
            "avg(a) = 1",
            "nope(a) = 1",
        ] {
            let e = where_expr(src);
            let compiled = compile(&e, &schema).eval(&r);
            let interpreted = interp(
                &e,
                &RowCtx {
                    schema: &schema,
                    row: &r,
                },
            );
            match (&compiled, &interpreted) {
                (Ok(c), Ok(i)) => assert_eq!(c, i, "{src}"),
                (Err(c), Err(i)) => assert_eq!(c, i, "{src}"),
                other => panic!("{src}: {other:?}"),
            }
        }
    }

    /// Errors on a short-circuited branch stay lazy, exactly like the
    /// interpreter: the unknown column is never reached.
    #[test]
    fn short_circuit_keeps_errors_lazy() {
        let schema = schema();
        let r = row();
        let e = where_expr("a = 0 AND zzz = 1");
        assert_eq!(compile(&e, &schema).eval(&r).unwrap(), Value::Bool(false));
        let e = where_expr("a = 4 OR zzz = 1");
        assert_eq!(compile(&e, &schema).eval(&r).unwrap(), Value::Bool(true));
        let e = where_expr("a = 4 AND zzz = 1");
        assert!(matches!(
            compile(&e, &schema).eval(&r),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    /// Qualified-name fallbacks resolve like `Schema::index_of`.
    #[test]
    fn qualified_resolution() {
        let schema = Schema::new(vec![
            Column::new("t.id", DataType::Int),
            Column::new("u.id", DataType::Int),
        ])
        .unwrap();
        let r = vec![Value::Int(1), Value::Int(2)];
        let e = where_expr("id = 1");
        assert_eq!(compile(&e, &schema).eval(&r).unwrap(), Value::Bool(true));
        let e = where_expr("u.id = 2");
        assert_eq!(compile(&e, &schema).eval(&r).unwrap(), Value::Bool(true));
    }
}
