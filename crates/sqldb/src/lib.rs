//! `sqldb` — an embedded, thread-safe relational database engine.
//!
//! perfbase stores all persistent data in an SQL database; the original used
//! a PostgreSQL server (paper §4.2). This crate is the in-process substitute:
//! it provides typed tables, an SQL text front-end (lexer → parser →
//! planner → executor), grouping and aggregation, temporary tables, and a
//! simulated multi-node [`cluster`] used to reproduce the paper's query
//! parallelisation experiment (Fig. 3).
//!
//! Design decisions mirror what perfbase actually needs:
//!
//! * Query elements communicate **through temporary tables** — so temp
//!   tables are first-class and cheap.
//! * Source elements perform **shared read access** on run tables while each
//!   element writes only its own output table — so tables are individually
//!   `RwLock`-guarded and the engine itself is `Sync`.
//! * Operators lean on **in-database aggregation** (`avg`, `stddev`, …)
//!   because that beats row-at-a-time processing in the frontend language —
//!   the claim benchmarked by the `microbench` binary in the bench crate.
//! * Point lookups on run/hash columns dominate the import and query paths —
//!   so tables support **secondary hash indexes** (`CREATE INDEX`) and
//!   **ordered indexes** (`CREATE ORDERED INDEX`) that additionally serve
//!   `IN (...)` lists and range conjuncts, SELECTs compile their
//!   expressions once per statement, and equi-joins hash the smaller side
//!   (see DESIGN.md "Query execution pipeline").
//!
//! Concurrent analysts are served with **MVCC snapshot reads**: every
//! committed mutation bumps a global epoch, [`Engine::snapshot`] pins the
//! current version of every table (one `Arc` clone each, taken under a
//! shared commit gate so the set is transaction-consistent), and writers
//! copy-on-write any table a snapshot still pins. Readers never block
//! writers and vice versa; see [`Snapshot`] and [`Engine::query_at`].
//!
//! Not implemented (not needed by perfbase): multi-statement write
//! transactions, NULL-aware three-valued logic (NULL comparisons are
//! false), and subqueries.
//!
//! # Example
//!
//! ```
//! use sqldb::Engine;
//! let db = Engine::new();
//! db.execute("CREATE TABLE runs (id INTEGER, fs TEXT, bw FLOAT)").unwrap();
//! db.execute("INSERT INTO runs VALUES (1, 'ufs', 214.5), (2, 'nfs', 98.1), (3, 'ufs', 222.0)").unwrap();
//! let rows = db.query("SELECT fs, avg(bw) FROM runs GROUP BY fs ORDER BY fs").unwrap();
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows.column_names(), &["fs", "avg(bw)"]);
//! ```

pub mod aggregate;
pub mod cluster;
mod column;
mod compile;
mod dump;
mod engine;
mod error;
mod exec;
mod expr;
pub mod repl;
mod schema;
mod snapshot;
pub mod sql;
pub mod sync;
mod table;
mod value;
pub mod wal;

pub use column::{ColumnStore, ColumnarMemory};
pub use engine::{Engine, ResultSet};
pub use error::DbError;
pub use repl::{Promotion, ReplOptions, ReplReport, Replicator};
pub use schema::{Column, Schema};
pub use snapshot::Snapshot;
pub use table::{Table, TableMemory};
pub use value::{format_timestamp, parse_timestamp, DataType, Value, ValueKey};
pub use wal::{FrameTap, IoFailpoint, RecoveryReport, SyncPolicy, Wal, WalOptions};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Engine {
        let db = Engine::new();
        db.execute("CREATE TABLE bw (run INTEGER, fs TEXT, chunk INTEGER, mode TEXT, mbps FLOAT)")
            .unwrap();
        db.execute(
            "INSERT INTO bw VALUES \
             (1, 'ufs', 1024, 'write', 59.0), \
             (1, 'ufs', 1024, 'read', 227.1), \
             (1, 'ufs', 2097152, 'read', 516.5), \
             (2, 'nfs', 1024, 'write', 11.2), \
             (2, 'nfs', 1024, 'read', 88.4), \
             (2, 'nfs', 2097152, 'read', 120.9)",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select_where() {
        let db = sample_db();
        let rs = db
            .query("SELECT mbps FROM bw WHERE fs = 'ufs' AND mode = 'read' ORDER BY mbps")
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows()[0][0], Value::Float(227.1));
        assert_eq!(rs.rows()[1][0], Value::Float(516.5));
    }

    #[test]
    fn end_to_end_group_aggregate() {
        let db = sample_db();
        let rs = db
            .query("SELECT fs, max(mbps), count(mbps) FROM bw GROUP BY fs ORDER BY fs")
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(
            rs.rows()[0],
            vec![
                Value::Text("nfs".into()),
                Value::Float(120.9),
                Value::Int(3)
            ]
        );
        assert_eq!(
            rs.rows()[1],
            vec![
                Value::Text("ufs".into()),
                Value::Float(516.5),
                Value::Int(3)
            ]
        );
    }

    #[test]
    fn end_to_end_join() {
        let db = sample_db();
        db.execute("CREATE TABLE meta (run INTEGER, host TEXT)")
            .unwrap();
        db.execute("INSERT INTO meta VALUES (1, 'grisu0'), (2, 'grisu1')")
            .unwrap();
        let rs = db
            .query(
                "SELECT meta.host, bw.mbps FROM bw JOIN meta ON bw.run = meta.run \
                 WHERE bw.mode = 'write' ORDER BY bw.mbps DESC",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows()[0][0], Value::Text("grisu0".into()));
    }

    #[test]
    fn end_to_end_update_delete() {
        let db = sample_db();
        let n = db
            .execute("UPDATE bw SET mbps = 0.0 WHERE fs = 'nfs'")
            .unwrap();
        assert_eq!(n, 3);
        let n = db.execute("DELETE FROM bw WHERE mbps = 0.0").unwrap();
        assert_eq!(n, 3);
        let rs = db.query("SELECT count(run) FROM bw").unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(3));
    }

    #[test]
    fn temp_tables_listed_separately() {
        let db = Engine::new();
        db.execute("CREATE TABLE perm (x INTEGER)").unwrap();
        db.execute("CREATE TEMP TABLE tmp1 (x INTEGER)").unwrap();
        assert!(db.table_names().contains(&"perm".to_string()));
        assert!(db.table_names().contains(&"tmp1".to_string()));
        assert!(db.temp_table_names().contains(&"tmp1".to_string()));
        assert!(!db.temp_table_names().contains(&"perm".to_string()));
        db.drop_temp_tables();
        assert!(!db.table_names().contains(&"tmp1".to_string()));
        assert!(db.table_names().contains(&"perm".to_string()));
    }
}
