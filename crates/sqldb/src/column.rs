//! Columnar table storage: per-column typed vectors, dictionary-encoded
//! strings and null bitmaps.
//!
//! A [`ColumnStore`] holds the same logical rows as the row layout in
//! [`crate::table`], decomposed into one typed vector per schema column:
//!
//! * `INTEGER`/`TIMESTAMP` → `Vec<i64>`, `FLOAT` → `Vec<f64>`,
//!   `BOOLEAN` → `Vec<bool>`;
//! * `TEXT` → dictionary encoding: a `Vec<u32>` of codes into an
//!   insertion-ordered string dictionary (low-cardinality run metadata like
//!   filesystem names collapses to a handful of entries);
//! * NULLs → a bitmap per column (bit set = NULL); the data slot of a NULL
//!   cell holds the type's default and must never be interpreted.
//!
//! Invariants relied on by the vectorized execution path in `exec`:
//!
//! * **Variant purity** — every non-NULL cell of a column is exactly the
//!   declared type's [`Value`] variant. [`Value::coerce`] enforces this on
//!   every insert/update path, so typed vectors need no per-cell tags.
//! * **Dictionary codes are dense and stable** — `codes[i] < dict.len()`
//!   always; entries are append-only, so deletes may leave unreferenced
//!   (dead) entries behind but never invalidate a stored code.
//! * **Positions are row numbers** — position `p` in every column vector and
//!   bitmap refers to the same logical row, identical to the row index in
//!   the row layout.

use crate::schema::Schema;
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// One bit per row; a set bit marks the cell NULL.
#[derive(Debug, Clone, Default)]
pub(crate) struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    nulls: usize,
}

impl NullBitmap {
    fn push(&mut self, is_null: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[w] |= 1 << b;
            self.nulls += 1;
        }
        self.len += 1;
    }

    /// Is row `i` NULL?
    #[inline]
    pub(crate) fn is_null(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of NULL rows.
    pub(crate) fn null_count(&self) -> usize {
        self.nulls
    }

    fn set(&mut self, i: usize, null: bool) {
        let was = self.is_null(i);
        if was == null {
            return;
        }
        self.words[i / 64] ^= 1 << (i % 64);
        if null {
            self.nulls += 1;
        } else {
            self.nulls -= 1;
        }
    }

    /// Keep only rows whose `keep` flag is true, preserving order.
    fn retain(&mut self, keep: &[bool]) {
        let mut out = NullBitmap::default();
        for (i, k) in keep.iter().enumerate() {
            if *k {
                out.push(self.is_null(i));
            }
        }
        *self = out;
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// Dictionary-encoded TEXT column: `codes[i]` indexes into `dict`.
#[derive(Debug, Clone, Default)]
pub(crate) struct DictColumn {
    pub(crate) codes: Vec<u32>,
    pub(crate) nulls: NullBitmap,
    dict: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl DictColumn {
    /// All dictionary entries in code order (may include dead entries after
    /// deletes).
    pub(crate) fn dict(&self) -> &[String] {
        &self.dict
    }

    /// Code of `s` if it has ever been stored in this column.
    pub(crate) fn code_of(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(c) = self.lookup.get(s) {
            return *c;
        }
        let c = u32::try_from(self.dict.len()).expect("dictionary overflow");
        self.dict.push(s.to_string());
        self.lookup.insert(s.to_string(), c);
        c
    }

    fn push(&mut self, v: &Value) {
        match v {
            Value::Null => {
                self.codes.push(0);
                self.nulls.push(true);
            }
            Value::Text(s) => {
                let c = self.intern(s);
                self.codes.push(c);
                self.nulls.push(false);
            }
            other => panic!("columnar TEXT column got non-text value {other:?}"),
        }
    }
}

/// One typed column vector plus its null bitmap.
#[derive(Debug, Clone)]
pub(crate) enum ColumnVec {
    Int { data: Vec<i64>, nulls: NullBitmap },
    Float { data: Vec<f64>, nulls: NullBitmap },
    Bool { data: Vec<bool>, nulls: NullBitmap },
    Timestamp { data: Vec<i64>, nulls: NullBitmap },
    Text(DictColumn),
}

impl ColumnVec {
    fn new(dtype: DataType) -> ColumnVec {
        match dtype {
            DataType::Int => ColumnVec::Int {
                data: Vec::new(),
                nulls: NullBitmap::default(),
            },
            DataType::Float => ColumnVec::Float {
                data: Vec::new(),
                nulls: NullBitmap::default(),
            },
            DataType::Bool => ColumnVec::Bool {
                data: Vec::new(),
                nulls: NullBitmap::default(),
            },
            DataType::Timestamp => ColumnVec::Timestamp {
                data: Vec::new(),
                nulls: NullBitmap::default(),
            },
            DataType::Text => ColumnVec::Text(DictColumn::default()),
        }
    }

    /// Null bitmap of this column.
    pub(crate) fn nulls(&self) -> &NullBitmap {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Bool { nulls, .. }
            | ColumnVec::Timestamp { nulls, .. } => nulls,
            ColumnVec::Text(d) => &d.nulls,
        }
    }

    /// Numeric image of row `i` under the engine's `as_f64` coercion.
    /// Caller must have checked `!is_null(i)`; meaningless for TEXT.
    #[inline]
    pub(crate) fn f64_at(&self, i: usize) -> f64 {
        match self {
            ColumnVec::Int { data, .. } | ColumnVec::Timestamp { data, .. } => data[i] as f64,
            ColumnVec::Float { data, .. } => data[i],
            ColumnVec::Bool { data, .. } => f64::from(data[i]),
            ColumnVec::Text(_) => f64::NAN,
        }
    }

    fn push(&mut self, v: &Value) {
        match self {
            ColumnVec::Int { data, nulls } => match v {
                Value::Null => {
                    data.push(0);
                    nulls.push(true);
                }
                Value::Int(i) => {
                    data.push(*i);
                    nulls.push(false);
                }
                other => panic!("columnar INTEGER column got {other:?}"),
            },
            ColumnVec::Float { data, nulls } => match v {
                Value::Null => {
                    data.push(0.0);
                    nulls.push(true);
                }
                Value::Float(f) => {
                    data.push(*f);
                    nulls.push(false);
                }
                other => panic!("columnar FLOAT column got {other:?}"),
            },
            ColumnVec::Bool { data, nulls } => match v {
                Value::Null => {
                    data.push(false);
                    nulls.push(true);
                }
                Value::Bool(b) => {
                    data.push(*b);
                    nulls.push(false);
                }
                other => panic!("columnar BOOLEAN column got {other:?}"),
            },
            ColumnVec::Timestamp { data, nulls } => match v {
                Value::Null => {
                    data.push(0);
                    nulls.push(true);
                }
                Value::Timestamp(t) => {
                    data.push(*t);
                    nulls.push(false);
                }
                other => panic!("columnar TIMESTAMP column got {other:?}"),
            },
            ColumnVec::Text(d) => d.push(v),
        }
    }

    /// Reconstruct the [`Value`] of row `i` — exactly the variant that was
    /// stored (coercion already ran on the way in), so materialized rows are
    /// byte-identical to what the row layout would hold.
    pub(crate) fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            ColumnVec::Float { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            ColumnVec::Bool { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            ColumnVec::Timestamp { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Timestamp(data[i])
                }
            }
            ColumnVec::Text(d) => {
                if d.nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Text(d.dict[d.codes[i] as usize].clone())
                }
            }
        }
    }

    /// Overwrite row `i` with `v`, coercing to the column type (the engine
    /// coerces on every update path; direct callers get the same treatment).
    fn set(&mut self, i: usize, v: &Value, dtype: DataType) {
        let cv = v
            .clone()
            .coerce(dtype)
            .unwrap_or_else(|e| panic!("columnar update: {e}"));
        match self {
            ColumnVec::Int { data, nulls } | ColumnVec::Timestamp { data, nulls } => match cv {
                Value::Null => nulls.set(i, true),
                Value::Int(x) | Value::Timestamp(x) => {
                    data[i] = x;
                    nulls.set(i, false);
                }
                _ => unreachable!(),
            },
            ColumnVec::Float { data, nulls } => match cv {
                Value::Null => nulls.set(i, true),
                Value::Float(x) => {
                    data[i] = x;
                    nulls.set(i, false);
                }
                _ => unreachable!(),
            },
            ColumnVec::Bool { data, nulls } => match cv {
                Value::Null => nulls.set(i, true),
                Value::Bool(x) => {
                    data[i] = x;
                    nulls.set(i, false);
                }
                _ => unreachable!(),
            },
            ColumnVec::Text(d) => match cv {
                Value::Null => d.nulls.set(i, true),
                Value::Text(s) => {
                    d.codes[i] = d.intern(&s);
                    d.nulls.set(i, false);
                }
                _ => unreachable!(),
            },
        }
    }

    fn retain(&mut self, keep: &[bool]) {
        let mut i = 0;
        let mut pred = move |_: &_| {
            let k = keep[i];
            i += 1;
            k
        };
        match self {
            ColumnVec::Int { data, nulls } | ColumnVec::Timestamp { data, nulls } => {
                data.retain(|v| pred(&(*v as f64)));
                nulls.retain(keep);
            }
            ColumnVec::Float { data, nulls } => {
                data.retain(|v| pred(v));
                nulls.retain(keep);
            }
            ColumnVec::Bool { data, nulls } => {
                data.retain(|v| pred(&f64::from(*v)));
                nulls.retain(keep);
            }
            ColumnVec::Text(d) => {
                d.codes.retain(|c| pred(&(*c as f64)));
                d.nulls.retain(keep);
            }
        }
    }

    fn data_bytes(&self) -> usize {
        match self {
            ColumnVec::Int { data, nulls } | ColumnVec::Timestamp { data, nulls } => {
                data.capacity() * 8 + nulls.heap_bytes()
            }
            ColumnVec::Float { data, nulls } => data.capacity() * 8 + nulls.heap_bytes(),
            ColumnVec::Bool { data, nulls } => data.capacity() + nulls.heap_bytes(),
            ColumnVec::Text(d) => d.codes.capacity() * 4 + d.nulls.heap_bytes(),
        }
    }
}

/// Memory accounting for one columnar table (see [`ColumnStore::memory`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColumnarMemory {
    /// Bytes in typed vectors, code vectors and null bitmaps.
    pub data_bytes: usize,
    /// Bytes in dictionary strings and their lookup maps.
    pub dict_bytes: usize,
    /// Total dictionary entries across all TEXT columns.
    pub dict_entries: usize,
    /// Heap bytes of the text payload as a row layout would store it (one
    /// `String` allocation per non-NULL cell) — the input to the
    /// row-vs-columnar gauge.
    pub row_text_bytes: usize,
}

/// Columnar backing store of one table. See the module docs for layout and
/// invariants.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    cols: Vec<ColumnVec>,
    len: usize,
}

impl ColumnStore {
    pub(crate) fn new(schema: &Schema) -> ColumnStore {
        ColumnStore {
            cols: schema
                .columns
                .iter()
                .map(|c| ColumnVec::new(c.dtype))
                .collect(),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The typed vector of column `i`.
    pub(crate) fn col(&self, i: usize) -> &ColumnVec {
        &self.cols[i]
    }

    /// Append one already-validated (coerced) row.
    pub(crate) fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.push(v);
        }
        self.len += 1;
    }

    /// Value of cell (`pos`, `col`).
    pub(crate) fn value(&self, pos: usize, col: usize) -> Value {
        self.cols[col].value(pos)
    }

    /// Materialize one full row.
    pub(crate) fn materialize_row(&self, pos: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value(pos)).collect()
    }

    /// Materialize every row in position order.
    pub(crate) fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|p| self.materialize_row(p)).collect()
    }

    /// Write a full row back at `pos` (update path).
    pub(crate) fn set_row(&mut self, pos: usize, row: &[Value], schema: &Schema) {
        for ((c, v), def) in self.cols.iter_mut().zip(row).zip(&schema.columns) {
            c.set(pos, v, def.dtype);
        }
    }

    /// Drop rows whose `keep` flag is false, preserving order. Dictionary
    /// entries are never collected; stored codes stay valid.
    pub(crate) fn retain(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        for c in &mut self.cols {
            c.retain(keep);
        }
        self.len = keep.iter().filter(|k| **k).count();
    }

    /// Memory accounting over every column.
    pub fn memory(&self) -> ColumnarMemory {
        let mut m = ColumnarMemory::default();
        for c in &self.cols {
            m.data_bytes += c.data_bytes();
            if let ColumnVec::Text(d) = c {
                m.dict_entries += d.dict.len();
                for s in &d.dict {
                    // String header + payload, once in the dict vec and once
                    // as a lookup key.
                    m.dict_bytes += 2 * (24 + s.capacity());
                }
                m.dict_bytes += d.lookup.capacity() * (24 + 4);
                for (i, code) in d.codes.iter().enumerate() {
                    if !d.nulls.is_null(i) {
                        m.row_text_bytes += d.dict[*code as usize].len();
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("fs", DataType::Text),
            Column::new("bw", DataType::Float),
            Column::new("ok", DataType::Bool),
            Column::new("at", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn row(i: i64, fs: Option<&str>, bw: Option<f64>) -> Vec<Value> {
        vec![
            Value::Int(i),
            fs.map_or(Value::Null, |s| Value::Text(s.into())),
            bw.map_or(Value::Null, Value::Float),
            Value::Bool(i % 2 == 0),
            Value::Timestamp(1000 + i),
        ]
    }

    #[test]
    fn roundtrips_rows_byte_identically() {
        let s = schema();
        let mut st = ColumnStore::new(&s);
        let rows = vec![
            row(1, Some("ufs"), Some(1.5)),
            row(2, None, None),
            row(3, Some("nfs"), Some(-0.0)),
            row(4, Some("ufs"), Some(f64::NAN)),
        ];
        for r in &rows {
            st.push_row(r);
        }
        assert_eq!(st.len(), 4);
        let back = st.to_rows();
        for (a, b) in rows.iter().zip(&back) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                // Bit-exact on floats (PartialEq equates NaNs but not -0.0/0.0
                // signs; check bits directly).
                match (x, y) {
                    (Value::Float(f), Value::Float(g)) => {
                        assert_eq!(f.to_bits(), g.to_bits());
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn dictionary_interns_and_reuses_codes() {
        let s = schema();
        let mut st = ColumnStore::new(&s);
        for i in 0..100 {
            st.push_row(&row(i, Some(if i % 2 == 0 { "ufs" } else { "nfs" }), None));
        }
        let ColumnVec::Text(d) = st.col(1) else {
            panic!("not a dict column");
        };
        assert_eq!(d.dict(), ["ufs".to_string(), "nfs".to_string()]);
        assert_eq!(d.code_of("ufs"), Some(0));
        assert_eq!(d.code_of("nfs"), Some(1));
        assert_eq!(d.code_of("pvfs"), None);
        assert_eq!(d.nulls.null_count(), 0);
    }

    #[test]
    fn retain_keeps_order_and_null_bits() {
        let s = schema();
        let mut st = ColumnStore::new(&s);
        for i in 0..10 {
            st.push_row(&row(
                i,
                if i % 3 == 0 { None } else { Some("x") },
                Some(i as f64),
            ));
        }
        let keep: Vec<bool> = (0..10).map(|i| i % 2 == 1).collect();
        st.retain(&keep);
        assert_eq!(st.len(), 5);
        let back = st.to_rows();
        let ids: Vec<i64> = back.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 3, 5, 7, 9]);
        assert_eq!(back[1][1], Value::Null); // row id=3: 3 % 3 == 0
        assert_eq!(back[0][1], Value::Text("x".into()));
    }

    #[test]
    fn set_row_updates_cells_and_interns_new_text() {
        let s = schema();
        let mut st = ColumnStore::new(&s);
        st.push_row(&row(1, Some("ufs"), Some(1.0)));
        st.push_row(&row(2, Some("nfs"), Some(2.0)));
        let mut r = st.materialize_row(0);
        r[1] = Value::Text("pvfs".into());
        r[2] = Value::Null;
        st.set_row(0, &r, &s);
        assert_eq!(st.value(0, 1), Value::Text("pvfs".into()));
        assert_eq!(st.value(0, 2), Value::Null);
        assert_eq!(st.value(1, 1), Value::Text("nfs".into()));
        let ColumnVec::Text(d) = st.col(1) else {
            panic!()
        };
        assert_eq!(d.dict().len(), 3);
    }

    #[test]
    fn memory_accounts_dictionary() {
        let s = schema();
        let mut st = ColumnStore::new(&s);
        for i in 0..50 {
            st.push_row(&row(i, Some("ufs"), Some(0.0)));
        }
        let m = st.memory();
        assert!(m.data_bytes > 0);
        assert_eq!(m.dict_entries, 1);
        assert!(m.dict_bytes > 0);
        assert_eq!(m.row_text_bytes, 50 * 3);
    }
}
