//! `perfbase serve` — put the experiment database on the network — and
//! `perfbase sql` — run one SQL SELECT from the shell.
//!
//! `serve` opens the database (optionally with its write-ahead log), hands
//! the engine to the [`pbserver`] front end, prints a `listening on ADDR`
//! line immediately (scripts parse it to learn the bound port when
//! `--addr` uses port 0), and blocks until a client posts `/shutdown`. On
//! clean shutdown the database is saved (or checkpointed, with `--wal`)
//! before the command returns.
//!
//! `sql` exists so shell scripts can diff server responses against the
//! CLI: both render results through the same `ResultSet::render_tsv`, so
//! a `/query` response body and `perfbase sql` output for the same
//! statement are byte-identical.

use super::args::{Args, OptSpec};
use super::{err, open_db, open_db_durable, recovery_summary, save_db, wal_options, with};
use pbserver::{Server, ServerConfig};
use std::io::Write;
use std::path::Path;

/// `perfbase serve --db FILE [--addr A] [--threads N] [--max-sessions N]
/// [--queue N] [--wal] [--sync P]`.
pub fn cmd_serve(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[
            OptSpec {
                name: "addr",
                takes_value: true,
            },
            OptSpec {
                name: "threads",
                takes_value: true,
            },
            OptSpec {
                name: "max-sessions",
                takes_value: true,
            },
            OptSpec {
                name: "queue",
                takes_value: true,
            },
            OptSpec {
                name: "wal",
                takes_value: false,
            },
            OptSpec {
                name: "sync",
                takes_value: true,
            },
        ]),
    )
    .map_err(err)?;
    let db_path = a.require("db").map_err(err)?;
    let mut config = ServerConfig {
        addr: a.get("addr").unwrap_or("127.0.0.1:7381").to_string(),
        ..ServerConfig::default()
    };
    if let Some(t) = a.get("threads") {
        config.threads = t.parse().map_err(|_| format!("bad --threads '{t}'"))?;
    }
    if let Some(m) = a.get("max-sessions") {
        config.max_sessions = m.parse().map_err(|_| format!("bad --max-sessions '{m}'"))?;
    }
    if let Some(q) = a.get("queue") {
        config.queue = q.parse().map_err(|_| format!("bad --queue '{q}'"))?;
    }

    let (db, recovery) = if a.flag("wal") {
        let (db, report) = open_db_durable(db_path, wal_options(&a)?)?;
        (db, Some(report))
    } else {
        (open_db(db_path)?, None)
    };
    let handle = Server::start(db.engine().clone(), config).map_err(err)?;

    // Announce the bound address right away — scripts block on this line.
    let mut stdout = std::io::stdout();
    if let Some(line) = recovery.as_ref().and_then(recovery_summary) {
        let _ = writeln!(stdout, "{line}");
    }
    let _ = writeln!(stdout, "listening on {}", handle.addr());
    let _ = stdout.flush();

    // Park until a client posts /shutdown (or the process is killed).
    handle.join();

    // Clean shutdown: persist everything the served sessions ingested.
    if db.engine().has_wal() {
        db.checkpoint(Path::new(db_path)).map_err(err)?;
    } else {
        save_db(&db, db_path)?;
    }
    Ok(format!("server stopped; {db_path} saved"))
}

/// `perfbase sql --db FILE 'SELECT …'` — run one SELECT (or
/// `EXPLAIN [ANALYZE]`) and print it as TSV, the server's wire format.
pub fn cmd_sql(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(argv, &with(&[])).map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    let stmts = a.positionals();
    if stmts.len() != 1 {
        return Err("sql: exactly one SELECT statement expected".to_string());
    }
    let rs = db.engine().query(&stmts[0]).map_err(err)?;
    Ok(rs.render_tsv())
}
