//! The `perfbase` command-line frontend (paper §4: "it is invoked by
//! providing the perfbase command (like setup, input or query) plus
//! required arguments").
//!
//! Commands:
//!
//! * `setup --def exp.xml --db file` — create an experiment database
//! * `update --def exp.xml --db file --user U` — evolve the definition
//! * `input --db file --desc input.xml [--user U] [--force] [--policy P]
//!   [--fixed var=value] [--merge] [--wal] [--sync always|group|off]
//!   files…` — import runs; with `--wal` every statement is written to a
//!   write-ahead log (`file.wal`) before it is applied, so a crash in the
//!   middle of an import loses at most the unsynced tail
//! * `checkpoint --db file` — replay any leftover write-ahead log into the
//!   database, rewrite the SQL dump atomically and compact the log
//! * `query --db file --spec query.xml [--user U] [--parallel] [--nodes N]
//!   [--replicas R] [--latency none|lan|fast] [--no-pushdown] [--timings]`
//!   — without `--parallel`, `--nodes N` shards the run data across an
//!   N-node simulated cluster and pushes aggregations to the data
//!   (transfer statistics are printed after the outputs); `--replicas R`
//!   additionally keeps R replica copies of each shard, serves reads from
//!   fresh replicas round-robin, and prints a `== replication ==` report
//! * `info --db file` / `ls --db file [--param name=value] [--since/--until]`
//! * `missing --db file param…` — sweep-hole detection
//! * `delete --db file --run N --user U`
//! * `show --db file --run N` — display a run's variable contents (§3.4)
//! * `check --kind experiment|input|query file` — validate a control file
//! * `dump --db file` — print the SQL dump
//! * `suspect --db file --value V --group p1,p2` — anomaly screening (§6)
//! * `stats [--reset] [--export-experiment --out dir]` — print the
//!   process-wide engine telemetry; with `--export-experiment`, write the
//!   metrics as a perfbase experiment (definition + input description +
//!   run file) so they can be imported and queried through perfbase itself
//! * `serve --db file [--addr A] [--threads N] [--max-sessions N]
//!   [--queue N] [--wal --sync P]` — serve the database over HTTP for
//!   concurrent analysts (see `docs/HTTP_API.md`); prints `listening on
//!   ADDR` immediately and blocks until a client posts `/shutdown`, then
//!   saves (or checkpoints) the database
//! * `sql --db file 'SELECT …'` — run one SELECT and print it as TSV,
//!   byte-identical to the server's `/query` response body
//!
//! `query` additionally accepts `--trace file`, writing the span tree of
//! the query's execution (DAG elements, SQL statements, cluster traffic)
//! to `file`. Because telemetry is per-process, `input` and `query` also
//! accept `--stats-export dir`, running the `--export-experiment` export
//! after the work completes — the way to capture a real workload's
//! metrics from the command line.
//!
//! Every command returns its textual output, making the frontend fully
//! testable without process spawning.

pub mod args;
mod serve;
mod stats;

use args::{Args, OptSpec};
use perfbase_core::experiment::{AccessLevel, ExperimentDb};
use perfbase_core::import::{Importer, MissingPolicy};
use perfbase_core::input::input_description_from_str;
use perfbase_core::query::spec::query_from_str;
use perfbase_core::query::{ParallelQueryRunner, Placement, QueryRunner};
use perfbase_core::status::{self, RunCriteria};
use perfbase_core::xmldef;
use sqldb::cluster::{Cluster, LatencyModel};
use sqldb::{Engine, IoFailpoint, RecoveryReport, ReplOptions, SyncPolicy, WalOptions};
use std::path::Path;
use std::sync::Arc;

/// Run one CLI invocation; `argv` excludes the program name.
pub fn run(argv: Vec<String>) -> Result<String, String> {
    let mut it = argv.into_iter();
    let command = it.next().ok_or_else(usage)?;
    let rest: Vec<String> = it.collect();
    match command.as_str() {
        "setup" => cmd_setup(rest),
        "update" => cmd_update(rest),
        "input" => cmd_input(rest),
        "checkpoint" => cmd_checkpoint(rest),
        "query" => cmd_query(rest),
        "info" => cmd_info(rest),
        "ls" => cmd_ls(rest),
        "missing" => cmd_missing(rest),
        "delete" => cmd_delete(rest),
        "check" => cmd_check(rest),
        "dump" => cmd_dump(rest),
        "show" => cmd_show(rest),
        "suspect" => cmd_suspect(rest),
        "stats" => stats::cmd_stats(rest),
        "serve" => serve::cmd_serve(rest),
        "sql" => serve::cmd_sql(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: perfbase <setup|update|input|checkpoint|query|info|ls|show|missing|delete|check|dump|suspect|stats|serve|sql> [options]\n\
     run `perfbase help` for details"
        .to_string()
}

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

fn open_db(path: &str) -> Result<ExperimentDb, String> {
    let engine = Engine::load_from_file(Path::new(path)).map_err(err)?;
    ExperimentDb::open(Arc::new(engine)).map_err(err)
}

fn save_db(db: &ExperimentDb, path: &str) -> Result<(), String> {
    db.engine().save_to_file(Path::new(path)).map_err(err)
}

/// Build [`WalOptions`] from `--sync` and the fault-injection flag
/// `--crash-after-frames` (used by the crash-recovery recipes to simulate
/// a process kill mid-import).
fn wal_options(a: &Args) -> Result<WalOptions, String> {
    let sync = match a.get("sync").unwrap_or("group") {
        "always" => SyncPolicy::Always,
        "group" => SyncPolicy::group_default(),
        "off" => SyncPolicy::Off,
        other => {
            return Err(format!(
                "bad --sync '{other}' (expected always, group or off)"
            ))
        }
    };
    let failpoint = match a.get("crash-after-frames") {
        Some(n) => {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad --crash-after-frames '{n}'"))?;
            Arc::new(IoFailpoint::crash_after_frames(n))
        }
        None => Arc::new(IoFailpoint::none()),
    };
    Ok(WalOptions { sync, failpoint })
}

/// Open a database with its write-ahead log attached, replaying any frames
/// a previous crash left behind.
fn open_db_durable(path: &str, opts: WalOptions) -> Result<(ExperimentDb, RecoveryReport), String> {
    ExperimentDb::open_durable(Path::new(path), opts).map_err(err)
}

/// One-line human summary of a recovery, or `None` if the log was clean.
fn recovery_summary(report: &RecoveryReport) -> Option<String> {
    if report.frames_replayed == 0
        && report.frames_skipped == 0
        && report.torn_bytes == 0
        && report.replay_errors == 0
    {
        return None;
    }
    let mut out = format!(
        "recovered {} frame(s) from write-ahead log ({} torn byte(s) truncated, {} replay error(s))",
        report.frames_replayed, report.torn_bytes, report.replay_errors
    );
    if report.frames_skipped > 0 {
        out.push_str(&format!(
            "; {} already-checkpointed frame(s) skipped",
            report.frames_skipped
        ));
    }
    Some(out)
}

const COMMON: &[OptSpec] = &[
    OptSpec {
        name: "db",
        takes_value: true,
    },
    OptSpec {
        name: "user",
        takes_value: true,
    },
];

fn with(extra: &[OptSpec]) -> Vec<OptSpec> {
    COMMON.iter().chain(extra).copied().collect()
}

fn user_of(a: &Args) -> String {
    a.get("user")
        .map(str::to_string)
        .unwrap_or_else(|| "anonymous".to_string())
}

fn cmd_setup(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[OptSpec {
            name: "def",
            takes_value: true,
        }]),
    )
    .map_err(err)?;
    let def_path = a.require("def").map_err(err)?;
    let db_path = a.require("db").map_err(err)?;
    let xml = std::fs::read_to_string(def_path).map_err(err)?;
    let mut def = xmldef::definition_from_str(&xml).map_err(err)?;
    if let Some(user) = a.get("user") {
        def.grant(user, AccessLevel::Admin);
    }
    let name = def.meta.name.clone();
    let vars = def.variables.len();
    let db = ExperimentDb::create(Arc::new(Engine::new()), def).map_err(err)?;
    save_db(&db, db_path)?;
    Ok(format!(
        "created experiment '{name}' with {vars} variables in {db_path}"
    ))
}

fn cmd_update(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[OptSpec {
            name: "def",
            takes_value: true,
        }]),
    )
    .map_err(err)?;
    let db_path = a.require("db").map_err(err)?;
    let xml = std::fs::read_to_string(a.require("def").map_err(err)?).map_err(err)?;
    let new_def = xmldef::definition_from_str(&xml).map_err(err)?;
    let db = open_db(db_path)?;
    db.check_access(&user_of(&a), AccessLevel::Admin)
        .map_err(err)?;
    let mut added = 0;
    let mut removed = 0;
    db.update_definition(|def| {
        // Evolution: adopt meta/users from the new definition; add new
        // variables, drop vanished ones, replace changed ones.
        def.meta = new_def.meta.clone();
        def.users = new_def.users.clone();
        let old_names: Vec<String> = def.variables.iter().map(|v| v.name.clone()).collect();
        for name in &old_names {
            if new_def.variable(name).is_none() {
                def.remove_variable(name)?;
                removed += 1;
            }
        }
        for v in &new_def.variables {
            if def.variable(&v.name).is_some() {
                def.modify_variable(v.clone())?;
            } else {
                def.add_variable(v.clone())?;
                added += 1;
            }
        }
        Ok(())
    })
    .map_err(err)?;
    save_db(&db, db_path)?;
    Ok(format!(
        "updated definition: {added} variable(s) added, {removed} removed"
    ))
}

fn cmd_input(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[
            OptSpec {
                name: "desc",
                takes_value: true,
            },
            OptSpec {
                name: "policy",
                takes_value: true,
            },
            OptSpec {
                name: "fixed",
                takes_value: true,
            },
            OptSpec {
                name: "at",
                takes_value: true,
            },
            OptSpec {
                name: "force",
                takes_value: false,
            },
            OptSpec {
                name: "merge",
                takes_value: false,
            },
            OptSpec {
                name: "wal",
                takes_value: false,
            },
            OptSpec {
                name: "sync",
                takes_value: true,
            },
            OptSpec {
                name: "crash-after-frames",
                takes_value: true,
            },
            OptSpec {
                name: "stats-export",
                takes_value: true,
            },
        ]),
    )
    .map_err(err)?;
    let db_path = a.require("db").map_err(err)?;
    let (db, recovery) = if a.flag("wal") {
        let (db, report) = open_db_durable(db_path, wal_options(&a)?)?;
        (db, Some(report))
    } else {
        (open_db(db_path)?, None)
    };
    db.check_access(&user_of(&a), AccessLevel::Input)
        .map_err(err)?;

    let policy = match a.get("policy").unwrap_or("allow") {
        "allow" => MissingPolicy::AllowMissing,
        "discard" => MissingPolicy::DiscardIncomplete,
        "fail" => MissingPolicy::FailIncomplete,
        other => return Err(format!("unknown policy '{other}' (allow|discard|fail)")),
    };
    let now = match a.get("at") {
        Some(t) => sqldb::parse_timestamp(t).ok_or_else(|| format!("bad --at time '{t}'"))?,
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0),
    };
    let importer = Importer::new(&db)
        .with_policy(policy)
        .force_duplicates(a.flag("force"))
        .at_time(now);

    let descs = a.get_all("desc");
    if descs.is_empty() {
        return Err("missing required option --desc".to_string());
    }
    let files = a.positionals();
    if files.is_empty() {
        return Err("no input files given".to_string());
    }

    let load_desc = |path: &str| -> Result<perfbase_core::input::InputDescription, String> {
        let xml = std::fs::read_to_string(path).map_err(err)?;
        let mut desc = input_description_from_str(&xml).map_err(err)?;
        for fv in a.get_all("fixed") {
            let (var, content) = fv
                .split_once('=')
                .ok_or_else(|| format!("--fixed expects var=value, got '{fv}'"))?;
            desc.set_fixed_value(var, content);
        }
        Ok(desc)
    };

    let report = if a.flag("merge") {
        // Mapping d: one description per file, one merged run.
        if descs.len() != files.len() {
            return Err(format!(
                "--merge needs one --desc per file ({} descs, {} files)",
                descs.len(),
                files.len()
            ));
        }
        let parsed: Result<Vec<_>, String> = descs.iter().map(|d| load_desc(d)).collect();
        let parsed = parsed?;
        let contents: Result<Vec<String>, String> = files
            .iter()
            .map(|f| std::fs::read_to_string(f).map_err(err))
            .collect();
        let contents = contents?;
        let sources: Vec<(&perfbase_core::input::InputDescription, &str, &str)> = parsed
            .iter()
            .zip(files)
            .zip(&contents)
            .map(|((d, f), c)| (d, f.as_str(), c.as_str()))
            .collect();
        importer.import_merged(&sources).map_err(err)?
    } else {
        if descs.len() != 1 {
            return Err("exactly one --desc expected without --merge".to_string());
        }
        let desc = load_desc(&descs[0])?;
        let contents: Result<Vec<String>, String> = files
            .iter()
            .map(|f| std::fs::read_to_string(f).map_err(err))
            .collect();
        let contents = contents?;
        let pairs: Vec<(&str, &str)> = files
            .iter()
            .zip(&contents)
            .map(|(f, c)| (f.as_str(), c.as_str()))
            .collect();
        importer.import_files(&desc, &pairs).map_err(err)?
    };

    if db.engine().has_wal() {
        // The log already holds every statement durably; fold it into the
        // dump and compact so the next open starts from a clean checkpoint.
        db.checkpoint(Path::new(db_path)).map_err(err)?;
    } else {
        save_db(&db, db_path)?;
    }
    let mut out = String::new();
    if let Some(line) = recovery.as_ref().and_then(recovery_summary) {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(
        "imported {} run(s), discarded {}, skipped {} duplicate file(s)",
        report.runs_created.len(),
        report.runs_discarded,
        report.duplicates_skipped
    ));
    if let Some(dir) = a.get("stats-export") {
        out.push('\n');
        out.push_str(&stats::export_experiment(Path::new(dir), &user_of(&a))?);
    }
    Ok(out)
}

fn cmd_checkpoint(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[OptSpec {
            name: "sync",
            takes_value: true,
        }]),
    )
    .map_err(err)?;
    let db_path = a.require("db").map_err(err)?;
    let (db, report) = open_db_durable(db_path, wal_options(&a)?)?;
    let frames = db.checkpoint(Path::new(db_path)).map_err(err)?;
    let mut out = String::new();
    if let Some(line) = recovery_summary(&report) {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(
        "checkpointed {db_path}: {frames} log frame(s) compacted"
    ));
    Ok(out)
}

/// Parse a `--latency` option value into a [`LatencyModel`].
fn latency_model(a: &Args, default: LatencyModel) -> Result<LatencyModel, String> {
    match a.get("latency") {
        None => Ok(default),
        Some("none") => Ok(LatencyModel::none()),
        Some("lan") => Ok(LatencyModel::lan()),
        Some("fast") => Ok(LatencyModel::fast_interconnect()),
        Some(other) => Err(format!(
            "bad --latency '{other}' (expected none, lan or fast)"
        )),
    }
}

fn cmd_query(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[
            OptSpec {
                name: "spec",
                takes_value: true,
            },
            OptSpec {
                name: "nodes",
                takes_value: true,
            },
            OptSpec {
                name: "latency",
                takes_value: true,
            },
            OptSpec {
                name: "replicas",
                takes_value: true,
            },
            OptSpec {
                name: "parallel",
                takes_value: false,
            },
            OptSpec {
                name: "no-pushdown",
                takes_value: false,
            },
            OptSpec {
                name: "timings",
                takes_value: false,
            },
            OptSpec {
                name: "trace",
                takes_value: true,
            },
            OptSpec {
                name: "stats-export",
                takes_value: true,
            },
        ]),
    )
    .map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    db.check_access(&user_of(&a), AccessLevel::Query)
        .map_err(err)?;
    let xml = std::fs::read_to_string(a.require("spec").map_err(err)?).map_err(err)?;
    let spec = query_from_str(&xml).map_err(err)?;
    let nodes = a
        .get("nodes")
        .map(|n| n.parse::<usize>().map_err(|_| "bad --nodes".to_string()))
        .transpose()?
        .map(|n| n.max(1));

    let run_query = || -> Result<_, String> { run_query_outcome(&a, &db, spec, nodes) };
    let (outcome, replication) = if let Some(path) = a.get("trace") {
        // Collect the span tree for this query only: attach the sink,
        // run, detach before any error propagates.
        let collector = obs::TraceCollector::new();
        obs::set_sink(Some(collector.clone()));
        let result = run_query();
        obs::set_sink(None);
        std::fs::write(path, collector.render()).map_err(err)?;
        result?
    } else {
        run_query()?
    };

    let mut ids: Vec<&String> = outcome.artifacts.keys().collect();
    ids.sort();
    let mut out = String::new();
    for id in ids {
        out.push_str(&format!("== output element '{id}' ==\n"));
        out.push_str(&outcome.artifacts[id]);
        out.push('\n');
    }
    if let Some(t) = &outcome.transfer {
        out.push_str(&format!(
            "== transfer ==\n{} message(s), {} row(s) moved, {:?} simulated latency\n",
            t.messages, t.rows, t.simulated
        ));
    }
    if let Some(rep) = &replication {
        out.push_str(rep);
    }
    if a.flag("timings") {
        out.push_str("== element timings ==\n");
        for t in &outcome.timings {
            out.push_str(&format!("{:<10} {:<8} {:?}\n", t.id, t.kind, t.wall));
        }
        out.push_str(&format!(
            "source fraction: {:.1}%\n",
            outcome.source_time_fraction() * 100.0
        ));
    }
    if let Some(dir) = a.get("stats-export") {
        out.push_str(&stats::export_experiment(Path::new(dir), &user_of(&a))?);
    }
    Ok(out)
}

/// Execute a parsed query spec with the execution strategy selected by the
/// `query` command's flags.
fn run_query_outcome(
    a: &Args,
    db: &ExperimentDb,
    spec: perfbase_core::query::spec::QuerySpec,
    nodes: Option<usize>,
) -> Result<(perfbase_core::query::QueryOutcome, Option<String>), String> {
    if a.flag("parallel") {
        // Element-level parallelism: DAG elements round-robin over worker
        // nodes, the experiment data stays on the frontend.
        let outcome = match nodes {
            Some(n) => {
                let latency = latency_model(a, LatencyModel::fast_interconnect())?;
                let cluster = Cluster::new(n, latency);
                ParallelQueryRunner::new(db)
                    .on_cluster(&cluster, Placement::RoundRobin)
                    .run(spec)
                    .map_err(err)?
            }
            None => ParallelQueryRunner::new(db).run(spec).map_err(err)?,
        };
        Ok((outcome, None))
    } else if let Some(n) = nodes {
        // Data-level distribution: shard the run data across the cluster
        // and push decomposable aggregations to the owning nodes.
        let replicas = a
            .get("replicas")
            .map(|r| r.parse::<usize>().map_err(|_| "bad --replicas".to_string()))
            .transpose()?
            .unwrap_or(0);
        let latency = latency_model(a, LatencyModel::lan())?;
        let cluster = Arc::new(Cluster::with_frontend(db.engine().clone(), n, latency));
        db.attach_cluster_replicated(
            cluster,
            ReplOptions {
                replicas,
                ..ReplOptions::default()
            },
        )
        .map_err(err)?;
        let outcome = QueryRunner::new(db)
            .pushdown(!a.flag("no-pushdown"))
            .run(spec)
            .map_err(err)?;
        // The replication report must be read before detach drops the
        // replicator with the sharding context.
        let replication = db
            .sharding()
            .and_then(|sh| sh.replicator().map(|r| r.report()))
            .map(|rep| {
                format!(
                    "== replication ==\n\
                     {} frame(s) shipped, {} applied, {} replica read(s), \
                     {} primary read(s), {} stale fallback(s), {} failover(s)\n",
                    rep.frames_shipped,
                    rep.frames_applied,
                    rep.replica_reads,
                    rep.primary_reads,
                    rep.stale_fallbacks,
                    rep.failovers
                )
            });
        db.detach_cluster().map_err(err)?;
        Ok((outcome, replication))
    } else {
        Ok((QueryRunner::new(db).run(spec).map_err(err)?, None))
    }
}

fn cmd_info(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(argv, &with(&[])).map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    status::experiment_info(&db).map_err(err)
}

fn cmd_ls(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[
            OptSpec {
                name: "param",
                takes_value: true,
            },
            OptSpec {
                name: "since",
                takes_value: true,
            },
            OptSpec {
                name: "until",
                takes_value: true,
            },
        ]),
    )
    .map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    let mut criteria = RunCriteria::default();
    for p in a.get_all("param") {
        let (name, value) = p
            .split_once('=')
            .ok_or_else(|| format!("--param expects name=value, got '{p}'"))?;
        criteria
            .parameter_equals
            .push((name.to_string(), value.to_string()));
    }
    if let Some(s) = a.get("since") {
        criteria.since = sqldb::parse_timestamp(s);
    }
    if let Some(u) = a.get("until") {
        criteria.until = sqldb::parse_timestamp(u);
    }
    let runs = status::list_runs(&db, &criteria).map_err(err)?;
    let mut out = format!("{} run(s)\n", runs.len());
    for r in runs {
        let params: Vec<String> = r
            .once_values
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        out.push_str(&format!(
            "run {:>4}  imported {}  datasets {:>5}  {}\n",
            r.run_id,
            sqldb::format_timestamp(r.created),
            r.datasets,
            params.join(" ")
        ));
    }
    Ok(out)
}

fn cmd_missing(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(argv, &with(&[])).map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    let params: Vec<&str> = a.positionals().iter().map(String::as_str).collect();
    if params.is_empty() {
        return Err("missing: name the sweep parameters, e.g. `missing --db f fs nodes`".into());
    }
    let holes = status::missing_sweep_points(&db, &params).map_err(err)?;
    if holes.is_empty() {
        return Ok("no holes: every observed parameter combination has runs\n".to_string());
    }
    let mut out = format!("{} missing combination(s):\n", holes.len());
    for h in holes {
        let combo: Vec<String> = h
            .combination
            .iter()
            .map(|(p, v)| format!("{p}={v}"))
            .collect();
        out.push_str(&format!("  {}\n", combo.join(" ")));
    }
    Ok(out)
}

fn cmd_delete(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[OptSpec {
            name: "run",
            takes_value: true,
        }]),
    )
    .map_err(err)?;
    let db_path = a.require("db").map_err(err)?;
    let db = open_db(db_path)?;
    db.check_access(&user_of(&a), AccessLevel::Admin)
        .map_err(err)?;
    let run: i64 = a
        .require("run")
        .map_err(err)?
        .parse()
        .map_err(|_| "bad --run id".to_string())?;
    db.delete_run(run).map_err(err)?;
    save_db(&db, db_path)?;
    Ok(format!("deleted run {run}"))
}

fn cmd_check(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &[OptSpec {
            name: "kind",
            takes_value: true,
        }],
    )
    .map_err(err)?;
    let kind = a.require("kind").map_err(err)?;
    let file = a
        .positionals()
        .first()
        .ok_or_else(|| "check: name the control file".to_string())?;
    let xml = std::fs::read_to_string(file).map_err(err)?;
    match kind {
        "experiment" => {
            let def = xmldef::definition_from_str(&xml).map_err(err)?;
            Ok(format!(
                "OK: experiment '{}' with {} variables",
                def.meta.name,
                def.variables.len()
            ))
        }
        "input" => {
            let desc = input_description_from_str(&xml).map_err(err)?;
            Ok(format!(
                "OK: input description with {} locations",
                desc.locations.len()
            ))
        }
        "query" => {
            let spec = query_from_str(&xml).map_err(err)?;
            perfbase_core::query::QueryDag::build(spec.clone()).map_err(err)?;
            Ok(format!(
                "OK: query '{}' with {} elements",
                spec.name,
                spec.elements.len()
            ))
        }
        other => Err(format!("unknown kind '{other}' (experiment|input|query)")),
    }
}

fn cmd_dump(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(argv, &with(&[])).map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    Ok(db.engine().dump_sql())
}

/// `perfbase show` — §3.4: "see the actual content of variables for a
/// run": the run constants plus the full data-set table.
fn cmd_show(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[OptSpec {
            name: "run",
            takes_value: true,
        }]),
    )
    .map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    db.check_access(&user_of(&a), AccessLevel::Query)
        .map_err(err)?;
    let run: i64 = a
        .require("run")
        .map_err(err)?
        .parse()
        .map_err(|_| "bad --run id".to_string())?;
    let s = db.run_summary(run).map_err(err)?;
    let mut out = format!(
        "run {} (imported {})\n",
        s.run_id,
        sqldb::format_timestamp(s.created)
    );
    for (name, value) in &s.once_values {
        out.push_str(&format!("  {name:<14} = {value}\n"));
    }
    let (cols, rows) = db.run_datasets(run).map_err(err)?;
    out.push_str(&format!("{} data set(s)\n", rows.len()));
    if !rows.is_empty() {
        let mut widths: Vec<usize> = cols.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let header: Vec<String> = cols.clone();
        out.push_str(&format!("  {}\n", fmt_row(&header)));
        for row in &cells {
            out.push_str(&format!("  {}\n", fmt_row(row)));
        }
    }
    Ok(out)
}

/// `perfbase suspect` — the §6 outlook feature: automatically screen one
/// result value for deviating runs and unstable parameter combinations.
fn cmd_suspect(argv: Vec<String>) -> Result<String, String> {
    use perfbase_core::anomaly::{screen_experiment, AnomalyConfig};
    use perfbase_core::query::spec::{Filter, FilterOp, RunFilter, SourceSpec};
    let a = Args::parse(
        argv,
        &with(&[
            OptSpec {
                name: "value",
                takes_value: true,
            },
            OptSpec {
                name: "group",
                takes_value: true,
            },
            OptSpec {
                name: "param",
                takes_value: true,
            },
            OptSpec {
                name: "threshold",
                takes_value: true,
            },
            OptSpec {
                name: "max-rel-stddev",
                takes_value: true,
            },
            OptSpec {
                name: "min-samples",
                takes_value: true,
            },
        ]),
    )
    .map_err(err)?;
    let db = open_db(a.require("db").map_err(err)?)?;
    db.check_access(&user_of(&a), AccessLevel::Query)
        .map_err(err)?;

    let value = a.require("value").map_err(err)?.to_string();
    let carry: Vec<String> = a
        .require("group")
        .map_err(err)?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let mut filters = Vec::new();
    for p in a.get_all("param") {
        let (name, v) = p
            .split_once('=')
            .ok_or_else(|| format!("--param expects name=value, got '{p}'"))?;
        filters.push(Filter {
            parameter: name.to_string(),
            op: FilterOp::Eq,
            value: v.to_string(),
        });
    }
    let mut config = AnomalyConfig::default();
    if let Some(t) = a.get("threshold") {
        config.threshold = t.parse().map_err(|_| "bad --threshold".to_string())?;
    }
    if let Some(t) = a.get("max-rel-stddev") {
        config.max_rel_stddev = t.parse().map_err(|_| "bad --max-rel-stddev".to_string())?;
    }
    if let Some(t) = a.get("min-samples") {
        config.min_samples = t.parse().map_err(|_| "bad --min-samples".to_string())?;
    }

    let source = SourceSpec {
        filters,
        run_filter: RunFilter::default(),
        carry,
        values: vec![value],
    };
    let report = screen_experiment(&db, &source, &config).map_err(err)?;
    Ok(report.render())
}
