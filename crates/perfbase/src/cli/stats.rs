//! `perfbase stats` — engine telemetry inspection and self-hosted export.
//!
//! * `perfbase stats` prints the process-wide counters, histograms and
//!   per-statement-class matrix collected by the `obs` crate.
//! * `perfbase stats --reset` prints them and then zeroes every metric.
//! * `perfbase stats --export-experiment --out DIR` dogfoods perfbase on
//!   itself: it writes an experiment description, an input description and
//!   a run file under `DIR` so the collected metrics can be imported with
//!   `perfbase setup` + `perfbase input` and analysed through the normal
//!   query DAG.
//!
//! Metrics are process-wide but not cross-process: a bare `perfbase stats`
//! invocation reports only its own (idle) process. To export the metrics
//! of an actual workload, pass `--stats-export DIR` to `input` or `query`,
//! which runs the same export after the command's work, in-process.

use super::args::{Args, OptSpec};
use super::{err, open_db, user_of, with};
use perfbase_core::experiment::{ExperimentDef, Meta, Person, VarKind, Variable};
use perfbase_core::xmldef;
use sqldb::DataType;
use std::path::Path;

/// Entry point for the `stats` command.
pub(super) fn cmd_stats(argv: Vec<String>) -> Result<String, String> {
    let a = Args::parse(
        argv,
        &with(&[
            OptSpec {
                name: "reset",
                takes_value: false,
            },
            OptSpec {
                name: "export-experiment",
                takes_value: false,
            },
            OptSpec {
                name: "out",
                takes_value: true,
            },
        ]),
    )
    .map_err(err)?;

    if a.flag("export-experiment") {
        let dir = Path::new(a.get("out").unwrap_or("."));
        return export_experiment(dir, &user_of(&a));
    }

    // With --db, load the database and report per-table memory (row vs
    // columnar layout bytes, dictionary size); this also refreshes the
    // `mem.*` gauges, so they appear in the counter listing below.
    let mem = match a.get("db") {
        Some(path) => {
            let db = open_db(path)?;
            Some(memory_section(&db.engine().refresh_memory_gauges()))
        }
        None => None,
    };

    let mut out = obs::render_stats();
    if let Some(mem) = mem {
        out.push_str(&mem);
    }
    if a.flag("reset") {
        obs::reset();
        return Ok(format!("{out}\n(metrics reset)\n"));
    }
    Ok(out)
}

/// Render the per-table memory report. Row tables show the estimated cost
/// of a columnar copy and vice versa, so the layout trade-off is visible
/// either way.
fn memory_section(report: &[(String, sqldb::TableMemory)]) -> String {
    let mut out = String::from("\nTable memory:\n");
    out.push_str(&format!(
        "  {:<24} {:>8}  {:<8} {:>12} {:>15} {:>10} {:>10}\n",
        "table", "rows", "layout", "row_bytes", "columnar_bytes", "dict_ents", "dict_bytes"
    ));
    for (name, m) in report {
        out.push_str(&format!(
            "  {:<24} {:>8}  {:<8} {:>12} {:>15} {:>10} {:>10}\n",
            name,
            m.rows,
            if m.columnar { "columnar" } else { "row" },
            m.row_layout_bytes,
            m.columnar_layout_bytes,
            m.dict_entries,
            m.dict_bytes,
        ));
    }
    out
}

/// The experiment definition describing the exported telemetry: one run of
/// the perfbase process itself, with one data-set tuple per statement
/// class.
fn telemetry_definition(user: &str) -> Result<ExperimentDef, String> {
    let meta = Meta {
        name: "perfbase_telemetry".to_string(),
        project: "perfbase".to_string(),
        synopsis: "Self-hosted perfbase engine telemetry".to_string(),
        description: "Per-statement-class engine metrics (statement counts, \
                      execution latency, write-ahead-log traffic) exported by \
                      `perfbase stats --export-experiment`."
            .to_string(),
        performed_by: Person {
            name: user.to_string(),
            organization: "perfbase".to_string(),
        },
    };
    let mut def = ExperimentDef::new(meta, user);
    let vars = [
        Variable::new("host", VarKind::Parameter, DataType::Text)
            .once()
            .with_synopsis("host the metrics were collected on"),
        Variable::new("stmt_class", VarKind::Parameter, DataType::Text)
            .with_synopsis("statement class (select, insert, ddl, ...)"),
        Variable::new("stmt_count", VarKind::ResultValue, DataType::Int)
            .with_synopsis("statements executed in this class"),
        Variable::new("exec_avg_us", VarKind::ResultValue, DataType::Float)
            .with_synopsis("mean execution latency per statement, microseconds"),
        Variable::new("wal_appends", VarKind::ResultValue, DataType::Int)
            .with_synopsis("write-ahead-log frames appended"),
        Variable::new("wal_fsyncs", VarKind::ResultValue, DataType::Int)
            .with_synopsis("write-ahead-log fsync calls attributed to this class"),
        Variable::new("fsync_avg_us", VarKind::ResultValue, DataType::Float)
            .with_synopsis("mean fsync latency attributed to this class, microseconds"),
    ];
    for v in vars {
        def.add_variable(v).map_err(err)?;
    }
    Ok(def)
}

/// Input description matching [`telemetry_run_file`]: `host` from its named
/// line, the class table from the whitespace-separated block after the
/// header row.
const TELEMETRY_INPUT_XML: &str = r#"<?xml version="1.0"?>
<input>
  <named>
    <variable>host</variable>
    <match>host =</match>
  </named>
  <tabular>
    <start match="class statements exec_avg_us"/>
    <column index="1"><variable>stmt_class</variable></column>
    <column index="2"><variable>stmt_count</variable></column>
    <column index="3"><variable>exec_avg_us</variable></column>
    <column index="4"><variable>wal_appends</variable></column>
    <column index="5"><variable>wal_fsyncs</variable></column>
    <column index="6"><variable>fsync_avg_us</variable></column>
  </tabular>
</input>
"#;

/// Render the current per-class telemetry as a perfbase run file.
fn telemetry_run_file() -> String {
    let mut out = String::from("perfbase engine telemetry export\nhost = local\n\n");
    out.push_str("class statements exec_avg_us wal_appends wal_fsyncs fsync_avg_us\n");
    for c in obs::class_snapshot() {
        out.push_str(&format!(
            "{} {} {:.3} {} {} {:.3}\n",
            c.class,
            c.statements,
            c.exec_avg_ns() / 1000.0,
            c.wal_appends,
            c.wal_fsyncs,
            c.fsync_avg_ns() / 1000.0,
        ));
    }
    out
}

/// Write the three export files under `dir` and report what was written.
/// Also reachable from `input`/`query` via `--stats-export DIR`, so the
/// export captures the process that actually did the work (metrics are
/// per-process; a standalone `perfbase stats` process has none).
pub(super) fn export_experiment(dir: &Path, user: &str) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(err)?;
    let def = telemetry_definition(user)?;
    let files = [
        (
            "telemetry_experiment.xml",
            xmldef::definition_to_string(&def),
        ),
        ("telemetry_input.xml", TELEMETRY_INPUT_XML.to_string()),
        ("telemetry_run.txt", telemetry_run_file()),
    ];
    let mut out = String::new();
    for (name, content) in files {
        let path = dir.join(name);
        std::fs::write(&path, content).map_err(err)?;
        out.push_str(&format!("wrote {}\n", path.display()));
    }
    out.push_str(
        "import with: perfbase setup --def telemetry_experiment.xml --db telemetry.pbdb \
         && perfbase input --db telemetry.pbdb --desc telemetry_input.xml telemetry_run.txt\n",
    );
    Ok(out)
}
