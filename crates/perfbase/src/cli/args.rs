//! Minimal argument parser for the `perfbase` frontend.
//!
//! The approved dependency list has no CLI crate, and the original perfbase
//! used a thin `sh` wrapper anyway — this module is the equivalent:
//! `--option value`, `--option=value`, boolean `--flags`, repeated options,
//! and positional arguments.

use std::collections::HashMap;
use std::fmt;

/// Argument parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Declaration of one accepted option.
#[derive(Debug, Clone, Copy)]
pub struct OptSpec {
    /// Long name without dashes, e.g. `db`.
    pub name: &'static str,
    /// Whether the option consumes a value.
    pub takes_value: bool,
}

/// Parsed arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    options: HashMap<String, Vec<String>>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parse `argv` against the accepted option set.
    pub fn parse<I: IntoIterator<Item = String>>(
        argv: I,
        accepted: &[OptSpec],
    ) -> Result<Args, ArgsError> {
        let spec = |name: &str| accepted.iter().find(|s| s.name == name);
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(arg) = it.next() {
            if let Some(body) = arg.strip_prefix("--") {
                let (name, inline) = match body.split_once('=') {
                    Some((n, v)) => (n.to_string(), Some(v.to_string())),
                    None => (body.to_string(), None),
                };
                let s = spec(&name).ok_or_else(|| ArgsError(format!("unknown option --{name}")))?;
                if s.takes_value {
                    let value = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .ok_or_else(|| ArgsError(format!("--{name} needs a value")))?,
                    };
                    out.options.entry(name).or_default().push(value);
                } else {
                    if inline.is_some() {
                        return Err(ArgsError(format!("--{name} takes no value")));
                    }
                    out.flags.push(name);
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Last occurrence of an option's value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All occurrences of an option.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.options.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Required option, with a helpful error.
    pub fn require(&self, name: &str) -> Result<&str, ArgsError> {
        self.get(name)
            .ok_or_else(|| ArgsError(format!("missing required option --{name}")))
    }

    /// Is a boolean flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &[OptSpec] = &[
        OptSpec {
            name: "db",
            takes_value: true,
        },
        OptSpec {
            name: "fixed",
            takes_value: true,
        },
        OptSpec {
            name: "force",
            takes_value: false,
        },
    ];

    fn parse(args: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(args.iter().map(|s| s.to_string()), SPEC)
    }

    #[test]
    fn options_flags_positionals() {
        let a = parse(&["--db", "x.pb", "file1", "--force", "file2"]).unwrap();
        assert_eq!(a.get("db"), Some("x.pb"));
        assert!(a.flag("force"));
        assert_eq!(a.positionals(), &["file1".to_string(), "file2".to_string()]);
    }

    #[test]
    fn equals_form_and_repeats() {
        let a = parse(&["--fixed=a=1", "--fixed", "b=2"]).unwrap();
        assert_eq!(a.get_all("fixed"), &["a=1".to_string(), "b=2".to_string()]);
        assert_eq!(a.get("fixed"), Some("b=2"));
    }

    #[test]
    fn errors() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--db"]).is_err());
        assert!(parse(&["--force=yes"]).is_err());
        assert!(parse(&[]).unwrap().require("db").is_err());
    }
}
