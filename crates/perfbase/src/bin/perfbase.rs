//! The `perfbase` executable: a thin wrapper around [`perfbase::cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match perfbase::cli::run(argv) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
        }
        Err(message) => {
            eprintln!("perfbase: {message}");
            std::process::exit(1);
        }
    }
}
