//! `perfbase` — experiment management and analysis.
//!
//! A from-scratch Rust implementation of *perfbase* (J. Worringen,
//! "Experiment Management and Analysis with perfbase", IEEE CLUSTER 2005):
//! a system that manages the ASCII output files of experiments in an SQL
//! database and analyses them through declarative XML queries.
//!
//! This crate is the facade: it re-exports the public API of every layer
//! and hosts the `perfbase` command-line frontend.
//!
//! # The workflow (paper §3)
//!
//! 1. **Define** the experiment: variables (input parameters and result
//!    values) with types, units and valid content — [`core::xmldef`].
//! 2. **Import** runs: XML input descriptions locate variable content in
//!    arbitrary ASCII output files — [`core::input`], [`core::import`].
//! 3. **Query**: `source → operator → combiner → output` dataflow graphs
//!    computed through database temp tables — [`core::query`].
//!
//! ```
//! use perfbase::core::experiment::{ExperimentDb, ExperimentDef, Meta, Variable, VarKind};
//! use perfbase::core::import::Importer;
//! use perfbase::core::input::input_description_from_str;
//! use perfbase::core::query::{spec::query_from_str, QueryRunner};
//! use perfbase::sqldb::{DataType, Engine};
//! use std::sync::Arc;
//!
//! // 1. define
//! let mut def = ExperimentDef::new(Meta { name: "demo".into(), ..Meta::default() }, "me");
//! def.add_variable(Variable::new("n", VarKind::Parameter, DataType::Int).once()).unwrap();
//! def.add_variable(Variable::new("elapsed", VarKind::ResultValue, DataType::Float).once()).unwrap();
//! let db = ExperimentDb::create(Arc::new(Engine::new()), def).unwrap();
//!
//! // 2. import
//! let desc = input_description_from_str(r#"<input>
//!   <named><variable>n</variable><match>n =</match></named>
//!   <named><variable>elapsed</variable><match>elapsed =</match></named>
//! </input>"#).unwrap();
//! Importer::new(&db).import_file(&desc, "run1.out", "n = 4\nelapsed = 1.25\n").unwrap();
//!
//! // 3. query
//! let q = query_from_str(r#"<query name="q">
//!   <source id="s"><parameter name="n" carry="true"/><value name="elapsed"/></source>
//!   <output id="o" input="s" format="csv"/>
//! </query>"#).unwrap();
//! let out = QueryRunner::new(&db).run(q).unwrap();
//! assert_eq!(out.artifacts["o"].trim(), "n,elapsed\n4,1.25");
//! ```

pub use exprcalc;
pub use obs;
pub use perfbase_core as core;
pub use rematch;
pub use sqldb;
pub use workloads;
pub use xmlite;

pub mod cli;
