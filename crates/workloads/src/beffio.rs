//! A `b_eff_io` output-file simulator (paper §5, Fig. 4).
//!
//! The real benchmark \[11\] measures MPI-IO bandwidth for five access types
//! over a fixed ladder of chunk sizes, in write / rewrite / read modes, and
//! prints a summarising ASCII file. This module reproduces that output
//! *shape* from a parameterised bandwidth model:
//!
//! * chunk-size ladder `32 … 2 MiB` with the odd `+8`-byte sizes
//!   (1032, 32776, 1048584) representing **non-contiguous** patterns;
//! * per-access-type and per-mode saturation curves;
//! * file-system throughput factors (ufs/nfs/pvfs) and noise levels —
//!   shared I/O systems vary much more than message passing (§5);
//! * the list-based vs. **list-less** non-contiguous technique of \[14\]:
//!   list-less is genuinely faster on non-contiguous patterns, **except**
//!   for a planted performance bug on large read accesses
//!   (chunk ≥ 1 MB), where it reaches only ≈ 40 % of list-based bandwidth —
//!   exactly the regression Fig. 8 uncovers.

use crate::noise::Noise;

/// The benchmark's chunk-size ladder (bytes). Odd `+8` sizes are the
/// non-contiguous patterns.
pub const CHUNK_SIZES: [u64; 8] = [
    32, 1024, 1032, 32_768, 32_776, 1_048_576, 1_048_584, 2_097_152,
];

/// The five access types of `b_eff_io`.
pub const ACCESS_TYPES: [&str; 5] = ["scatter", "shared", "separate", "segmened", "seg-coll"];

/// I/O modes measured by the benchmark.
pub const MODES: [&str; 3] = ["write", "rewrite", "read"];

/// File-system types of the paper's test environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsType {
    /// Local Unix file system.
    Ufs,
    /// Network file system (slow, very noisy shared resource).
    Nfs,
    /// Parallel file system (fast, scales with processes).
    Pvfs,
}

impl FsType {
    /// Name as encoded into output-file names.
    pub fn name(&self) -> &'static str {
        match self {
            FsType::Ufs => "ufs",
            FsType::Nfs => "nfs",
            FsType::Pvfs => "pvfs",
        }
    }

    fn throughput_factor(&self) -> f64 {
        match self {
            FsType::Ufs => 1.0,
            FsType::Nfs => 0.35,
            FsType::Pvfs => 1.6,
        }
    }

    /// Relative noise level (log-normal σ).
    pub fn noise_sigma(&self) -> f64 {
        match self {
            FsType::Ufs => 0.06,
            FsType::Nfs => 0.22,
            FsType::Pvfs => 0.10,
        }
    }
}

/// The non-contiguous I/O technique under test (paper §5, \[14\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// The old list-based implementation.
    ListBased,
    /// The new list-less implementation — faster, except for the planted
    /// large-read regression.
    ListLess,
}

impl Technique {
    /// Name as encoded into output-file names and `-i` options.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::ListBased => "list-based",
            Technique::ListLess => "list-less",
        }
    }

    /// Compact form for file names.
    pub fn file_tag(&self) -> &'static str {
        match self {
            Technique::ListBased => "listbased",
            Technique::ListLess => "listless",
        }
    }
}

/// Configuration of one simulated benchmark run.
#[derive(Debug, Clone)]
pub struct BeffIoConfig {
    /// Number of MPI processes.
    pub n_procs: u32,
    /// Memory per processor in MBytes.
    pub mem_mb: u32,
    /// Scheduled benchmark time in minutes (`-T`).
    pub t_spec: u32,
    /// File system under test.
    pub fs: FsType,
    /// Non-contiguous I/O technique.
    pub technique: Technique,
    /// Host the run pretends to execute on.
    pub hostname: String,
    /// Date string placed in the output (ctime format).
    pub date: String,
    /// Repetition index (encoded in the file name).
    pub run_index: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BeffIoConfig {
    fn default() -> Self {
        BeffIoConfig {
            n_procs: 4,
            mem_mb: 256,
            t_spec: 10,
            fs: FsType::Ufs,
            technique: Technique::ListBased,
            hostname: "grisu0.ccrl-nece.de".into(),
            date: "Tue Nov 23 18:30:30 2004".into(),
            run_index: 1,
            seed: 1,
        }
    }
}

/// One table row: bandwidths of the five access types for a (mode, chunk).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternRow {
    /// I/O mode (`write`/`rewrite`/`read`).
    pub mode: &'static str,
    /// Position in the ladder (1-based).
    pub pos: usize,
    /// Chunk size in bytes.
    pub chunk: u64,
    /// MB/s per access type.
    pub bandwidth: [f64; 5],
}

/// A complete simulated run.
#[derive(Debug, Clone)]
pub struct BeffIoRun {
    /// The configuration it ran under.
    pub config: BeffIoConfig,
    /// All table rows, grouped by mode in ladder order.
    pub rows: Vec<PatternRow>,
    /// Weighted average bandwidth per mode (write, rewrite, read).
    pub weighted_avg: [f64; 3],
    /// The headline `b_eff_io` number.
    pub b_eff_io: f64,
}

/// Is this chunk size a non-contiguous pattern (the `+8` sizes)?
pub fn is_noncontiguous(chunk: u64) -> bool {
    chunk == 1032 || chunk == 32_776 || chunk == 1_048_584
}

/// The noise-free bandwidth model in MB/s. Public so that benches and tests
/// can assert the planted shape without sampling noise.
pub fn model_bandwidth(
    n_procs: u32,
    fs: FsType,
    technique: Technique,
    access_idx: usize,
    mode: &str,
    chunk: u64,
) -> f64 {
    // Saturation curve over chunk size: small chunks are latency-bound.
    let chunk_f = chunk as f64;
    let saturation = chunk_f / (chunk_f + 20_000.0);

    // Peak bandwidth per access type (scatter is CPU-bound and flat;
    // separate/segmented scale best), roughly shaped after Fig. 4.
    let peak = match access_idx {
        0 => 70.0, // scatter
        1 => 85.0, // shared
        2 => 95.0, // separate
        3 => 92.0, // segmented
        4 => 88.0, // seg-coll
        _ => 80.0,
    };
    // Scatter keeps a useful floor at tiny chunks; shared collapses there.
    let floor = match access_idx {
        0 => 30.0,
        1 => 0.8,
        _ => 2.0,
    };

    // Reads are served from fewer sync constraints: a large factor, higher
    // for large chunks (page-cache friendly), as in Fig. 4.
    let mode_factor = match mode {
        "write" => 1.0,
        "rewrite" => 1.12,
        "read" => 4.0 + 8.0 * saturation,
        _ => 1.0,
    };

    let scale = (n_procs as f64 / 4.0).powf(match fs {
        FsType::Pvfs => 0.8, // parallel fs scales
        _ => 0.15,           // shared fs barely does
    });

    let mut bw = (floor + peak * saturation) * mode_factor * fs.throughput_factor() * scale;

    // Technique effect only exists on non-contiguous patterns.
    if is_noncontiguous(chunk) {
        bw *= match technique {
            Technique::ListBased => 1.0,
            Technique::ListLess => {
                if mode == "read" && chunk >= 1_000_000 {
                    // The planted performance bug of §5 / Fig. 8:
                    // ≈ 60 % slower than list-based for large reads.
                    0.4
                } else {
                    // Otherwise the new technique genuinely wins.
                    1.18
                }
            }
        };
    }
    bw
}

/// Simulate one benchmark run.
pub fn simulate(config: BeffIoConfig) -> BeffIoRun {
    let mut noise = Noise::new(config.seed);
    let sigma = config.fs.noise_sigma();
    let mut rows = Vec::with_capacity(MODES.len() * CHUNK_SIZES.len());
    for mode in MODES {
        for (pos, &chunk) in CHUNK_SIZES.iter().enumerate() {
            let mut bandwidth = [0.0; 5];
            for (a, slot) in bandwidth.iter_mut().enumerate() {
                let base =
                    model_bandwidth(config.n_procs, config.fs, config.technique, a, mode, chunk);
                *slot = (base * noise.lognormal_factor(sigma)).max(0.001);
            }
            rows.push(PatternRow {
                mode,
                pos: pos + 1,
                chunk,
                bandwidth,
            });
        }
    }

    // Weighted average per mode over all patterns and access types,
    // weighting large chunks higher (they move most of the bytes).
    let mut weighted_avg = [0.0; 3];
    for (m, mode) in MODES.iter().enumerate() {
        let mut num = 0.0;
        let mut den = 0.0;
        for row in rows.iter().filter(|r| r.mode == *mode) {
            let w = (row.chunk as f64).sqrt();
            for bw in row.bandwidth {
                num += w * bw;
                den += w;
            }
        }
        weighted_avg[m] = num / den;
    }
    // b_eff_io headline: geometric-ish blend dominated by read bandwidth.
    let b_eff_io = (weighted_avg[0] + weighted_avg[1] + weighted_avg[2]) / 3.0;

    BeffIoRun {
        config,
        rows,
        weighted_avg,
        b_eff_io,
    }
}

impl BeffIoRun {
    /// The output-file name this run would have, encoding the information
    /// that is *not* in the file body (fs type, technique, run index) —
    /// paper §5: "such information can be encoded in the filename".
    pub fn filename(&self) -> String {
        format!(
            "bio_T{}_N{}_{}_{}_grisu_run{}",
            self.config.t_spec,
            self.config.n_procs,
            self.config.technique.file_tag(),
            self.config.fs.name(),
            self.config.run_index,
        )
    }

    /// Render the Fig. 4-style summarising output file.
    pub fn render(&self) -> String {
        let c = &self.config;
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "MEMORY PER PROCESSOR = {} MBytes [1MBytes = 1024*1024 bytes, 1MB = 1e6 bytes]\n",
            c.mem_mb
        ));
        out.push_str("Maximum chunk size =      2.000 MBytes\n");
        out.push_str(&format!(
            "-N {} T={}, MT={} MBytes -i {}_io.info, -rewrite\n",
            c.n_procs,
            c.t_spec,
            c.mem_mb * c.n_procs,
            c.technique.name().replace('-', "_"),
        ));
        out.push_str(&format!("PATH=/tmp, PREFIX={}\n", self.filename()));
        out.push_str("      system name : Linux\n");
        out.push_str(&format!("      hostname : {}\n", c.hostname));
        out.push_str("      OS release : 2.6.6\n");
        out.push_str("      OS version : #1 SMP Tue Jun 22 14:37:05 CEST 2004\n");
        out.push_str("      machine : i686\n");
        out.push_str(&format!("Date of measurement: {}\n\n", c.date));
        out.push_str(&format!(
            "Summary of file I/O bandwidth accumulated on {} processes with {} MByte/PE\n",
            c.n_procs, c.mem_mb
        ));
        out.push_str("number pos chunk-   access type=0  type=1   type=2   type=3   type=4\n");
        out.push_str("of PEs     size (l)  methode scatter shared   separate segmened seg-coll\n");
        out.push_str("           [bytes]  methode [MB/s]  [MB/s]   [MB/s]   [MB/s]   [MB/s]\n");

        for mode in MODES {
            for row in self.rows.iter().filter(|r| r.mode == mode) {
                out.push_str(&format!(
                    "{:3} PEs {:2} {:9} {:8}",
                    c.n_procs, row.pos, row.chunk, row.mode
                ));
                for bw in row.bandwidth {
                    out.push_str(&format!(" {:8.3}", bw));
                }
                out.push('\n');
            }
            // The per-mode total line (skipped by tabular extraction).
            let mode_idx = MODES.iter().position(|m| *m == mode).expect("known mode");
            out.push_str(&format!(
                "{:3} PEs    total-{mode}  {:10.3}\n",
                c.n_procs, self.weighted_avg[mode_idx]
            ));
        }

        out.push_str(
            "\nThis table shows all results, except pattern 2 (scatter, l=1MBytes, L=2MBytes):\n",
        );
        out.push_str(&format!(
            " bw_pat2= {:.3} MB/s write, {:.3} MB/s rewrite, {:.3} MB/s read\n\n",
            self.weighted_avg[0], self.weighted_avg[1], self.weighted_avg[2]
        ));
        for (m, mode) in MODES.iter().enumerate() {
            out.push_str(&format!(
                "weighted average bandwidth for {mode:<7}: {:.3} MB/s on {} processes\n",
                self.weighted_avg[m], c.n_procs
            ));
        }
        out.push_str(&format!(
            "\nb_eff_io of these measurements = {:.3} MB/s on {} processes with {} MByte/PE and scheduled time={:.1} min\n",
            self.b_eff_io,
            c.n_procs,
            c.mem_mb,
            c.t_spec as f64 / 50.0,
        ));
        out.push_str(&format!(
            "b_eff_io = {:.3} MB/s on {} processes with {} MByte/PE, scheduled time={:.1} Min, on Linux {} 2.6.6 i686\n",
            self.b_eff_io,
            c.n_procs,
            c.mem_mb,
            c.t_spec as f64 / 50.0,
            c.hostname,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(BeffIoConfig::default());
        let b = simulate(BeffIoConfig::default());
        assert_eq!(a.render(), b.render());
        let c = simulate(BeffIoConfig {
            seed: 2,
            ..BeffIoConfig::default()
        });
        assert_ne!(a.render(), c.render());
    }

    #[test]
    fn row_count_covers_modes_and_ladder() {
        let run = simulate(BeffIoConfig::default());
        assert_eq!(run.rows.len(), 3 * 8);
        assert!(run
            .rows
            .iter()
            .all(|r| r.bandwidth.iter().all(|b| *b > 0.0)));
    }

    #[test]
    fn reads_beat_writes_at_large_chunks() {
        for a in 0..5 {
            let w = model_bandwidth(4, FsType::Ufs, Technique::ListBased, a, "write", 2_097_152);
            let r = model_bandwidth(4, FsType::Ufs, Technique::ListBased, a, "read", 2_097_152);
            assert!(r > 3.0 * w, "access {a}: read {r} vs write {w}");
        }
    }

    #[test]
    fn nfs_slower_and_noisier_than_ufs() {
        let u = model_bandwidth(4, FsType::Ufs, Technique::ListBased, 2, "write", 1_048_576);
        let n = model_bandwidth(4, FsType::Nfs, Technique::ListBased, 2, "write", 1_048_576);
        assert!(n < 0.5 * u);
        assert!(FsType::Nfs.noise_sigma() > 2.0 * FsType::Ufs.noise_sigma());
    }

    #[test]
    fn planted_bug_shape() {
        // List-less wins on non-contiguous writes and small reads …
        let lb = model_bandwidth(4, FsType::Ufs, Technique::ListBased, 2, "write", 32_776);
        let ll = model_bandwidth(4, FsType::Ufs, Technique::ListLess, 2, "write", 32_776);
        assert!(ll > lb * 1.1);
        let lb = model_bandwidth(4, FsType::Ufs, Technique::ListBased, 2, "read", 1032);
        let ll = model_bandwidth(4, FsType::Ufs, Technique::ListLess, 2, "read", 1032);
        assert!(ll > lb * 1.1);
        // … but loses ≈ 60 % on large non-contiguous reads.
        let lb = model_bandwidth(4, FsType::Ufs, Technique::ListBased, 2, "read", 1_048_584);
        let ll = model_bandwidth(4, FsType::Ufs, Technique::ListLess, 2, "read", 1_048_584);
        let rel = (ll / lb - 1.0) * 100.0;
        assert!((rel + 60.0).abs() < 1.0, "relative difference {rel}%");
        // Contiguous patterns are technique-independent.
        let lb = model_bandwidth(4, FsType::Ufs, Technique::ListBased, 2, "read", 1_048_576);
        let ll = model_bandwidth(4, FsType::Ufs, Technique::ListLess, 2, "read", 1_048_576);
        assert_eq!(lb, ll);
    }

    #[test]
    fn filename_encodes_config() {
        let run = simulate(BeffIoConfig {
            fs: FsType::Nfs,
            technique: Technique::ListLess,
            run_index: 3,
            ..BeffIoConfig::default()
        });
        assert_eq!(run.filename(), "bio_T10_N4_listless_nfs_grisu_run3");
    }

    #[test]
    fn rendered_file_structure() {
        let run = simulate(BeffIoConfig::default());
        let text = run.render();
        assert!(text.starts_with("MEMORY PER PROCESSOR = 256 MBytes"));
        assert!(text.contains("hostname : grisu0.ccrl-nece.de"));
        assert!(text.contains("Date of measurement: Tue Nov 23 18:30:30 2004"));
        // 24 data rows with the "N PEs pos chunk mode" shape.
        let data_rows = text
            .lines()
            .filter(|l| {
                let t: Vec<&str> = l.split_whitespace().collect();
                t.len() == 10 && t[1] == "PEs" && t[0].parse::<u32>().is_ok()
            })
            .count();
        assert_eq!(data_rows, 24);
        assert!(text.contains("total-write"));
        assert!(text.contains("total-rewrite"));
        assert!(text.contains("total-read"));
        assert!(text.contains("weighted average bandwidth for read"));
        assert!(text.contains("b_eff_io of these measurements ="));
    }

    #[test]
    fn noise_keeps_sign_of_planted_bug() {
        // Even with noise, averaging a few runs must show the regression.
        let avg = |technique: Technique| -> f64 {
            (0..5)
                .map(|s| {
                    let run = simulate(BeffIoConfig {
                        technique,
                        seed: 100 + s,
                        ..BeffIoConfig::default()
                    });
                    // access type 2 (separate), read, chunk 1048584 (pos 7)
                    run.rows
                        .iter()
                        .find(|r| r.mode == "read" && r.chunk == 1_048_584)
                        .map(|r| r.bandwidth[2])
                        .expect("row exists")
                })
                .sum::<f64>()
                / 5.0
        };
        let lb = avg(Technique::ListBased);
        let ll = avg(Technique::ListLess);
        let rel = (ll / lb - 1.0) * 100.0;
        assert!(rel < -40.0, "expected strong regression, got {rel}%");
    }

    #[test]
    fn pvfs_scales_with_processes() {
        let p4 = model_bandwidth(4, FsType::Pvfs, Technique::ListBased, 2, "write", 1_048_576);
        let p16 = model_bandwidth(
            16,
            FsType::Pvfs,
            Technique::ListBased,
            2,
            "write",
            1_048_576,
        );
        assert!(p16 > 2.0 * p4);
        let u4 = model_bandwidth(4, FsType::Ufs, Technique::ListBased, 2, "write", 1_048_576);
        let u16 = model_bandwidth(16, FsType::Ufs, Technique::ListBased, 2, "write", 1_048_576);
        assert!(u16 < 1.5 * u4);
    }
}
