//! Deterministic noise sources for the workload models.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded noise source.
pub struct Noise {
    rng: StdRng,
}

impl Noise {
    /// New source from a seed.
    pub fn new(seed: u64) -> Self {
        Noise { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Standard normal via Box–Muller (rand_distr is not on the approved
    /// dependency list).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative log-normal factor with the given sigma: `exp(σ·N)`.
    /// Models the high relative variance of shared I/O systems (paper §5).
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        (sigma * self.standard_normal()).exp()
    }

    /// Bernoulli draw.
    pub fn happens(&mut self, probability: f64) -> bool {
        self.uniform() < probability
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.random_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Noise::new(42);
        let mut b = Noise::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = Noise::new(43);
        assert_ne!(Noise::new(42).uniform(), c.uniform());
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut n = Noise::new(7);
        let samples: Vec<f64> = (0..20_000).map(|_| n.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_factor_positive_and_centered() {
        let mut n = Noise::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = n.lognormal_factor(0.1);
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / 10_000.0;
        // E[exp(σN)] = exp(σ²/2) ≈ 1.005 for σ = 0.1.
        assert!((mean - 1.005).abs() < 0.02, "{mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut n = Noise::new(11);
        let hits = (0..10_000).filter(|_| n.happens(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn below_in_range() {
        let mut n = Noise::new(13);
        for _ in 0..1000 {
            assert!(n.below(7) < 7);
        }
    }
}
