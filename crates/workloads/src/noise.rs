//! Deterministic noise sources for the workload models.
//!
//! Backed by a local splitmix64 generator: one multiply/xor-shift round per
//! draw, full 64-bit state, no external dependency. Statistical quality is
//! far beyond what the workload models need (the moment tests below check
//! it), and every stream is reproducible from its seed.

/// A seeded noise source.
pub struct Noise {
    state: u64,
}

impl Noise {
    /// New source from a seed.
    pub fn new(seed: u64) -> Self {
        Noise { state: seed }
    }

    /// Next raw 64-bit draw (splitmix64).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(1e-12);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative log-normal factor with the given sigma: `exp(σ·N)`.
    /// Models the high relative variance of shared I/O systems (paper §5).
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        (sigma * self.standard_normal()).exp()
    }

    /// Bernoulli draw.
    pub fn happens(&mut self, probability: f64) -> bool {
        self.uniform() < probability
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift maps the 64-bit draw onto [0, n) without the
        // modulo's low-bit bias.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Noise::new(42);
        let mut b = Noise::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = Noise::new(43);
        assert_ne!(Noise::new(42).uniform(), c.uniform());
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut n = Noise::new(7);
        let samples: Vec<f64> = (0..20_000).map(|_| n.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_factor_positive_and_centered() {
        let mut n = Noise::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = n.lognormal_factor(0.1);
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / 10_000.0;
        // E[exp(σN)] = exp(σ²/2) ≈ 1.005 for σ = 0.1.
        assert!((mean - 1.005).abs() < 0.02, "{mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut n = Noise::new(11);
        let hits = (0..10_000).filter(|_| n.happens(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn below_in_range() {
        let mut n = Noise::new(13);
        for _ in 0..1000 {
            assert!(n.below(7) < 7);
        }
    }

    #[test]
    fn uniform_in_unit_interval_and_spread() {
        let mut n = Noise::new(17);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let u = n.uniform();
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(b), "bucket {i} has {b} hits");
        }
    }
}
