//! Test-suite log workload (paper §6: correctness tracking is "a special
//! case of a performance test with only a single result value, namely the
//! number of errors that occurred").
//!
//! Simulates a software project's test suite across revisions: each test
//! has a base flakiness, revisions may introduce or fix bugs, and the
//! generator emits a JUnit-ish ASCII log that perfbase imports.

use crate::noise::Noise;

/// Configuration of one simulated suite execution.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Software revision under test (monotonic).
    pub revision: u32,
    /// Number of tests in the suite.
    pub tests: usize,
    /// Base probability that any given test is flaky-failing.
    pub flakiness: f64,
    /// Revisions in which a real bug is present: tests whose index is
    /// divisible by the bug's modulus fail deterministically.
    pub bugs: Vec<Bug>,
    /// RNG seed.
    pub seed: u64,
}

/// A planted bug: present in a revision range, breaking every n-th test.
#[derive(Debug, Clone)]
pub struct Bug {
    /// First revision containing the bug.
    pub introduced: u32,
    /// First revision with the fix.
    pub fixed: u32,
    /// The bug breaks tests with `index % modulus == 0`.
    pub modulus: usize,
}

impl Bug {
    fn affects(&self, revision: u32, test_index: usize) -> bool {
        revision >= self.introduced
            && revision < self.fixed
            && test_index.is_multiple_of(self.modulus)
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            revision: 1,
            tests: 50,
            flakiness: 0.01,
            bugs: Vec::new(),
            seed: 1,
        }
    }
}

/// The outcome of one suite execution.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The configuration.
    pub config: SuiteConfig,
    /// Per-test results: (name, passed, runtime seconds).
    pub results: Vec<(String, bool, f64)>,
}

impl SuiteRun {
    /// Number of failing tests — the single result value of §6.
    pub fn errors(&self) -> usize {
        self.results.iter().filter(|(_, ok, _)| !ok).count()
    }

    /// Total suite runtime.
    pub fn runtime(&self) -> f64 {
        self.results.iter().map(|(_, _, t)| t).sum()
    }

    /// Render the ASCII log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "test suite run, revision {}\n",
            self.config.revision
        ));
        out.push_str(&format!("tests: {}\n", self.results.len()));
        for (name, ok, t) in &self.results {
            out.push_str(&format!(
                "{} {} ({:.3}s)\n",
                if *ok { "PASS" } else { "FAIL" },
                name,
                t
            ));
        }
        out.push_str(&format!("errors: {}\n", self.errors()));
        out.push_str(&format!("total runtime: {:.3}s\n", self.runtime()));
        out
    }
}

/// Execute one simulated suite run.
pub fn run_suite(config: SuiteConfig) -> SuiteRun {
    let mut noise = Noise::new(config.seed ^ u64::from(config.revision) << 32);
    let mut results = Vec::with_capacity(config.tests);
    for i in 0..config.tests {
        let buggy = config.bugs.iter().any(|b| b.affects(config.revision, i));
        let flaky = noise.happens(config.flakiness);
        let passed = !(buggy || flaky);
        let runtime = 0.05 + 0.2 * noise.uniform();
        results.push((format!("test_{i:03}"), passed, runtime));
    }
    SuiteRun { config, results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_revision_mostly_passes() {
        let run = run_suite(SuiteConfig {
            flakiness: 0.0,
            ..SuiteConfig::default()
        });
        assert_eq!(run.errors(), 0);
    }

    #[test]
    fn planted_bug_breaks_expected_tests() {
        let bug = Bug {
            introduced: 5,
            fixed: 8,
            modulus: 10,
        };
        let cfg = |rev| SuiteConfig {
            revision: rev,
            flakiness: 0.0,
            bugs: vec![bug.clone()],
            ..SuiteConfig::default()
        };
        assert_eq!(run_suite(cfg(4)).errors(), 0);
        assert_eq!(run_suite(cfg(5)).errors(), 5); // tests 0,10,20,30,40
        assert_eq!(run_suite(cfg(7)).errors(), 5);
        assert_eq!(run_suite(cfg(8)).errors(), 0); // fixed
    }

    #[test]
    fn flakiness_rate_statistical() {
        let mut total_errors = 0;
        for seed in 0..50 {
            let run = run_suite(SuiteConfig {
                flakiness: 0.1,
                tests: 100,
                seed,
                ..SuiteConfig::default()
            });
            total_errors += run.errors();
        }
        let rate = total_errors as f64 / (50.0 * 100.0);
        assert!((rate - 0.1).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn log_format() {
        let run = run_suite(SuiteConfig {
            tests: 3,
            flakiness: 0.0,
            ..SuiteConfig::default()
        });
        let log = run.render();
        assert!(log.starts_with("test suite run, revision 1"));
        assert!(log.contains("PASS test_000"));
        assert!(log.contains("errors: 0"));
        assert!(log.contains("total runtime:"));
    }

    #[test]
    fn deterministic_per_seed_and_revision() {
        let a = run_suite(SuiteConfig::default());
        let b = run_suite(SuiteConfig::default());
        assert_eq!(a.render(), b.render());
        let c = run_suite(SuiteConfig {
            revision: 2,
            ..SuiteConfig::default()
        });
        assert_ne!(a.render(), c.render());
    }
}
