//! `workloads` — synthetic experiment workloads for perfbase.
//!
//! perfbase manages the *output files* of experiments; its evaluation (paper
//! §5) runs the MPI-IO benchmark `b_eff_io` on a real cluster. We do not
//! have that testbed, so this crate simulates the workloads at the level
//! perfbase consumes them: **realistic ASCII output files** produced by a
//! parameterised performance model with controlled randomness.
//!
//! * [`beffio`] — a `b_eff_io` output-file generator (Fig. 4 format) with a
//!   bandwidth model covering access types, chunk sizes, file systems and
//!   the list-based vs. list-less non-contiguous I/O techniques — including
//!   the *planted performance bug* that Fig. 8 uncovers (list-less ≈ 60 %
//!   slower for large read accesses).
//! * [`optionpricing`] — a real (small) binomial-tree / Monte-Carlo option
//!   pricer emitting parameterised simulation outputs (the paper's intro
//!   example \[13\]).
//! * [`testsuite`] — a test-suite log generator for the correctness-
//!   tracking use case (§6: "a special case of a performance test with only
//!   a single result value, namely the number of errors").
//!
//! All generators are deterministic given a seed.

pub mod beffio;
pub mod noise;
pub mod optionpricing;
pub mod testsuite;
