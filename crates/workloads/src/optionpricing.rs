//! Option-pricing simulation workload (paper §1, ref. \[13\]).
//!
//! The introduction motivates perfbase with "the price calculation of stock
//! options … a large number of parameterised simulation runs … which often
//! depend on half a dozen of parameters". This module is a real (small)
//! pricer: a Cox–Ross–Rubinstein binomial tree plus a Monte-Carlo variant
//! with error estimation, and a run-output renderer whose files perfbase
//! imports.

use crate::noise::Noise;

/// Call or put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionKind {
    /// Right to buy.
    Call,
    /// Right to sell.
    Put,
}

impl OptionKind {
    /// Lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            OptionKind::Call => "call",
            OptionKind::Put => "put",
        }
    }

    fn payoff(&self, s: f64, k: f64) -> f64 {
        match self {
            OptionKind::Call => (s - k).max(0.0),
            OptionKind::Put => (k - s).max(0.0),
        }
    }
}

/// Exercise style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExerciseStyle {
    /// Exercise only at maturity.
    European,
    /// Exercise any time.
    American,
}

impl ExerciseStyle {
    /// Lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            ExerciseStyle::European => "european",
            ExerciseStyle::American => "american",
        }
    }
}

/// The half-dozen parameters of one pricing run.
#[derive(Debug, Clone)]
pub struct OptionParams {
    /// Spot price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate (continuous compounding).
    pub rate: f64,
    /// Volatility (annualised).
    pub volatility: f64,
    /// Time to maturity in years.
    pub maturity: f64,
    /// Binomial tree steps.
    pub steps: usize,
    /// Call/put.
    pub kind: OptionKind,
    /// European/American.
    pub style: ExerciseStyle,
}

impl Default for OptionParams {
    fn default() -> Self {
        OptionParams {
            spot: 100.0,
            strike: 100.0,
            rate: 0.05,
            volatility: 0.2,
            maturity: 1.0,
            steps: 256,
            kind: OptionKind::Call,
            style: ExerciseStyle::European,
        }
    }
}

/// Cox–Ross–Rubinstein binomial-tree price.
pub fn binomial_price(p: &OptionParams) -> f64 {
    let n = p.steps.max(1);
    let dt = p.maturity / n as f64;
    let up = (p.volatility * dt.sqrt()).exp();
    let down = 1.0 / up;
    let disc = (-p.rate * dt).exp();
    let q = ((p.rate * dt).exp() - down) / (up - down);

    // Terminal payoffs.
    let mut values: Vec<f64> = (0..=n)
        .map(|j| {
            let s = p.spot * up.powi(j as i32) * down.powi((n - j) as i32);
            p.kind.payoff(s, p.strike)
        })
        .collect();

    // Backward induction.
    for step in (0..n).rev() {
        for j in 0..=step {
            let cont = disc * (q * values[j + 1] + (1.0 - q) * values[j]);
            values[j] = match p.style {
                ExerciseStyle::European => cont,
                ExerciseStyle::American => {
                    let s = p.spot * up.powi(j as i32) * down.powi((step - j) as i32);
                    cont.max(p.kind.payoff(s, p.strike))
                }
            };
        }
    }
    values[0]
}

/// Black–Scholes closed form (European only) — the oracle for tests.
pub fn black_scholes(p: &OptionParams) -> f64 {
    let d1 = ((p.spot / p.strike).ln() + (p.rate + 0.5 * p.volatility * p.volatility) * p.maturity)
        / (p.volatility * p.maturity.sqrt());
    let d2 = d1 - p.volatility * p.maturity.sqrt();
    let df = (-p.rate * p.maturity).exp();
    match p.kind {
        OptionKind::Call => p.spot * norm_cdf(d1) - p.strike * df * norm_cdf(d2),
        OptionKind::Put => p.strike * df * norm_cdf(-d2) - p.spot * norm_cdf(-d1),
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Monte-Carlo price with standard-error estimate — the "simulations which
/// include error estimation" case of §1.
pub fn monte_carlo_price(p: &OptionParams, paths: usize, seed: u64) -> (f64, f64) {
    let mut noise = Noise::new(seed);
    let drift = (p.rate - 0.5 * p.volatility * p.volatility) * p.maturity;
    let vol_t = p.volatility * p.maturity.sqrt();
    let df = (-p.rate * p.maturity).exp();
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..paths {
        let z = noise.standard_normal();
        let s = p.spot * (drift + vol_t * z).exp();
        let v = df * p.kind.payoff(s, p.strike);
        sum += v;
        sum_sq += v * v;
    }
    let mean = sum / paths as f64;
    let var = (sum_sq / paths as f64 - mean * mean).max(0.0);
    let stderr = (var / paths as f64).sqrt();
    (mean, stderr)
}

/// Render a pricing-run output file that a perfbase input description can
/// parse (named locations + one tabular convergence table).
pub fn render_run(p: &OptionParams, paths: usize, seed: u64) -> String {
    let tree = binomial_price(p);
    let (mc, se) = monte_carlo_price(p, paths, seed);
    let mut out = String::new();
    out.push_str("option pricing simulation\n");
    out.push_str(&format!("kind = {}\n", p.kind.name()));
    out.push_str(&format!("style = {}\n", p.style.name()));
    out.push_str(&format!("spot = {:.4}\n", p.spot));
    out.push_str(&format!("strike = {:.4}\n", p.strike));
    out.push_str(&format!("rate = {:.4}\n", p.rate));
    out.push_str(&format!("volatility = {:.4}\n", p.volatility));
    out.push_str(&format!("maturity = {:.4}\n", p.maturity));
    out.push_str(&format!("steps = {}\n", p.steps));
    out.push_str(&format!("paths = {paths}\n"));
    out.push_str("convergence table (steps price)\n");
    for s in [16usize, 32, 64, 128, 256] {
        let ps = OptionParams {
            steps: s,
            ..p.clone()
        };
        out.push_str(&format!("{:6} {:.6}\n", s, binomial_price(&ps)));
    }
    out.push_str(&format!("tree price = {tree:.6}\n"));
    out.push_str(&format!("mc price = {mc:.6}\n"));
    out.push_str(&format!("mc stderr = {se:.6}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_converges_to_black_scholes() {
        let p = OptionParams {
            steps: 2048,
            ..OptionParams::default()
        };
        let tree = binomial_price(&p);
        let bs = black_scholes(&p);
        assert!((tree - bs).abs() < 0.01, "tree {tree} vs bs {bs}");
    }

    #[test]
    fn put_call_parity() {
        let call = OptionParams {
            kind: OptionKind::Call,
            ..OptionParams::default()
        };
        let put = OptionParams {
            kind: OptionKind::Put,
            ..OptionParams::default()
        };
        let c = black_scholes(&call);
        let pv = black_scholes(&put);
        // C - P = S - K·e^{-rT}
        let parity = call.spot - call.strike * (-call.rate * call.maturity).exp();
        assert!((c - pv - parity).abs() < 1e-10);
    }

    #[test]
    fn american_put_worth_more_than_european() {
        let eu = OptionParams {
            kind: OptionKind::Put,
            style: ExerciseStyle::European,
            rate: 0.1,
            ..OptionParams::default()
        };
        let am = OptionParams {
            style: ExerciseStyle::American,
            ..eu.clone()
        };
        assert!(binomial_price(&am) > binomial_price(&eu) + 1e-3);
    }

    #[test]
    fn american_call_equals_european_without_dividends() {
        let eu = OptionParams {
            style: ExerciseStyle::European,
            ..OptionParams::default()
        };
        let am = OptionParams {
            style: ExerciseStyle::American,
            ..OptionParams::default()
        };
        assert!((binomial_price(&am) - binomial_price(&eu)).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_within_error_bars() {
        let p = OptionParams::default();
        let bs = black_scholes(&p);
        let (mc, se) = monte_carlo_price(&p, 200_000, 42);
        assert!(se > 0.0);
        assert!((mc - bs).abs() < 4.0 * se, "mc {mc} bs {bs} se {se}");
    }

    #[test]
    fn mc_error_shrinks_with_paths() {
        let p = OptionParams::default();
        let (_, se_small) = monte_carlo_price(&p, 1_000, 7);
        let (_, se_big) = monte_carlo_price(&p, 100_000, 7);
        assert!(se_big < se_small / 5.0);
    }

    #[test]
    fn deep_itm_call_close_to_intrinsic_plus_carry() {
        let p = OptionParams {
            spot: 200.0,
            strike: 100.0,
            ..OptionParams::default()
        };
        let bs = black_scholes(&p);
        let lower = p.spot - p.strike * (-p.rate * p.maturity).exp();
        assert!(bs >= lower - 1e-9);
        assert!(bs < lower + 1.0);
    }

    #[test]
    fn rendered_run_parsable_shape() {
        let text = render_run(&OptionParams::default(), 1000, 1);
        assert!(text.contains("strike = 100.0000"));
        assert!(text.contains("convergence table"));
        assert!(text.contains("tree price = "));
        assert!(text.contains("mc stderr = "));
        let conv_rows = text
            .lines()
            .filter(|l| {
                let t: Vec<&str> = l.split_whitespace().collect();
                t.len() == 2 && t[0].parse::<u64>().is_ok() && t[1].parse::<f64>().is_ok()
            })
            .count();
        assert_eq!(conv_rows, 5);
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1.5e-7); // A&S 7.1.26 accuracy bound
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1.5e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
    }
}
