//! Randomized tests for the expression engine, driven by a seeded
//! splitmix64 generator (reproducible, offline).

use exprcalc::{Context, Expr};
use std::collections::BTreeSet;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    fn float(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }

    fn lower_word(&mut self, min: usize, max: usize) -> String {
        let len = min + self.below((max - min) as u64 + 1) as usize;
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }
}

fn ctx(a: f64, b: f64, c: f64) -> Context {
    Context::from_pairs([("a", a), ("b", b), ("c", c)])
}

/// The parser/evaluator agree with Rust's own arithmetic on the
/// standard precedence cases.
#[test]
fn matches_rust_arithmetic() {
    let mut rng = Rng(0xE0);
    for _ in 0..200 {
        let a = rng.float(-100.0, 100.0);
        let b = rng.float(-100.0, 100.0);
        let c = rng.float(1.0, 100.0);
        let cases: Vec<(&str, f64)> = vec![
            ("a + b * c", a + b * c),
            ("(a + b) * c", (a + b) * c),
            ("a - b - c", a - b - c),
            ("a / c + b", a / c + b),
            ("-a + b", -a + b),
            ("a * a - b * b", a * a - b * b),
        ];
        for (src, expect) in cases {
            let got = Expr::parse(src).unwrap().eval(&ctx(a, b, c)).unwrap();
            let tol = 1e-9 * (1.0 + expect.abs());
            assert!((got - expect).abs() <= tol, "{src}: {got} vs {expect}");
        }
    }
}

/// Commutativity and associativity of + and * hold (within float
/// tolerance) through the whole parse/eval pipeline.
#[test]
fn algebraic_identities() {
    let mut rng = Rng(0xE1);
    for _ in 0..200 {
        let a = rng.float(-50.0, 50.0);
        let b = rng.float(-50.0, 50.0);
        let e1 = Expr::parse("a + b").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        let e2 = Expr::parse("b + a").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        assert_eq!(e1, e2);
        let m1 = Expr::parse("a * b").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        let m2 = Expr::parse("b * a").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        assert_eq!(m1, m2);
    }
}

/// min/max are order statistics: min ≤ every argument ≤ max.
#[test]
fn min_max_bounds() {
    let mut rng = Rng(0xE2);
    for _ in 0..200 {
        let a = rng.float(-100.0, 100.0);
        let b = rng.float(-100.0, 100.0);
        let c = rng.float(-100.0, 100.0);
        let lo = Expr::parse("min(a, b, c)")
            .unwrap()
            .eval(&ctx(a, b, c))
            .unwrap();
        let hi = Expr::parse("max(a, b, c)")
            .unwrap()
            .eval(&ctx(a, b, c))
            .unwrap();
        for x in [a, b, c] {
            assert!(lo <= x && x <= hi);
        }
    }
}

/// Comparison operators return exactly 0.0 or 1.0 and match Rust.
#[test]
fn comparisons_boolean() {
    let mut rng = Rng(0xE3);
    for _ in 0..200 {
        let a = rng.float(-10.0, 10.0);
        let b = rng.float(-10.0, 10.0);
        let lt = Expr::parse("a < b").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        assert_eq!(lt, f64::from(a < b));
        let ge = Expr::parse("a >= b")
            .unwrap()
            .eval(&ctx(a, b, 0.0))
            .unwrap();
        assert_eq!(ge, f64::from(a >= b));
    }
}

/// `variables()` reports exactly the identifiers needed: binding them
/// all makes evaluation succeed; dropping any one makes it fail.
#[test]
fn variables_are_exactly_the_dependencies() {
    let mut rng = Rng(0xE4);
    for _ in 0..100 {
        let mut names = BTreeSet::new();
        for _ in 0..1 + rng.below(3) {
            names.insert(rng.lower_word(1, 4));
        }
        let src = names.iter().cloned().collect::<Vec<_>>().join(" + ");
        let e = Expr::parse(&src).unwrap();
        assert_eq!(e.variables(), names.clone());
        let mut full = Context::new();
        for n in &names {
            full.set(n, 1.0);
        }
        assert!(e.eval(&full).is_ok());
        for skip in &names {
            let mut partial = Context::new();
            for n in names.iter().filter(|n| n != &skip) {
                partial.set(n, 1.0);
            }
            assert!(e.eval(&partial).is_err());
        }
    }
}

/// The parser never panics, and parse errors carry in-range positions.
#[test]
fn parser_total() {
    let mut rng = Rng(0xE5);
    for _ in 0..500 {
        let len = rng.below(33) as usize;
        let src: String = (0..len)
            .map(|_| (b' ' + rng.below(95) as u8) as char)
            .collect();
        match Expr::parse(&src) {
            Ok(e) => {
                let _ = e.eval(&Context::new());
            }
            Err(pe) => assert!(pe.position <= src.len()),
        }
    }
}
