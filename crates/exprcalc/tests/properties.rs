//! Property-based tests for the expression engine.

use exprcalc::{Context, Expr};
use proptest::prelude::*;

fn ctx(a: f64, b: f64, c: f64) -> Context {
    Context::from_pairs([("a", a), ("b", b), ("c", c)])
}

proptest! {
    /// The parser/evaluator agree with Rust's own arithmetic on the
    /// standard precedence cases.
    #[test]
    fn matches_rust_arithmetic(a in -100.0f64..100.0, b in -100.0f64..100.0, c in 1.0f64..100.0) {
        let cases: Vec<(&str, f64)> = vec![
            ("a + b * c", a + b * c),
            ("(a + b) * c", (a + b) * c),
            ("a - b - c", a - b - c),
            ("a / c + b", a / c + b),
            ("-a + b", -a + b),
            ("a * a - b * b", a * a - b * b),
        ];
        for (src, expect) in cases {
            let got = Expr::parse(src).unwrap().eval(&ctx(a, b, c)).unwrap();
            let tol = 1e-9 * (1.0 + expect.abs());
            prop_assert!((got - expect).abs() <= tol, "{src}: {got} vs {expect}");
        }
    }

    /// Commutativity and associativity of + and * hold (within float
    /// tolerance) through the whole parse/eval pipeline.
    #[test]
    fn algebraic_identities(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let e1 = Expr::parse("a + b").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        let e2 = Expr::parse("b + a").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        prop_assert_eq!(e1, e2);
        let m1 = Expr::parse("a * b").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        let m2 = Expr::parse("b * a").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        prop_assert_eq!(m1, m2);
    }

    /// min/max are order statistics: min ≤ every argument ≤ max.
    #[test]
    fn min_max_bounds(a in -100.0f64..100.0, b in -100.0f64..100.0, c in -100.0f64..100.0) {
        let lo = Expr::parse("min(a, b, c)").unwrap().eval(&ctx(a, b, c)).unwrap();
        let hi = Expr::parse("max(a, b, c)").unwrap().eval(&ctx(a, b, c)).unwrap();
        for x in [a, b, c] {
            prop_assert!(lo <= x && x <= hi);
        }
    }

    /// Comparison operators return exactly 0.0 or 1.0 and match Rust.
    #[test]
    fn comparisons_boolean(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let lt = Expr::parse("a < b").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        prop_assert_eq!(lt, f64::from(a < b));
        let ge = Expr::parse("a >= b").unwrap().eval(&ctx(a, b, 0.0)).unwrap();
        prop_assert_eq!(ge, f64::from(a >= b));
    }

    /// `variables()` reports exactly the identifiers needed: binding them
    /// all makes evaluation succeed; dropping any one makes it fail.
    #[test]
    fn variables_are_exactly_the_dependencies(names in proptest::collection::btree_set("[a-z]{1,4}", 1..4)) {
        let src = names.iter().cloned().collect::<Vec<_>>().join(" + ");
        let e = Expr::parse(&src).unwrap();
        prop_assert_eq!(e.variables(), names.clone());
        let mut full = Context::new();
        for n in &names {
            full.set(n, 1.0);
        }
        prop_assert!(e.eval(&full).is_ok());
        for skip in &names {
            let mut partial = Context::new();
            for n in names.iter().filter(|n| n != &skip) {
                partial.set(n, 1.0);
            }
            prop_assert!(e.eval(&partial).is_err());
        }
    }

    /// The parser never panics, and parse errors carry in-range positions.
    #[test]
    fn parser_total(src in "[ -~]{0,32}") {
        match Expr::parse(&src) {
            Ok(e) => {
                let _ = e.eval(&Context::new());
            }
            Err(pe) => prop_assert!(pe.position <= src.len()),
        }
    }
}
