//! `exprcalc` — a safe arithmetic expression engine.
//!
//! perfbase needs run-time expression evaluation in two places (paper §3.2,
//! §3.3.2): *derived parameters* in input descriptions ("for parameters which
//! can not be retrieved from the input files directly, but need to be derived
//! from other parameters, a derived parameter provides the means to express
//! such an arithmetic relation") and the `eval` query operator ("arbitrary
//! function definitions"). The original implementation leaned on Python's
//! `eval`; this crate provides the equivalent capability without an
//! interpreter: a tokenizer, a recursive-descent parser and a tree-walking
//! evaluator over `f64` values.
//!
//! Grammar (usual precedence, `^` is right-associative exponentiation):
//!
//! ```text
//! expr    := or
//! or      := and ( '||' and )*
//! and     := cmp ( '&&' cmp )*
//! cmp     := sum ( ('<'|'>'|'<='|'>='|'=='|'!=') sum )?
//! sum     := term ( ('+'|'-') term )*
//! term    := unary ( ('*'|'/'|'%') unary )*
//! unary   := ('-'|'!')* power
//! power   := atom ( '^' unary )?
//! atom    := number | ident | ident '(' args ')' | '(' expr ')'
//! ```
//!
//! Logical results use `1.0`/`0.0`. Identifiers refer to variables resolved
//! through a [`Context`]; unknown variables are an evaluation error, so typos
//! in control files are caught rather than silently treated as zero.
//!
//! # Example
//!
//! ```
//! use exprcalc::{Context, Expr};
//! let e = Expr::parse("S_chunk * N_proc / (1024 * 1024)").unwrap();
//! let mut ctx = Context::new();
//! ctx.set("S_chunk", 32768.0);
//! ctx.set("N_proc", 64.0);
//! assert_eq!(e.eval(&ctx).unwrap(), 2.0);
//! ```

mod eval;
mod parse;

pub use eval::{Context, EvalError};
pub use parse::ParseError;

use std::collections::BTreeSet;

/// Parsed expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Numeric literal.
    Num(f64),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Ast>),
    /// Binary operation.
    Binary(BinOp, Box<Ast>, Box<Ast>),
    /// Function call.
    Call(String, Vec<Ast>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `^`
    Pow,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// A compiled, reusable expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    source: String,
    ast: Ast,
}

impl Expr {
    /// Parse `source` into an expression.
    pub fn parse(source: &str) -> Result<Expr, ParseError> {
        let ast = parse::parse(source)?;
        Ok(Expr {
            source: source.to_string(),
            ast,
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed AST.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Evaluate against a variable context.
    pub fn eval(&self, ctx: &Context) -> Result<f64, EvalError> {
        eval::eval(&self.ast, ctx)
    }

    /// The set of variable names referenced by the expression.
    /// perfbase uses this to determine which parameters a derived
    /// parameter depends on.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut vars = BTreeSet::new();
        fn walk(a: &Ast, vars: &mut BTreeSet<String>) {
            match a {
                Ast::Num(_) => {}
                Ast::Var(v) => {
                    vars.insert(v.clone());
                }
                Ast::Unary(_, x) => walk(x, vars),
                Ast::Binary(_, l, r) => {
                    walk(l, vars);
                    walk(r, vars);
                }
                Ast::Call(_, args) => args.iter().for_each(|a| walk(a, vars)),
            }
        }
        walk(&self.ast, &mut vars);
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: &str) -> f64 {
        Expr::parse(src).unwrap().eval(&Context::new()).unwrap()
    }

    #[test]
    fn precedence_and_associativity() {
        assert_eq!(ev("2+3*4"), 14.0);
        assert_eq!(ev("(2+3)*4"), 20.0);
        assert_eq!(ev("2^3^2"), 512.0); // right-assoc
        assert_eq!(ev("10-3-2"), 5.0); // left-assoc
        assert_eq!(ev("7%4"), 3.0);
        assert_eq!(ev("-2^2"), -4.0); // unary binds looser than ^
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("3 < 4"), 1.0);
        assert_eq!(ev("3 >= 4"), 0.0);
        assert_eq!(ev("1 && 0 || 1"), 1.0);
        assert_eq!(ev("!(2 == 2)"), 0.0);
        assert_eq!(ev("1 + (2 < 3)"), 2.0);
    }

    #[test]
    fn functions() {
        assert_eq!(ev("sqrt(16)"), 4.0);
        assert_eq!(ev("abs(-3.5)"), 3.5);
        assert_eq!(ev("min(3, 1, 2)"), 1.0);
        assert_eq!(ev("max(3, 1, 2)"), 3.0);
        assert_eq!(ev("floor(2.7) + ceil(2.2)"), 5.0);
        assert_eq!(ev("round(2.5)"), 3.0);
        assert_eq!(ev("log2(1024)"), 10.0);
        assert_eq!(ev("log10(1000)"), 3.0);
        assert!((ev("log(exp(1))") - 1.0).abs() < 1e-12);
        assert_eq!(ev("pow(2, 10)"), 1024.0);
    }

    #[test]
    fn variables_resolved_from_context() {
        let e = Expr::parse("bw * 1e6 / chunk").unwrap();
        let mut ctx = Context::new();
        ctx.set("bw", 214.516);
        ctx.set("chunk", 1024.0);
        let v = e.eval(&ctx).unwrap();
        assert!((v - 214.516e6 / 1024.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_variable_is_error() {
        let e = Expr::parse("nope + 1").unwrap();
        let err = e.eval(&Context::new()).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn variables_listed() {
        let e = Expr::parse("a + sqrt(b * a) - min(c, 2)").unwrap();
        let vars: Vec<String> = e.variables().into_iter().collect();
        assert_eq!(
            vars,
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn scientific_notation_literals() {
        assert_eq!(ev("1e3"), 1000.0);
        assert_eq!(ev("2.5E-2"), 0.025);
        assert_eq!(ev(".5 + 1."), 1.5);
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::parse("1/0").unwrap();
        assert!(e.eval(&Context::new()).is_err());
        let e = Expr::parse("5 % 0").unwrap();
        assert!(e.eval(&Context::new()).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("f(1,)").is_err());
        assert!(Expr::parse("1 2").is_err());
        assert!(Expr::parse("@x").is_err());
    }

    #[test]
    fn unknown_function_is_eval_error() {
        let e = Expr::parse("frobnicate(1)").unwrap();
        assert!(e.eval(&Context::new()).is_err());
    }

    #[test]
    fn paper_style_derived_parameter() {
        // Derived parameter: total bytes moved = chunk size × processes ×
        // repetition count (the arithmetic-relation use case of §3.2).
        let e = Expr::parse("S_chunk * N_proc * reps / 2^20").unwrap();
        let mut ctx = Context::new();
        ctx.set("S_chunk", 32768.0);
        ctx.set("N_proc", 4.0);
        ctx.set("reps", 8.0);
        assert_eq!(e.eval(&ctx).unwrap(), 1.0);
    }
}
