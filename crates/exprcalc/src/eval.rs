//! Tree-walking evaluator and built-in function table.

use crate::{Ast, BinOp, UnaryOp};
use std::collections::HashMap;
use std::fmt;

/// Variable bindings for evaluation.
#[derive(Debug, Clone, Default)]
pub struct Context {
    vars: HashMap<String, f64>,
}

impl Context {
    /// Empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Bind `name` to `value` (replacing any previous binding).
    pub fn set(&mut self, name: &str, value: f64) {
        self.vars.insert(name.to_string(), value);
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.vars.get(name).copied()
    }

    /// Build from an iterator of pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, f64)>) -> Self {
        let mut c = Context::new();
        for (k, v) in pairs {
            c.set(k, v);
        }
        c
    }
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

fn err(msg: String) -> EvalError {
    EvalError { message: msg }
}

fn truthy(v: f64) -> bool {
    v != 0.0
}

fn boolval(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Evaluate `ast` under `ctx`.
pub fn eval(ast: &Ast, ctx: &Context) -> Result<f64, EvalError> {
    match ast {
        Ast::Num(v) => Ok(*v),
        Ast::Var(name) => ctx
            .get(name)
            .ok_or_else(|| err(format!("unknown variable '{name}'"))),
        Ast::Unary(op, x) => {
            let v = eval(x, ctx)?;
            Ok(match op {
                UnaryOp::Neg => -v,
                UnaryOp::Not => boolval(!truthy(v)),
            })
        }
        Ast::Binary(op, l, r) => {
            // Short-circuit logic first.
            match op {
                BinOp::And => {
                    let lv = eval(l, ctx)?;
                    if !truthy(lv) {
                        return Ok(0.0);
                    }
                    return Ok(boolval(truthy(eval(r, ctx)?)));
                }
                BinOp::Or => {
                    let lv = eval(l, ctx)?;
                    if truthy(lv) {
                        return Ok(1.0);
                    }
                    return Ok(boolval(truthy(eval(r, ctx)?)));
                }
                _ => {}
            }
            let lv = eval(l, ctx)?;
            let rv = eval(r, ctx)?;
            match op {
                BinOp::Add => Ok(lv + rv),
                BinOp::Sub => Ok(lv - rv),
                BinOp::Mul => Ok(lv * rv),
                BinOp::Div => {
                    if rv == 0.0 {
                        Err(err("division by zero".into()))
                    } else {
                        Ok(lv / rv)
                    }
                }
                BinOp::Rem => {
                    if rv == 0.0 {
                        Err(err("remainder by zero".into()))
                    } else {
                        Ok(lv % rv)
                    }
                }
                BinOp::Pow => Ok(lv.powf(rv)),
                BinOp::Lt => Ok(boolval(lv < rv)),
                BinOp::Gt => Ok(boolval(lv > rv)),
                BinOp::Le => Ok(boolval(lv <= rv)),
                BinOp::Ge => Ok(boolval(lv >= rv)),
                BinOp::Eq => Ok(boolval(lv == rv)),
                BinOp::Ne => Ok(boolval(lv != rv)),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Ast::Call(name, args) => {
            let vals: Result<Vec<f64>, EvalError> = args.iter().map(|a| eval(a, ctx)).collect();
            call(name, &vals?)
        }
    }
}

fn arity(name: &str, args: &[f64], n: usize) -> Result<(), EvalError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(format!(
            "function '{name}' expects {n} argument(s), got {}",
            args.len()
        )))
    }
}

fn call(name: &str, args: &[f64]) -> Result<f64, EvalError> {
    match name {
        "abs" => {
            arity(name, args, 1)?;
            Ok(args[0].abs())
        }
        "sqrt" => {
            arity(name, args, 1)?;
            if args[0] < 0.0 {
                Err(err("sqrt of negative value".into()))
            } else {
                Ok(args[0].sqrt())
            }
        }
        "log" | "ln" => {
            arity(name, args, 1)?;
            if args[0] <= 0.0 {
                Err(err("log of non-positive value".into()))
            } else {
                Ok(args[0].ln())
            }
        }
        "log2" => {
            arity(name, args, 1)?;
            if args[0] <= 0.0 {
                Err(err("log2 of non-positive value".into()))
            } else {
                Ok(args[0].log2())
            }
        }
        "log10" => {
            arity(name, args, 1)?;
            if args[0] <= 0.0 {
                Err(err("log10 of non-positive value".into()))
            } else {
                Ok(args[0].log10())
            }
        }
        "exp" => {
            arity(name, args, 1)?;
            Ok(args[0].exp())
        }
        "floor" => {
            arity(name, args, 1)?;
            Ok(args[0].floor())
        }
        "ceil" => {
            arity(name, args, 1)?;
            Ok(args[0].ceil())
        }
        "round" => {
            arity(name, args, 1)?;
            Ok(args[0].round())
        }
        "pow" => {
            arity(name, args, 2)?;
            Ok(args[0].powf(args[1]))
        }
        "min" => {
            if args.is_empty() {
                return Err(err("min() needs at least one argument".into()));
            }
            Ok(args.iter().copied().fold(f64::INFINITY, f64::min))
        }
        "max" => {
            if args.is_empty() {
                return Err(err("max() needs at least one argument".into()));
            }
            Ok(args.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        }
        "pi" => {
            arity(name, args, 0)?;
            Ok(std::f64::consts::PI)
        }
        other => Err(err(format!("unknown function '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    #[test]
    fn context_from_pairs() {
        let ctx = Context::from_pairs([("a", 1.0), ("b", 2.0)]);
        assert_eq!(ctx.get("a"), Some(1.0));
        assert_eq!(ctx.get("b"), Some(2.0));
        assert_eq!(ctx.get("c"), None);
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // RHS has an unknown variable, but the LHS decides the result.
        let ctx = Context::new();
        assert_eq!(Expr::parse("0 && boom").unwrap().eval(&ctx).unwrap(), 0.0);
        assert_eq!(Expr::parse("1 || boom").unwrap().eval(&ctx).unwrap(), 1.0);
        assert!(Expr::parse("1 && boom").unwrap().eval(&ctx).is_err());
    }

    #[test]
    fn domain_errors() {
        let ctx = Context::new();
        assert!(Expr::parse("sqrt(-1)").unwrap().eval(&ctx).is_err());
        assert!(Expr::parse("log(0)").unwrap().eval(&ctx).is_err());
        assert!(Expr::parse("min()").unwrap().eval(&ctx).is_err());
        assert!(Expr::parse("abs(1,2)").unwrap().eval(&ctx).is_err());
    }

    #[test]
    fn pi_constant() {
        let ctx = Context::new();
        let v = Expr::parse("2*pi()").unwrap().eval(&ctx).unwrap();
        assert!((v - std::f64::consts::TAU).abs() < 1e-12);
    }
}
