//! Tokenizer and recursive-descent parser for expressions.

use crate::{Ast, BinOp, UnaryOp};
use std::fmt;

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte offset in the source.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit()
            || (c == '.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
            || (c == '.' && bytes.get(i + 1).is_none())
        {
            let mut s = String::new();
            let mut seen_dot = false;
            let mut seen_exp = false;
            while i < bytes.len() {
                let d = bytes[i];
                if d.is_ascii_digit() {
                    s.push(d);
                } else if d == '.' && !seen_dot && !seen_exp {
                    seen_dot = true;
                    s.push(d);
                } else if (d == 'e' || d == 'E') && !seen_exp && !s.is_empty() {
                    // Only an exponent if followed by digit or sign+digit.
                    let next = bytes.get(i + 1);
                    let next2 = bytes.get(i + 2);
                    let is_exp = match next {
                        Some(n) if n.is_ascii_digit() => true,
                        Some('+') | Some('-') => next2.is_some_and(|n| n.is_ascii_digit()),
                        _ => false,
                    };
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    s.push(d);
                    if let Some(&sign @ ('+' | '-')) = bytes.get(i + 1) {
                        s.push(sign);
                        i += 1;
                    }
                } else {
                    break;
                }
                i += 1;
            }
            let v: f64 = s.parse().map_err(|_| ParseError {
                message: format!("bad number '{s}'"),
                position: start,
            })?;
            toks.push((Tok::Num(v), start));
        } else if c.is_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                s.push(bytes[i]);
                i += 1;
            }
            toks.push((Tok::Ident(s), start));
        } else {
            let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
            let op2 = ["<=", ">=", "==", "!=", "&&", "||"]
                .iter()
                .find(|o| **o == two);
            if let Some(op) = op2 {
                toks.push((Tok::Op(op), start));
                i += 2;
            } else {
                let t = match c {
                    '+' => Tok::Op("+"),
                    '-' => Tok::Op("-"),
                    '*' => Tok::Op("*"),
                    '/' => Tok::Op("/"),
                    '%' => Tok::Op("%"),
                    '^' => Tok::Op("^"),
                    '<' => Tok::Op("<"),
                    '>' => Tok::Op(">"),
                    '!' => Tok::Op("!"),
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    ',' => Tok::Comma,
                    other => {
                        return Err(ParseError {
                            message: format!("unexpected character '{other}'"),
                            position: start,
                        })
                    }
                };
                toks.push((t, start));
                i += 1;
            }
        }
    }
    Ok(toks)
}

/// Parse `src` into an [`Ast`].
pub fn parse(src: &str) -> Result<Ast, ParseError> {
    let toks = tokenize(src)?;
    let mut p = P {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    let ast = p.or_expr()?;
    if p.pos < p.toks.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(ast)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    src_len: usize,
}

impl P {
    fn err(&self, msg: &str) -> ParseError {
        let position = self.toks.get(self.pos).map(|t| t.1).unwrap_or(self.src_len);
        ParseError {
            message: msg.to_string(),
            position,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_op("||") {
            let rhs = self.and_expr()?;
            lhs = Ast::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_op("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Ast::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Ast, ParseError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Some(Tok::Op("<")) => BinOp::Lt,
            Some(Tok::Op(">")) => BinOp::Gt,
            Some(Tok::Op("<=")) => BinOp::Le,
            Some(Tok::Op(">=")) => BinOp::Ge,
            Some(Tok::Op("==")) => BinOp::Eq,
            Some(Tok::Op("!=")) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.sum()?;
        Ok(Ast::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn sum(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat_op("+") {
                let rhs = self.term()?;
                lhs = Ast::Binary(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("-") {
                let rhs = self.term()?;
                lhs = Ast::Binary(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat_op("*") {
                let rhs = self.unary()?;
                lhs = Ast::Binary(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("/") {
                let rhs = self.unary()?;
                lhs = Ast::Binary(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("%") {
                let rhs = self.unary()?;
                lhs = Ast::Binary(BinOp::Rem, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Ast, ParseError> {
        if self.eat_op("-") {
            let inner = self.unary()?;
            return Ok(Ast::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        if self.eat_op("!") {
            let inner = self.unary()?;
            return Ok(Ast::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.power()
    }

    fn power(&mut self) -> Result<Ast, ParseError> {
        let base = self.atom()?;
        if self.eat_op("^") {
            // Right-associative: exponent re-enters at unary level.
            let exp = self.unary()?;
            return Ok(Ast::Binary(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Ok(Ast::Num(v))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Tok::RParen)) {
                        loop {
                            args.push(self.or_expr()?);
                            if matches!(self.peek(), Some(Tok::Comma)) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    if !matches!(self.peek(), Some(Tok::RParen)) {
                        return Err(self.err("expected ')'"));
                    }
                    self.pos += 1;
                    Ok(Ast::Call(name, args))
                } else {
                    Ok(Ast::Var(name))
                }
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.or_expr()?;
                if !matches!(self.peek(), Some(Tok::RParen)) {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            _ => Err(self.err("expected a value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_numbers() {
        let t = tokenize("1 2.5 1e3 2E-2 .5").unwrap();
        let nums: Vec<f64> = t
            .iter()
            .filter_map(|(t, _)| match t {
                Tok::Num(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec![1.0, 2.5, 1000.0, 0.02, 0.5]);
    }

    #[test]
    fn e_followed_by_ident_is_not_exponent() {
        // "2e" ... "x" — 'e' with no digits must not be swallowed.
        let t = tokenize("2 ex").unwrap();
        assert_eq!(t.len(), 2);
        assert!(matches!(t[1].0, Tok::Ident(ref s) if s == "ex"));
    }

    #[test]
    fn two_char_operators() {
        let t = tokenize("<= >= == != && ||").unwrap();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn ast_shape_for_mixed_expression() {
        let ast = parse("a + b * c").unwrap();
        match ast {
            Ast::Binary(BinOp::Add, l, r) => {
                assert_eq!(*l, Ast::Var("a".into()));
                assert!(matches!(*r, Ast::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn call_with_no_args() {
        let ast = parse("pi()").unwrap();
        assert_eq!(ast, Ast::Call("pi".into(), vec![]));
    }

    #[test]
    fn error_positions() {
        let e = parse("1 + + 2").unwrap_err();
        assert_eq!(e.position, 4);
        let e = parse("  @").unwrap_err();
        assert_eq!(e.position, 2);
    }
}
