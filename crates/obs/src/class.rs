//! Per-statement-class accounting: a fixed matrix of relaxed atomics
//! keyed by (statement class × metric), plus a thread-local "current
//! class" that lets lower layers (the WAL) attribute their costs to the
//! statement that caused them.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! classes {
    ($($variant:ident => $name:literal,)+) => {
        /// Coarse statement classification for per-class metrics.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum StmtClass {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl StmtClass {
            /// Every class, in declaration order.
            pub const ALL: &'static [StmtClass] = &[$(StmtClass::$variant,)+];

            /// Report name (lower-case).
            pub fn name(self) -> &'static str {
                match self {
                    $(StmtClass::$variant => $name,)+
                }
            }
        }
    };
}

classes! {
    Select => "select",
    Explain => "explain",
    Insert => "insert",
    Update => "update",
    Delete => "delete",
    Ddl => "ddl",
    Other => "other",
}

const NCLASS: usize = StmtClass::ALL.len();
const NMETRIC: usize = 5; // statements, exec_ns, wal_appends, wal_fsyncs, wal_fsync_ns

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static MATRIX: [AtomicU64; NCLASS * NMETRIC] = [ZERO; NCLASS * NMETRIC];

thread_local! {
    static CURRENT: Cell<StmtClass> = const { Cell::new(StmtClass::Other) };
}

#[inline]
fn cell(class: StmtClass, metric: usize) -> &'static AtomicU64 {
    &MATRIX[class as usize * NMETRIC + metric]
}

/// The calling thread's current statement class (defaults to `other`).
pub fn current_class() -> StmtClass {
    CURRENT.with(Cell::get)
}

/// RAII guard restoring the previous statement class on drop.
pub struct ClassScope {
    prev: StmtClass,
}

/// Set the calling thread's statement class for the lifetime of the
/// returned guard. Costs attributed via [`crate::wal_append`] /
/// [`crate::wal_fsync`] inside the scope land on this class.
pub fn class_scope(class: StmtClass) -> ClassScope {
    let prev = CURRENT.with(|c| c.replace(class));
    ClassScope { prev }
}

impl Drop for ClassScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Record one executed statement of `class` with its execution latency.
pub fn record_statement(class: StmtClass, exec_ns: u64) {
    if crate::stats_enabled() {
        cell(class, 0).fetch_add(1, Ordering::Relaxed);
        cell(class, 1).fetch_add(exec_ns, Ordering::Relaxed);
    }
}

pub(crate) fn class_wal_append() {
    if crate::stats_enabled() {
        cell(current_class(), 2).fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn class_wal_fsync(ns: u64) {
    if crate::stats_enabled() {
        let c = current_class();
        cell(c, 3).fetch_add(1, Ordering::Relaxed);
        cell(c, 4).fetch_add(ns, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one statement class's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStats {
    /// Class name (`select`, `insert`, …).
    pub class: &'static str,
    /// Statements executed.
    pub statements: u64,
    /// Total execution time, nanoseconds.
    pub exec_ns: u64,
    /// WAL appends attributed to this class.
    pub wal_appends: u64,
    /// WAL fsyncs attributed to this class.
    pub wal_fsyncs: u64,
    /// Total WAL fsync time attributed to this class, nanoseconds.
    pub wal_fsync_ns: u64,
}

impl ClassStats {
    /// Mean execution latency per statement, nanoseconds.
    pub fn exec_avg_ns(&self) -> f64 {
        if self.statements == 0 {
            0.0
        } else {
            self.exec_ns as f64 / self.statements as f64
        }
    }

    /// Mean fsync latency per attributed fsync, nanoseconds.
    pub fn fsync_avg_ns(&self) -> f64 {
        if self.wal_fsyncs == 0 {
            0.0
        } else {
            self.wal_fsync_ns as f64 / self.wal_fsyncs as f64
        }
    }
}

/// Snapshot every statement class, in declaration order.
pub fn class_snapshot() -> Vec<ClassStats> {
    StmtClass::ALL
        .iter()
        .map(|&c| ClassStats {
            class: c.name(),
            statements: cell(c, 0).load(Ordering::Relaxed),
            exec_ns: cell(c, 1).load(Ordering::Relaxed),
            wal_appends: cell(c, 2).load(Ordering::Relaxed),
            wal_fsyncs: cell(c, 3).load(Ordering::Relaxed),
            wal_fsync_ns: cell(c, 4).load(Ordering::Relaxed),
        })
        .collect()
}

pub(crate) fn reset_classes() {
    for cell in &MATRIX {
        cell.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_class(), StmtClass::Other);
        {
            let _a = class_scope(StmtClass::Insert);
            assert_eq!(current_class(), StmtClass::Insert);
            {
                let _b = class_scope(StmtClass::Select);
                assert_eq!(current_class(), StmtClass::Select);
            }
            assert_eq!(current_class(), StmtClass::Insert);
        }
        assert_eq!(current_class(), StmtClass::Other);
    }

    #[test]
    fn statement_accounting_and_averages() {
        let _g = crate::test_guard();
        crate::set_stats_enabled(true);
        let before = class_snapshot()
            .into_iter()
            .find(|c| c.class == "update")
            .unwrap();
        record_statement(StmtClass::Update, 2_000);
        record_statement(StmtClass::Update, 4_000);
        let after = class_snapshot()
            .into_iter()
            .find(|c| c.class == "update")
            .unwrap();
        assert_eq!(after.statements, before.statements + 2);
        assert_eq!(after.exec_ns, before.exec_ns + 6_000);
        assert!(after.exec_avg_ns() > 0.0);
        let empty = ClassStats {
            class: "x",
            statements: 0,
            exec_ns: 0,
            wal_appends: 0,
            wal_fsyncs: 0,
            wal_fsync_ns: 0,
        };
        assert_eq!(empty.exec_avg_ns(), 0.0);
        assert_eq!(empty.fsync_avg_ns(), 0.0);
    }
}
