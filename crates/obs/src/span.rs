//! Hierarchical tracing spans with a pluggable sink.
//!
//! With no sink attached, [`span`] costs one relaxed atomic load and
//! returns an inert guard — no clock read, no id allocation, no string
//! work. With a sink attached, each span captures wall time, best-effort
//! thread CPU time, and its parent (tracked in thread-local storage);
//! the finished [`SpanRecord`] is handed to the sink on drop.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Receives finished spans. Child spans arrive before their parent
/// (spans are reported on drop), carrying the parent's id.
pub trait Sink: Send + Sync {
    /// Called once per finished span.
    fn record(&self, span: &SpanRecord);
}

static SINK_ATTACHED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SLOT: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
    &SLOT
}

thread_local! {
    static CURRENT_PARENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Install (or with `None`, remove) the global span sink.
pub fn set_sink(sink: Option<Arc<dyn Sink>>) {
    let attached = sink.is_some();
    *sink_slot().write().expect("obs sink lock") = sink;
    SINK_ATTACHED.store(attached, Ordering::Release);
}

/// Is a span sink currently attached?
#[inline]
pub fn sink_attached() -> bool {
    SINK_ATTACHED.load(Ordering::Acquire)
}

/// A finished span as delivered to the [`Sink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (creation-ordered across threads).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static site name (`statement`, `element`, `shipment`, …).
    pub name: &'static str,
    /// Dynamic context, e.g. `id=s_old kind=source`.
    pub detail: String,
    /// Wall-clock duration, nanoseconds.
    pub wall_ns: u64,
    /// Thread CPU time consumed, when the platform exposes it.
    pub cpu_ns: Option<u64>,
}

struct Active {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    detail: String,
    start: Instant,
    cpu_start: Option<u64>,
}

/// RAII span guard; records to the sink on drop. Inert (all no-ops)
/// when no sink was attached at creation time.
pub struct Span(Option<Active>);

/// Open a span. The guard closes — and reports — the span when dropped.
pub fn span(name: &'static str) -> Span {
    if !sink_attached() {
        return Span(None);
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_PARENT.with(|p| p.replace(Some(id)));
    Span(Some(Active {
        id,
        parent,
        name,
        detail: String::new(),
        start: Instant::now(),
        cpu_start: thread_cpu_ns(),
    }))
}

impl Span {
    /// Append context to the span's detail string. The closure only runs
    /// when the span is live, so callers pay nothing to build detail
    /// strings while tracing is off.
    pub fn annotate(&mut self, f: impl FnOnce() -> String) {
        if let Some(a) = &mut self.0 {
            if !a.detail.is_empty() {
                a.detail.push(' ');
            }
            a.detail.push_str(&f());
        }
    }

    /// Is this span actually recording?
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        CURRENT_PARENT.with(|p| p.set(a.parent));
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            detail: a.detail,
            wall_ns: a.start.elapsed().as_nanos() as u64,
            cpu_ns: match (a.cpu_start, thread_cpu_ns()) {
                (Some(s), Some(e)) => Some(e.saturating_sub(s)),
                _ => None,
            },
        };
        if let Some(sink) = sink_slot().read().expect("obs sink lock").as_ref() {
            sink.record(&record);
        }
    }
}

/// Best-effort thread CPU time in nanoseconds (Linux: first field of
/// `/proc/thread-self/schedstat`); `None` where unavailable. Only read
/// while a sink is attached, so the file I/O never hits the hot path.
fn thread_cpu_ns() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
        s.split_whitespace().next()?.parse().ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// A [`Sink`] that keeps every span and renders them as an indented
/// trace tree — the backend of `perfbase query --trace <file>`.
#[derive(Default)]
pub struct TraceCollector {
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceCollector {
    /// New, empty collector behind an [`Arc`] (ready for [`set_sink`]).
    pub fn new() -> Arc<TraceCollector> {
        Arc::new(TraceCollector::default())
    }

    /// Copy of every span collected so far, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("trace lock").clone()
    }

    /// Number of spans collected.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace lock").len()
    }

    /// No spans collected yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the collected spans as an indented tree, children in
    /// creation order. One line per span:
    /// `name detail [wall=…, cpu=…]`.
    pub fn render(&self) -> String {
        let mut records = self.records();
        records.sort_by_key(|r| r.id);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
        let mut roots: Vec<usize> = Vec::new();
        let index_of = |id: u64, records: &[SpanRecord]| -> Option<usize> {
            records.binary_search_by_key(&id, |r| r.id).ok()
        };
        for (i, r) in records.iter().enumerate() {
            match r.parent.and_then(|p| index_of(p, &records)) {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            let r = &records[i];
            out.push_str(&"  ".repeat(depth));
            out.push_str(r.name);
            if !r.detail.is_empty() {
                out.push(' ');
                out.push_str(&r.detail);
            }
            out.push_str(&format!(" [wall={}", crate::fmt_ns(r.wall_ns)));
            if let Some(cpu) = r.cpu_ns {
                out.push_str(&format!(", cpu={}", crate::fmt_ns(cpu)));
            }
            out.push_str("]\n");
            for &c in children[i].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        out
    }
}

impl Sink for TraceCollector {
    fn record(&self, span: &SpanRecord) {
        self.spans.lock().expect("trace lock").push(span.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_sink() {
        let _g = crate::test_guard();
        set_sink(None);
        let mut s = span("idle");
        assert!(!s.is_active());
        s.annotate(|| panic!("annotate closure must not run while inert"));
    }

    #[test]
    fn collector_builds_a_tree() {
        let _g = crate::test_guard();
        let collector = TraceCollector::new();
        set_sink(Some(collector.clone()));
        {
            let mut outer = span("outer");
            outer.annotate(|| "op=test".to_string());
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        set_sink(None);
        let records = collector.records();
        assert_eq!(records.len(), 2);
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.wall_ns >= inner.wall_ns);
        assert_eq!(outer.detail, "op=test");

        let tree = collector.render();
        let outer_line = tree.lines().find(|l| l.starts_with("outer")).unwrap();
        let inner_line = tree.lines().find(|l| l.contains("inner")).unwrap();
        assert!(outer_line.contains("op=test"));
        assert!(
            inner_line.starts_with("  "),
            "inner must be indented: {tree}"
        );
    }

    #[test]
    fn spans_after_detach_are_inert() {
        let _g = crate::test_guard();
        let collector = TraceCollector::new();
        set_sink(Some(collector.clone()));
        drop(span("recorded"));
        set_sink(None);
        drop(span("ignored"));
        assert!(collector.records().iter().all(|r| r.name != "ignored"));
    }
}
