//! Fixed-bucket histograms: 32 power-of-two buckets of relaxed atomics.
//!
//! Bucket `i` holds values in `[2^i, 2^(i+1))` (bucket 0 additionally
//! holds zero; bucket 31 holds everything from `2^31` up). Recording is
//! a leading-zeros computation plus two relaxed RMWs (sum + bucket; the
//! count is derived from the buckets at snapshot time) — no allocation,
//! no locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets per histogram.
pub const BUCKETS: usize = 32;

macro_rules! hists {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// One engine histogram; values are nanoseconds unless the name
        /// says otherwise.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Hist {
            $($(#[$doc])* $variant,)+
        }

        impl Hist {
            /// Every histogram, in declaration order.
            pub const ALL: &'static [Hist] = &[$(Hist::$variant,)+];

            /// Report name, `area.metric`.
            pub fn name(self) -> &'static str {
                match self {
                    $(Hist::$variant => $name,)+
                }
            }
        }
    };
}

hists! {
    /// SQL parse latency per statement.
    ParseNs => "sql.parse_ns",
    /// Statement execution latency (post-parse).
    ExecNs => "sql.exec_ns",
    /// Access-path planning latency per single-table SELECT.
    PlanNs => "plan.plan_ns",
    /// WAL append latency (encode + write + any inline sync).
    WalAppendNs => "wal.append_ns",
    /// WAL fsync latency.
    WalFsyncNs => "wal.fsync_ns",
    /// Frames made durable per fsync (group-commit batch size).
    WalBatchFrames => "wal.batch_frames",
    /// Query-DAG element wall time.
    ElementNs => "dag.element_ns",
    /// Rows per cluster shipment.
    ShipmentRows => "cluster.shipment_rows",
    /// `/query` endpoint latency (admission wait + execution + render).
    HttpQueryNs => "http.query_ns",
    /// `/ingest` endpoint latency (admission wait + execution).
    HttpIngestNs => "http.ingest_ns",
    /// `/stats` endpoint latency.
    HttpStatsNs => "http.stats_ns",
    /// Latency of every other endpoint (health, epoch, sessions, shutdown).
    HttpOtherNs => "http.other_ns",
    /// Latency of shipping one batch of WAL frames to every live replica.
    ReplShipNs => "repl.ship_ns",
    /// Failover latency: promoting the most-caught-up replica, including
    /// the replay of its shipped-but-unapplied tail.
    ReplFailoverNs => "repl.failover_ns",
}

const N: usize = Hist::ALL.len();

struct Cell {
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Cell {
    const fn new() -> Cell {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Cell {
            sum: ZERO,
            buckets: [ZERO; BUCKETS],
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY: Cell = Cell::new();
static HISTS: [Cell; N] = [EMPTY; N];

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Record one value (no-op when stats are disabled).
#[inline]
pub fn record(h: Hist, v: u64) {
    if crate::stats_enabled() {
        let cell = &HISTS[h as usize];
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Record a [`Duration`] as nanoseconds.
#[inline]
pub fn record_duration(h: Hist, d: Duration) {
    record(h, d.as_nanos() as u64);
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Report name.
    pub name: &'static str,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`); 0 when empty. Approximate by construction: the
    /// answer is exact only up to bucket granularity (a factor of two).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }
}

/// Snapshot every histogram (zero-count ones included).
pub fn hist_snapshot() -> Vec<HistSnapshot> {
    Hist::ALL
        .iter()
        .map(|&h| {
            let cell = &HISTS[h as usize];
            let mut buckets = [0u64; BUCKETS];
            for (dst, src) in buckets.iter_mut().zip(cell.buckets.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            HistSnapshot {
                name: h.name(),
                count: buckets.iter().sum(),
                sum: cell.sum.load(Ordering::Relaxed),
                buckets,
            }
        })
        .collect()
}

pub(crate) fn reset_hists() {
    for cell in &HISTS {
        cell.sum.store(0, Ordering::Relaxed);
        for b in &cell.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn mean_and_quantile() {
        let _g = crate::test_guard();
        crate::set_stats_enabled(true);
        // ShipmentRows is otherwise unused by obs's own tests.
        let base = hist_snapshot()
            .into_iter()
            .find(|s| s.name == "cluster.shipment_rows")
            .unwrap();
        for v in [1u64, 2, 4, 8, 1000] {
            record(Hist::ShipmentRows, v);
        }
        let snap = hist_snapshot()
            .into_iter()
            .find(|s| s.name == "cluster.shipment_rows")
            .unwrap();
        assert_eq!(snap.count, base.count + 5);
        assert_eq!(snap.sum, base.sum + 1015);
        assert!(snap.mean() > 0.0);
        // The p99 bucket bound must cover the largest recorded value.
        assert!(snap.quantile(0.99) >= 1000);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let s = HistSnapshot {
            name: "x",
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        };
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }
}
