//! Telemetry for the perfbase stack: engine counters, fixed-bucket
//! histograms, hierarchical tracing spans, and per-statement-class
//! accounting — all std-only and designed to be near-zero-cost when
//! nobody is looking.
//!
//! The subsystem has two tiers with different cost models:
//!
//! * **Counters, histograms, and the statement-class matrix** are always
//!   compiled in and always hot. Every operation is a single relaxed
//!   atomic RMW on pre-allocated statics — no locks, no allocation, no
//!   branching beyond one enabled-flag load. They can be switched off
//!   entirely with [`set_stats_enabled`] (one atomic load remains), which
//!   is what the `telemetry_overhead` microbench compares against.
//! * **Spans** cost one atomic load when no [`Sink`] is attached (the
//!   guard is inert: no clock read, no id allocation, no detail string).
//!   With a sink attached — `perfbase query --trace <file>` installs a
//!   [`TraceCollector`] — each span records wall time, best-effort thread
//!   CPU time, and a parent link maintained in thread-local storage, so
//!   the collector can render the full call tree of a query.
//!
//! Naming scheme (documented in DESIGN.md §5): counters and histograms
//! are `area.metric` (`wal.fsyncs`, `plan.point_lookup`, …); span names
//! are the static site name (`statement`, `element`, `shipment`) with
//! dynamic context carried in the detail string (`id=s_old kind=source`).

#![warn(missing_docs)]

mod class;
mod counter;
mod hist;
mod report;
mod span;

pub use class::{
    class_scope, class_snapshot, current_class, record_statement, ClassScope, ClassStats, StmtClass,
};
pub use counter::{add, counters_snapshot, get, incr, set, Counter};
pub use hist::{hist_snapshot, record, record_duration, Hist, HistSnapshot, BUCKETS};
pub use report::{fmt_ns, render_stats};
pub use span::{set_sink, sink_attached, span, Sink, Span, SpanRecord, TraceCollector};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable counter/histogram/class recording globally.
///
/// Disabled, every recording call degrades to a single relaxed atomic
/// load — the baseline the `telemetry_overhead` microbench measures the
/// enabled path against. Spans are controlled separately by the presence
/// of a [`Sink`].
pub fn set_stats_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Are counters/histograms currently recording?
pub fn stats_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reset every counter, histogram, and statement-class cell to zero.
///
/// Intended for `perfbase stats --reset` and for tests that need a clean
/// slate; concurrent recorders are not synchronized against (individual
/// cells reset independently).
pub fn reset() {
    counter::reset_counters();
    hist::reset_hists();
    class::reset_classes();
}

/// Record one WAL append: byte count and wall latency, attributed to the
/// calling thread's current statement class.
pub fn wal_append(bytes: u64, ns: u64) {
    incr(Counter::WalAppends);
    add(Counter::WalAppendBytes, bytes);
    record(Hist::WalAppendNs, ns);
    class::class_wal_append();
}

/// Record one WAL fsync: the group-commit batch size (frames made durable
/// by this sync) and wall latency, attributed to the calling thread's
/// current statement class.
pub fn wal_fsync(batch_frames: u64, ns: u64) {
    incr(Counter::WalFsyncs);
    record(Hist::WalFsyncNs, ns);
    record(Hist::WalBatchFrames, batch_frames);
    class::class_wal_fsync(ns);
}

/// Serializes unit tests that touch the global enabled flag, counters,
/// or the span sink (all process-wide state).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_switch_gates_recording() {
        let _g = test_guard();
        set_stats_enabled(true);
        let before = get(Counter::WalAppends);
        wal_append(10, 100);
        assert_eq!(get(Counter::WalAppends), before + 1);
        set_stats_enabled(false);
        wal_append(10, 100);
        assert_eq!(get(Counter::WalAppends), before + 1);
        set_stats_enabled(true);
    }

    #[test]
    fn wal_helpers_update_class_matrix() {
        let _g = test_guard();
        set_stats_enabled(true);
        let _scope = class_scope(StmtClass::Insert);
        let before = class_snapshot()
            .into_iter()
            .find(|c| c.class == "insert")
            .unwrap();
        wal_append(32, 1_000);
        wal_fsync(4, 50_000);
        let after = class_snapshot()
            .into_iter()
            .find(|c| c.class == "insert")
            .unwrap();
        assert_eq!(after.wal_appends, before.wal_appends + 1);
        assert_eq!(after.wal_fsyncs, before.wal_fsyncs + 1);
        assert!(after.wal_fsync_ns >= before.wal_fsync_ns + 50_000);
    }
}
