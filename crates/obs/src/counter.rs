//! Named engine counters: pre-allocated relaxed atomics, one per metric.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $variant:ident => $name:literal,)+) => {
        /// One engine counter. The wire/report name (`area.metric`) is
        /// returned by [`Counter::name`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)+
        }

        impl Counter {
            /// Every counter, in declaration order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant,)+];

            /// Report name, `area.metric`.
            pub fn name(self) -> &'static str {
                match self {
                    $(Counter::$variant => $name,)+
                }
            }
        }
    };
}

counters! {
    /// Statements parsed by the SQL front-end.
    StmtParsed => "sql.statements_parsed",
    /// Statements executed through `Engine::execute`.
    StmtExecuted => "sql.statements_executed",
    /// SELECT/EXPLAIN queries answered through `Engine::query`.
    QueriesRun => "sql.queries_run",
    /// Planner chose a hash-index point lookup.
    PlanPointLookup => "plan.point_lookup",
    /// Planner chose an ordered-index IN-list probe.
    PlanInList => "plan.in_list",
    /// Planner chose an ordered-index range window.
    PlanRangeWindow => "plan.range_window",
    /// Planner fell back to a full table scan.
    PlanFullScan => "plan.full_scan",
    /// Planner proved the predicate can never match (no scan at all).
    PlanFalsified => "plan.falsified",
    /// Individual index probes issued (one per key, so an IN-list of k
    /// keys counts k).
    IndexProbes => "plan.index_probes",
    /// Candidate rows produced by index access paths before the residual
    /// filter runs.
    IndexCandidateRows => "plan.index_candidate_rows",
    /// Rows checked by the residual filter after an index access path.
    ResidualChecks => "plan.residual_checks",
    /// Rows dropped by the residual filter.
    ResidualDrops => "plan.residual_drops",
    /// Rows visited by full table scans.
    ScanRowsVisited => "scan.rows_visited",
    /// Full scans executed on multiple threads.
    ParallelScans => "scan.parallel",
    /// Full scans executed on one thread.
    SerialScans => "scan.serial",
    /// Single-table SELECTs answered by the vectorized columnar path.
    VectorizedScans => "scan.vectorized",
    /// Columnar SELECTs whose WHERE clause didn't vectorize (row fallback).
    VectorizedFallbacks => "scan.vectorized_fallback",
    /// Calibrated minimum row count for going parallel (gauge).
    ParallelThresholdRows => "scan.parallel_threshold_rows",
    /// Calibrated scan-thread cap (gauge).
    ScanThreadCap => "scan.thread_cap",
    /// Calibrated per-row scan cost in nanoseconds (gauge).
    ScanPerRowNanos => "scan.per_row_ns",
    /// Frames appended to the write-ahead log.
    WalAppends => "wal.appends",
    /// Payload bytes appended to the write-ahead log.
    WalAppendBytes => "wal.append_bytes",
    /// fsync calls issued by the write-ahead log.
    WalFsyncs => "wal.fsyncs",
    /// Node-to-node shipments (header + payload message pairs).
    ClusterShipments => "cluster.shipments",
    /// Simulated interconnect messages charged.
    ClusterMessages => "cluster.messages",
    /// Rows moved across the simulated interconnect.
    ClusterRowsShipped => "cluster.rows_shipped",
    /// Query-DAG elements executed.
    DagElements => "dag.elements",
    /// Source/operator pairs fused into a sharded aggregation pushdown.
    DagPushdownFused => "dag.pushdown_fused",
    /// Remote shards materialised on the frontend (pushdown fallback).
    DagShardsMaterialized => "dag.shards_materialized",
    /// Estimated heap bytes of all tables under the row layout (gauge,
    /// refreshed by `Engine::refresh_memory_gauges`).
    MemRowBytes => "mem.row_bytes",
    /// Estimated heap bytes of all tables under the columnar layout (gauge).
    MemColumnarBytes => "mem.columnar_bytes",
    /// Dictionary bytes across all columnar TEXT columns (gauge).
    MemDictBytes => "mem.dict_bytes",
    /// Dictionary entries across all columnar TEXT columns (gauge).
    MemDictEntries => "mem.dict_entries",
    /// Tables currently stored in the columnar layout (gauge).
    MemColumnarTables => "mem.columnar_tables",
    /// Catalog snapshots pinned by readers (`Engine::snapshot`).
    MvccSnapshotsPinned => "mvcc.snapshots_pinned",
    /// Copy-on-write table clones forced because a pinned snapshot still
    /// referenced the version a writer wanted to mutate.
    MvccCowClones => "mvcc.cow_clones",
    /// Current commit epoch (gauge; bumped once per applied mutation).
    MvccEpoch => "mvcc.epoch",
    /// HTTP requests accepted by the server front end.
    HttpRequests => "http.requests",
    /// Requests answered 503: admission queue full, queue wait timed out,
    /// the session table was full, or the connection limit was exceeded.
    HttpRejectedOverload => "http.rejected_503",
    /// Open client connections (gauge).
    HttpActiveConns => "http.active_conns",
    /// Statements waiting in the admission queue (gauge).
    HttpQueueDepth => "http.queue_depth",
    /// Registered query sessions holding a pinned snapshot (gauge).
    HttpSessions => "http.sessions",
    /// WAL frames shipped from a primary to a replica (one count per
    /// frame per replica it reached).
    ReplFramesShipped => "repl.frames_shipped",
    /// Shipped frames applied on a replica through the replay path.
    ReplFramesApplied => "repl.frames_applied",
    /// Frames buffered on primaries awaiting shipment (gauge; the
    /// instantaneous ship lag, refreshed on every append and ship).
    ReplShipLag => "repl.ship_lag",
    /// Shard reads the frontend routed to a replica instead of the primary.
    ReplReplicaReads => "repl.replica_reads",
    /// Shard reads served by the primary (replica stale, dead, or its
    /// round-robin turn).
    ReplPrimaryReads => "repl.primary_reads",
    /// Replica reads that fell back to the primary because the replica was
    /// behind the last committed sequence (freshness gate).
    ReplStaleFallbacks => "repl.stale_fallbacks",
    /// Completed failovers (a replica promoted to primary).
    ReplFailovers => "repl.failovers",
    /// Pre-compaction barriers that shipped pending frames before the log
    /// dropped them.
    ReplCompactBarriers => "repl.compact_barriers",
}

const N: usize = Counter::ALL.len();

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; N] = [ZERO; N];

/// Add `n` to a counter (relaxed; no-op when stats are disabled).
#[inline]
pub fn add(c: Counter, n: u64) {
    // The n == 0 check skips the atomic RMW for the common hot-path case
    // of "nothing to report" (e.g. zero residual drops on an exact index
    // probe).
    if n != 0 && crate::stats_enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Increment a counter by one.
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Overwrite a counter — for gauge-style values such as the calibrated
/// parallel-scan threshold. Stored even when stats are disabled, so
/// calibration results are always inspectable.
#[inline]
pub fn set(c: Counter, v: u64) {
    COUNTERS[c as usize].store(v, Ordering::Relaxed);
}

/// Current value of a counter.
#[inline]
pub fn get(c: Counter) -> u64 {
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

/// Snapshot of every counter as `(name, value)` pairs, in declaration
/// order (zeros included — callers filter).
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    Counter::ALL.iter().map(|&c| (c.name(), get(c))).collect()
}

pub(crate) fn reset_counters() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let _g = crate::test_guard();
        crate::set_stats_enabled(true);
        let before = get(Counter::IndexProbes);
        add(Counter::IndexProbes, 3);
        incr(Counter::IndexProbes);
        assert_eq!(get(Counter::IndexProbes), before + 4);
    }

    #[test]
    fn gauge_set_bypasses_enable_switch() {
        set(Counter::ParallelThresholdRows, 4096);
        assert_eq!(get(Counter::ParallelThresholdRows), 4096);
    }

    #[test]
    fn snapshot_names_are_unique() {
        let snap = counters_snapshot();
        assert_eq!(snap.len(), Counter::ALL.len());
        let mut names: Vec<_> = snap.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }
}
