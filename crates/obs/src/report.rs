//! Human-readable rendering of the telemetry state — the backend of
//! `perfbase stats`.

use crate::{class_snapshot, counters_snapshot, hist_snapshot};
use std::fmt::Write as _;

/// Format nanoseconds with a human unit (`482ns`, `12.5us`, `3.1ms`,
/// `2.4s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Render every non-zero counter, histogram, and statement class as an
/// aligned text report.
pub fn render_stats() -> String {
    let mut out = String::new();

    out.push_str("== counters ==\n");
    let mut any = false;
    for (name, value) in counters_snapshot() {
        if value > 0 {
            let _ = writeln!(out, "{name:<32} {value:>12}");
            any = true;
        }
    }
    if !any {
        out.push_str("(no activity recorded)\n");
    }

    let live: Vec<_> = hist_snapshot()
        .into_iter()
        .filter(|h| h.count > 0)
        .collect();
    if !live.is_empty() {
        out.push_str("\n== histograms ==\n");
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "p50<=", "p99<="
        );
        for h in live {
            let time_valued = h.name.ends_with("_ns");
            let fmt = |v: u64| {
                if time_valued {
                    fmt_ns(v)
                } else {
                    v.to_string()
                }
            };
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>12} {:>12} {:>12}",
                h.name,
                h.count,
                fmt(h.mean() as u64),
                fmt(h.quantile(0.5)),
                fmt(h.quantile(0.99)),
            );
        }
    }

    let classes: Vec<_> = class_snapshot()
        .into_iter()
        .filter(|c| c.statements > 0 || c.wal_appends > 0 || c.wal_fsyncs > 0)
        .collect();
    if !classes.is_empty() {
        out.push_str("\n== statement classes ==\n");
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>12} {:>10} {:>14}",
            "class", "stmts", "exec avg", "wal appends", "fsyncs", "fsync avg"
        );
        for c in classes {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>12} {:>12} {:>10} {:>14}",
                c.class,
                c.statements,
                fmt_ns(c.exec_avg_ns() as u64),
                c.wal_appends,
                c.wal_fsyncs,
                fmt_ns(c.fsync_avg_ns() as u64),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(482), "482ns");
        assert_eq!(fmt_ns(12_500), "12.5us");
        assert_eq!(fmt_ns(3_100_000), "3.1ms");
        assert_eq!(fmt_ns(2_400_000_000), "2.40s");
    }

    #[test]
    fn report_renders_activity() {
        let _g = crate::test_guard();
        crate::set_stats_enabled(true);
        crate::incr(crate::Counter::StmtParsed);
        crate::record(crate::Hist::ParseNs, 1_000);
        crate::record_statement(crate::StmtClass::Select, 5_000);
        let r = render_stats();
        assert!(r.contains("sql.statements_parsed"), "{r}");
        assert!(r.contains("sql.parse_ns"), "{r}");
        assert!(r.contains("select"), "{r}");
    }
}
