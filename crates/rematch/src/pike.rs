//! The Pike VM: executes a compiled [`Program`] over input text in
//! `O(len(text) · len(program))` time while tracking capture slots.
//!
//! Thread priority encodes leftmost-first (Perl-like) match semantics:
//! threads earlier in the list are preferred; a `Split` adds its preferred
//! branch first, and new start-of-match threads are appended last so earlier
//! starting positions always win.

use crate::ast::{is_word_char, ClassItem};
use crate::compile::{Inst, Program};

type Slots = Vec<Option<usize>>;

struct ThreadList {
    /// Threads in priority order.
    dense: Vec<(usize, Slots)>,
    /// `seen[pc]` marks program counters already queued this step.
    seen: Vec<bool>,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList {
            dense: Vec::with_capacity(16),
            seen: vec![false; n],
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.seen.iter_mut().for_each(|s| *s = false);
    }
}

/// Context needed to evaluate position assertions.
#[derive(Clone, Copy)]
struct Pos {
    /// Byte offset in the haystack.
    at: usize,
    /// Total haystack length in bytes.
    len: usize,
    /// Character immediately before `at`, if any.
    prev: Option<char>,
    /// Character at `at`, if any.
    next: Option<char>,
}

impl Pos {
    fn word_boundary(&self) -> bool {
        let before = self.prev.map(is_word_char).unwrap_or(false);
        let after = self.next.map(is_word_char).unwrap_or(false);
        before != after
    }
}

/// Follow epsilon transitions from `pc`, queueing consuming instructions.
fn add_thread(prog: &Program, list: &mut ThreadList, pc: usize, slots: &Slots, pos: Pos) {
    // Explicit stack to avoid recursion depth issues on large programs.
    let mut stack: Vec<(usize, Option<Slots>)> = vec![(pc, None)];
    while let Some((pc, owned)) = stack.pop() {
        if list.seen[pc] {
            continue;
        }
        list.seen[pc] = true;
        let cur: &Slots = owned.as_ref().unwrap_or(slots);
        match &prog.insts[pc] {
            Inst::Jmp(x) => stack.push((*x, owned.clone())),
            Inst::Split(a, b) => {
                // Preferred branch `a` must be explored first ⇒ push `b` first.
                stack.push((*b, owned.clone()));
                stack.push((*a, owned));
            }
            Inst::Save(slot) => {
                let mut s = cur.clone();
                if *slot < s.len() {
                    s[*slot] = Some(pos.at);
                }
                stack.push((pc + 1, Some(s)));
            }
            Inst::AssertStart => {
                if pos.at == 0 {
                    stack.push((pc + 1, owned));
                }
            }
            Inst::AssertEnd => {
                if pos.at == pos.len {
                    stack.push((pc + 1, owned));
                }
            }
            Inst::AssertWord(want) => {
                if pos.word_boundary() == *want {
                    stack.push((pc + 1, owned));
                }
            }
            Inst::Char(_) | Inst::Any | Inst::Class { .. } | Inst::MatchEnd => {
                list.dense.push((pc, cur.clone()));
            }
        }
    }
}

fn fold(c: char) -> char {
    if c.is_ascii() {
        c.to_ascii_lowercase()
    } else {
        c.to_lowercase().next().unwrap_or(c)
    }
}

fn char_eq(a: char, b: char, ci: bool) -> bool {
    a == b || (ci && fold(a) == fold(b))
}

fn class_contains(items: &[ClassItem], negated: bool, c: char, ci: bool) -> bool {
    let mut hit = items.iter().any(|i| i.contains(c));
    if !hit && ci {
        let lo = fold(c);
        let up = c.to_uppercase().next().unwrap_or(c);
        hit = items.iter().any(|i| i.contains(lo) || i.contains(up));
    }
    hit != negated
}

/// Search `text` for the leftmost match at or after byte offset `start`.
/// Returns the capture slots on success.
pub fn search(prog: &Program, text: &str, start: usize) -> Option<Slots> {
    if start > text.len() {
        return None;
    }
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    let mut matched: Option<Slots> = None;
    let empty_slots: Slots = vec![None; prog.num_slots];

    let bytes_len = text.len();
    let mut at = start;
    let mut prev: Option<char> = if start == 0 {
        None
    } else {
        text[..start].chars().next_back()
    };

    loop {
        let next_char = text[at..].chars().next();
        let pos = Pos {
            at,
            len: bytes_len,
            prev,
            next: next_char,
        };

        if matched.is_none() {
            // New potential match start — lowest priority.
            add_thread(prog, &mut clist, 0, &empty_slots, pos);
        }

        let mut i = 0;
        while i < clist.dense.len() {
            let (pc, slots) = {
                let t = &clist.dense[i];
                (t.0, t.1.clone())
            };
            match &prog.insts[pc] {
                Inst::MatchEnd => {
                    // Leftmost-first: this thread beats every lower-priority
                    // thread, so drop them; higher-priority threads continue.
                    matched = Some(slots);
                    clist.dense.truncate(i + 1);
                    break;
                }
                Inst::Char(x) => {
                    if let Some(c) = next_char {
                        if char_eq(c, *x, prog.case_insensitive) {
                            let npos = Pos {
                                at: at + c.len_utf8(),
                                len: bytes_len,
                                prev: Some(c),
                                next: text[at + c.len_utf8()..].chars().next(),
                            };
                            add_thread(prog, &mut nlist, pc + 1, &slots, npos);
                        }
                    }
                }
                Inst::Any => {
                    if let Some(c) = next_char {
                        if c != '\n' {
                            let npos = Pos {
                                at: at + c.len_utf8(),
                                len: bytes_len,
                                prev: Some(c),
                                next: text[at + c.len_utf8()..].chars().next(),
                            };
                            add_thread(prog, &mut nlist, pc + 1, &slots, npos);
                        }
                    }
                }
                Inst::Class { negated, items } => {
                    if let Some(c) = next_char {
                        if class_contains(items, *negated, c, prog.case_insensitive) {
                            let npos = Pos {
                                at: at + c.len_utf8(),
                                len: bytes_len,
                                prev: Some(c),
                                next: text[at + c.len_utf8()..].chars().next(),
                            };
                            add_thread(prog, &mut nlist, pc + 1, &slots, npos);
                        }
                    }
                }
                // Epsilon instructions never appear in the dense list.
                _ => unreachable!("epsilon instruction queued as thread"),
            }
            i += 1;
        }

        std::mem::swap(&mut clist, &mut nlist);
        nlist.clear();

        match next_char {
            None => break,
            Some(c) => {
                if clist.dense.is_empty() && matched.is_some() {
                    break;
                }
                prev = Some(c);
                at += c.len_utf8();
            }
        }
    }

    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn run(pat: &str, text: &str) -> Option<(usize, usize)> {
        let p = compile(&parse(pat).unwrap(), false);
        search(&p, text, 0).map(|s| (s[0].unwrap(), s[1].unwrap()))
    }

    #[test]
    fn earliest_start_beats_longer_later() {
        assert_eq!(run("a+|b+", "bb aaa"), Some((0, 2)));
    }

    #[test]
    fn greedy_takes_longest_at_same_start() {
        assert_eq!(run("a*", "aaab"), Some((0, 3)));
    }

    #[test]
    fn anchored_end_only() {
        assert_eq!(run("b$", "abab"), Some((3, 4)));
    }

    #[test]
    fn search_with_offset() {
        let p = compile(&parse("a").unwrap(), false);
        let s = search(&p, "abca", 1).unwrap();
        assert_eq!(s[0], Some(3));
    }

    #[test]
    fn offset_past_end_is_none() {
        let p = compile(&parse("a").unwrap(), false);
        assert!(search(&p, "abc", 10).is_none());
    }

    #[test]
    fn word_boundary_with_offset_context() {
        // Starting mid-word: \b must see the previous character.
        let p = compile(&parse(r"\bcat").unwrap(), false);
        assert!(search(&p, "concat", 3).is_none());
        assert!(search(&p, "con cat", 4).is_some());
    }

    #[test]
    fn empty_pattern_matches_empty_at_start() {
        assert_eq!(run("", "xyz"), Some((0, 0)));
    }
}
