//! Recursive-descent parser from pattern text to [`Ast`].

use crate::ast::{Ast, ClassItem};

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the pattern.
    pub position: usize,
}

struct Parser<'p> {
    chars: Vec<char>,
    pos: usize,
    next_group: u32,
    pattern: &'p str,
}

/// Parse `pattern` into an AST.
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        next_group: 1,
        pattern,
    };
    let ast = p.alternate()?;
    if p.pos < p.chars.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok(ast)
}

impl<'p> Parser<'p> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            position: self.pos.min(self.pattern.len()),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternate := concat ('|' concat)*
    fn alternate(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        })
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    /// repeat := atom ('*'|'+'|'?'|'{m,n}')? '?'?
    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                let save = self.pos;
                match self.counted() {
                    Some(mm) => mm,
                    None => {
                        // `{` not followed by a valid counted form — literal.
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if let (_, Some(mx)) = (min, max) {
            if min > mx {
                return Err(self.err("invalid repetition: min > max"));
            }
        }
        if matches!(
            atom,
            Ast::AnchorStart | Ast::AnchorEnd | Ast::WordBoundary(_) | Ast::Empty
        ) {
            return Err(self.err("repetition operator applied to an anchor"));
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Try to parse `{m}`, `{m,}` or `{m,n}`; restore caller on failure.
    fn counted(&mut self) -> Option<(u32, Option<u32>)> {
        debug_assert_eq!(self.peek(), Some('{'));
        self.bump();
        let min = self.number()?;
        if self.eat('}') {
            return Some((min, Some(min)));
        }
        if !self.eat(',') {
            return None;
        }
        if self.eat('}') {
            return Some((min, None));
        }
        let max = self.number()?;
        if !self.eat('}') {
            return None;
        }
        Some((min, Some(max)))
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .ok()
    }

    /// atom := group | class | escape | anchor | literal
    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Ok(Ast::Empty),
            Some('(') => self.group(),
            Some('[') => self.class(),
            Some('\\') => self.escape(),
            Some('^') => {
                self.bump();
                Ok(Ast::AnchorStart)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::AnchorEnd)
            }
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some(c @ ('*' | '+' | '?')) => {
                Err(self.err(&format!("repetition operator '{c}' with nothing to repeat")))
            }
            Some(')') => Err(self.err("unbalanced ')'")),
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    fn group(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('('));
        self.bump();
        let index = if self.peek() == Some('?') {
            // Only (?:...) is supported of the (?...) family.
            self.bump();
            if !self.eat(':') {
                return Err(self.err("unsupported group flag; only (?:...) is recognised"));
            }
            None
        } else {
            let i = self.next_group;
            self.next_group += 1;
            Some(i)
        };
        let inner = self.alternate()?;
        if !self.eat(')') {
            return Err(self.err("missing ')'"));
        }
        Ok(Ast::Group {
            index,
            node: Box::new(inner),
        })
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('['));
        self.bump();
        let negated = self.eat('^');
        let mut items = Vec::new();
        // A leading `]` is a literal member, as in POSIX.
        if self.peek() == Some(']') {
            self.bump();
            items.push(ClassItem::Char(']'));
        }
        loop {
            let c = match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(']') => break,
                Some('\\') => match self.class_escape()? {
                    ClassEscape::Single(c) => c,
                    ClassEscape::Set(set) => {
                        items.extend(set);
                        continue;
                    }
                },
                Some(c) => c,
            };
            // Possible range c-d.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).copied() != Some(']') {
                self.bump(); // the '-'
                let hi = match self.bump() {
                    None => return Err(self.err("unterminated character class")),
                    Some('\\') => match self.class_escape()? {
                        ClassEscape::Single(c) => c,
                        ClassEscape::Set(_) => {
                            return Err(self.err("class shorthand cannot end a range"))
                        }
                    },
                    Some(hi) => hi,
                };
                if hi < c {
                    return Err(self.err("invalid range in character class"));
                }
                items.push(ClassItem::Range(c, hi));
            } else {
                items.push(ClassItem::Char(c));
            }
        }
        if items.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class { negated, items })
    }

    fn class_escape(&mut self) -> Result<ClassEscape, ParseError> {
        let c = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
        Ok(match c {
            'n' => ClassEscape::Single('\n'),
            't' => ClassEscape::Single('\t'),
            'r' => ClassEscape::Single('\r'),
            '0' => ClassEscape::Single('\0'),
            'd' => ClassEscape::Set(digit_items()),
            'w' => ClassEscape::Set(word_items()),
            's' => ClassEscape::Set(space_items()),
            other => ClassEscape::Single(other),
        })
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('\\'));
        self.bump();
        let c = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
        Ok(match c {
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '0' => Ast::Literal('\0'),
            'd' => Ast::Class {
                negated: false,
                items: digit_items(),
            },
            'D' => Ast::Class {
                negated: true,
                items: digit_items(),
            },
            'w' => Ast::Class {
                negated: false,
                items: word_items(),
            },
            'W' => Ast::Class {
                negated: true,
                items: word_items(),
            },
            's' => Ast::Class {
                negated: false,
                items: space_items(),
            },
            'S' => Ast::Class {
                negated: true,
                items: space_items(),
            },
            'b' => Ast::WordBoundary(true),
            'B' => Ast::WordBoundary(false),
            other => Ast::Literal(other),
        })
    }
}

enum ClassEscape {
    Single(char),
    Set(Vec<ClassItem>),
}

fn digit_items() -> Vec<ClassItem> {
    vec![ClassItem::Range('0', '9')]
}

fn word_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Range('a', 'z'),
        ClassItem::Range('A', 'Z'),
        ClassItem::Range('0', '9'),
        ClassItem::Char('_'),
    ]
}

fn space_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Char(' '),
        ClassItem::Char('\t'),
        ClassItem::Char('\n'),
        ClassItem::Char('\r'),
        ClassItem::Char('\x0b'),
        ClassItem::Char('\x0c'),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_sequence() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn parses_alternation_tree() {
        match parse("a|b|c").unwrap() {
            Ast::Alternate(v) => assert_eq!(v.len(), 3),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn group_indices_assigned_in_order() {
        let ast = parse("(a)(?:b)((c))").unwrap();
        assert_eq!(ast.capture_groups(), 3);
    }

    #[test]
    fn counted_forms() {
        match parse("a{3}").unwrap() {
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match parse("a{2,}").unwrap() {
            Ast::Repeat {
                min: 2, max: None, ..
            } => {}
            other => panic!("{other:?}"),
        }
        match parse("a{2,5}?").unwrap() {
            Ast::Repeat {
                min: 2,
                max: Some(5),
                greedy: false,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn brace_without_count_is_literal() {
        // `a{x}` has no valid counted form; `{` is a literal.
        let ast = parse("a{x}").unwrap();
        match ast {
            Ast::Concat(v) => assert_eq!(v.len(), 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_leading_bracket_literal() {
        match parse("[]a]").unwrap() {
            Ast::Class {
                negated: false,
                items,
            } => {
                assert!(items.contains(&ClassItem::Char(']')));
                assert!(items.contains(&ClassItem::Char('a')));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_trailing_dash_literal() {
        match parse("[a-]").unwrap() {
            Ast::Class { items, .. } => {
                assert!(items.contains(&ClassItem::Char('-')));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_ranges() {
        assert!(parse("[z-a]").is_err());
        assert!(parse("a{5,2}").is_err());
        assert!(parse("(?<name>a)").is_err());
    }

    #[test]
    fn anchors_not_repeatable() {
        assert!(parse("^*").is_err());
        assert!(parse(r"\b+").is_err());
    }
}
