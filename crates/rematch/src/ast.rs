//! Abstract syntax tree for parsed regular expressions.

/// One item inside a character class: a single char or an inclusive range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character, e.g. `a` in `[abc]`.
    Char(char),
    /// An inclusive range, e.g. `a-z`.
    Range(char, char),
}

impl ClassItem {
    /// Does this item contain `c`?
    pub fn contains(&self, c: char) -> bool {
        match *self {
            ClassItem::Char(x) => x == c,
            ClassItem::Range(lo, hi) => lo <= c && c <= hi,
        }
    }
}

/// Parsed regular-expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class `[...]`.
    Class {
        /// True for `[^...]`.
        negated: bool,
        /// The member items.
        items: Vec<ClassItem>,
    },
    /// Sequence of expressions.
    Concat(Vec<Ast>),
    /// `a|b|c`.
    Alternate(Vec<Ast>),
    /// Repetition `{min, max}`; `max == None` means unbounded.
    Repeat {
        /// Repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = infinity.
        max: Option<u32>,
        /// Greedy (default) or lazy (`*?`).
        greedy: bool,
    },
    /// A group. `index` is `Some(i)` for capturing groups `(...)`,
    /// `None` for `(?:...)`.
    Group {
        /// Capture index (1-based), if capturing.
        index: Option<u32>,
        /// Grouped node.
        node: Box<Ast>,
    },
    /// `^` anchor.
    AnchorStart,
    /// `$` anchor.
    AnchorEnd,
    /// `\b` (true) or `\B` (false).
    WordBoundary(bool),
}

impl Ast {
    /// Number of capturing groups contained in this subtree.
    pub fn capture_groups(&self) -> u32 {
        match self {
            Ast::Concat(xs) | Ast::Alternate(xs) => xs.iter().map(Ast::capture_groups).sum(),
            Ast::Repeat { node, .. } => node.capture_groups(),
            Ast::Group { index, node } => u32::from(index.is_some()) + node.capture_groups(),
            _ => 0,
        }
    }
}

/// Is `c` a word character for `\w` / `\b` purposes (ASCII semantics)?
pub fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_item_contains() {
        assert!(ClassItem::Char('x').contains('x'));
        assert!(!ClassItem::Char('x').contains('y'));
        assert!(ClassItem::Range('a', 'f').contains('c'));
        assert!(!ClassItem::Range('a', 'f').contains('g'));
    }

    #[test]
    fn capture_group_counting() {
        // (a)(?:b(c)) has 2 capturing groups.
        let ast = Ast::Concat(vec![
            Ast::Group {
                index: Some(1),
                node: Box::new(Ast::Literal('a')),
            },
            Ast::Group {
                index: None,
                node: Box::new(Ast::Concat(vec![
                    Ast::Literal('b'),
                    Ast::Group {
                        index: Some(2),
                        node: Box::new(Ast::Literal('c')),
                    },
                ])),
            },
        ]);
        assert_eq!(ast.capture_groups(), 2);
    }

    #[test]
    fn word_chars() {
        assert!(is_word_char('a'));
        assert!(is_word_char('Z'));
        assert!(is_word_char('0'));
        assert!(is_word_char('_'));
        assert!(!is_word_char('-'));
        assert!(!is_word_char(' '));
    }
}
