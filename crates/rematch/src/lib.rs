//! `rematch` — a small, dependency-free regular expression engine.
//!
//! perfbase input descriptions locate data in ASCII output files by matching
//! strings or regular expressions (*named locations*, *tabular locations*).
//! This crate provides the matching substrate: a classic Thompson-NFA
//! construction executed by a Pike VM, which guarantees **linear-time**
//! matching in the size of the input — there is no backtracking and therefore
//! no pathological blow-up, which matters when batch-importing thousands of
//! benchmark output files.
//!
//! Supported syntax:
//!
//! * literals, `.` (any char except `\n`)
//! * character classes `[a-z0-9_]`, negated classes `[^...]`
//! * escapes `\d \D \w \W \s \S \n \t \r \. \\ \+ ...`
//! * repetition `* + ? {m} {m,} {m,n}` (greedy and lazy `*?` variants)
//! * alternation `a|b`, grouping `(...)` with capture, `(?:...)` non-capture
//! * anchors `^`, `$`, word boundary `\b` / `\B`
//! * case-insensitive matching via [`RegexBuilder::case_insensitive`]
//!
//! # Example
//!
//! ```
//! use rematch::Regex;
//! let re = Regex::new(r"(\d+) PEs\s+(\d+)\s+(\d+)").unwrap();
//! let caps = re.captures("  4 PEs 2    1024 write").unwrap();
//! assert_eq!(caps.get(1), Some("4"));
//! assert_eq!(caps.get(3), Some("1024"));
//! ```

mod ast;
mod compile;
mod parser;
mod pike;

pub use ast::{Ast, ClassItem};
pub use compile::{Inst, Program};
pub use parser::ParseError;

use std::fmt;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

/// Error produced when compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the pattern where the problem was detected.
    pub position: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error {
            message: e.message,
            position: e.position,
        }
    }
}

/// A successful match: the overall span plus capture groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match<'t> {
    text: &'t str,
    /// Capture slots: `slots[2i]`/`slots[2i+1]` are the start/end byte offsets
    /// of group `i`; group 0 is the whole match.
    slots: Vec<Option<usize>>,
}

impl<'t> Match<'t> {
    /// Byte offset where the whole match starts.
    pub fn start(&self) -> usize {
        self.slots[0].expect("match always has a start")
    }

    /// Byte offset one past the end of the whole match.
    pub fn end(&self) -> usize {
        self.slots[1].expect("match always has an end")
    }

    /// The matched text of the whole pattern.
    pub fn as_str(&self) -> &'t str {
        &self.text[self.start()..self.end()]
    }

    /// The text captured by group `i` (0 = whole match), if it participated.
    pub fn get(&self, i: usize) -> Option<&'t str> {
        let (s, e) = (*self.slots.get(2 * i)?, *self.slots.get(2 * i + 1)?);
        match (s, e) {
            (Some(s), Some(e)) => Some(&self.text[s..e]),
            _ => None,
        }
    }

    /// Number of capture groups (including group 0).
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// True when there are no capture slots at all (never happens for a
    /// match produced by this crate, but required for API completeness).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Builder allowing flags to be set before compilation.
#[derive(Debug, Clone)]
pub struct RegexBuilder {
    pattern: String,
    case_insensitive: bool,
}

impl RegexBuilder {
    /// Start building a regex from `pattern`.
    pub fn new(pattern: &str) -> Self {
        RegexBuilder {
            pattern: pattern.to_string(),
            case_insensitive: false,
        }
    }

    /// Match ASCII letters case-insensitively.
    pub fn case_insensitive(mut self, yes: bool) -> Self {
        self.case_insensitive = yes;
        self
    }

    /// Compile the pattern.
    pub fn build(self) -> Result<Regex, Error> {
        let ast = parser::parse(&self.pattern)?;
        let program = compile::compile(&ast, self.case_insensitive);
        Ok(Regex {
            pattern: self.pattern,
            program,
        })
    }
}

impl Regex {
    /// Compile `pattern` with default flags.
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        RegexBuilder::new(pattern).build()
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups including the implicit group 0.
    pub fn capture_count(&self) -> usize {
        self.program.num_slots / 2
    }

    /// Does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Find the leftmost match in `text`.
    pub fn find<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        self.find_at(text, 0)
    }

    /// Find the leftmost match starting at or after byte offset `start`.
    pub fn find_at<'t>(&self, text: &'t str, start: usize) -> Option<Match<'t>> {
        let slots = pike::search(&self.program, text, start)?;
        Some(Match { text, slots })
    }

    /// Alias of [`Regex::find`] emphasising capture-group access.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        self.find(text)
    }

    /// Iterate over all non-overlapping matches in `text`.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            text,
            pos: 0,
            done: false,
        }
    }

    /// Replace the first match with `replacement` (no group expansion).
    pub fn replace(&self, text: &str, replacement: &str) -> String {
        match self.find(text) {
            None => text.to_string(),
            Some(m) => {
                let mut out = String::with_capacity(text.len());
                out.push_str(&text[..m.start()]);
                out.push_str(replacement);
                out.push_str(&text[m.end()..]);
                out
            }
        }
    }

    /// Split `text` around matches of the pattern.
    pub fn split<'t>(&self, text: &'t str) -> Vec<&'t str> {
        let mut parts = Vec::new();
        let mut last = 0;
        for m in self.find_iter(text) {
            parts.push(&text[last..m.start()]);
            last = m.end();
        }
        parts.push(&text[last..]);
        parts
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    text: &'t str,
    pos: usize,
    done: bool,
}

impl<'r, 't> Iterator for FindIter<'r, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.done {
            return None;
        }
        let m = self.re.find_at(self.text, self.pos)?;
        if m.end() == m.start() {
            // Empty match: advance one char to guarantee progress.
            match self.text[m.end()..].chars().next() {
                Some(c) => self.pos = m.end() + c.len_utf8(),
                None => self.done = true,
            }
        } else {
            self.pos = m.end();
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("abc").unwrap();
        assert!(re.is_match("xxabcxx"));
        assert!(!re.is_match("ab"));
        let m = re.find("xxabcxx").unwrap();
        assert_eq!((m.start(), m.end()), (2, 5));
        assert_eq!(m.as_str(), "abc");
    }

    #[test]
    fn leftmost_match_wins() {
        let re = Regex::new("a+").unwrap();
        let m = re.find("bb aaa aa").unwrap();
        assert_eq!(m.as_str(), "aaa");
        assert_eq!(m.start(), 3);
    }

    #[test]
    fn alternation() {
        let re = Regex::new("cat|dog|bird").unwrap();
        assert_eq!(re.find("hotdog").unwrap().as_str(), "dog");
        assert_eq!(re.find("a bird!").unwrap().as_str(), "bird");
        assert!(!re.is_match("catfishless".replace("cat", "c-t").as_str()));
    }

    #[test]
    fn star_and_plus() {
        let re = Regex::new("ab*c").unwrap();
        assert!(re.is_match("ac"));
        assert!(re.is_match("abbbbc"));
        let re = Regex::new("ab+c").unwrap();
        assert!(!re.is_match("ac"));
        assert!(re.is_match("abc"));
    }

    #[test]
    fn optional() {
        let re = Regex::new("colou?r").unwrap();
        assert!(re.is_match("color"));
        assert!(re.is_match("colour"));
    }

    #[test]
    fn counted_repetition() {
        let re = Regex::new(r"a{2,3}").unwrap();
        assert!(!re.is_match("a"));
        assert_eq!(re.find("aaaa").unwrap().as_str(), "aaa");
        let re = Regex::new(r"\d{4}").unwrap();
        assert!(re.is_match("year 2005"));
        assert!(!re.is_match("x123x"));
        let re = Regex::new(r"a{3}").unwrap();
        assert!(re.is_match("aaa"));
        assert!(!re.is_match("aa"));
        let re = Regex::new(r"a{2,}").unwrap();
        assert_eq!(re.find("aaaaa").unwrap().as_str(), "aaaaa");
    }

    #[test]
    fn classes() {
        let re = Regex::new("[a-f0-9]+").unwrap();
        assert_eq!(re.find("zz deadbeef zz").unwrap().as_str(), "deadbeef");
        let re = Regex::new("[^ ]+").unwrap();
        assert_eq!(re.find("  hello world").unwrap().as_str(), "hello");
    }

    #[test]
    fn class_with_escape_and_literal_dash() {
        let re = Regex::new(r"[\d.-]+").unwrap();
        assert_eq!(re.find("v = -12.5e").unwrap().as_str(), "-12.5");
    }

    #[test]
    fn perl_classes() {
        assert!(Regex::new(r"\d+").unwrap().is_match("abc9"));
        assert!(Regex::new(r"\s").unwrap().is_match("a b"));
        assert!(Regex::new(r"\w+").unwrap().is_match("_id7"));
        assert!(!Regex::new(r"\D").unwrap().is_match("123"));
        assert!(!Regex::new(r"\S").unwrap().is_match(" \t\n"));
        assert!(!Regex::new(r"\W").unwrap().is_match("abc_123"));
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^abc").unwrap();
        assert!(re.is_match("abcdef"));
        assert!(!re.is_match("xabc"));
        let re = Regex::new("abc$").unwrap();
        assert!(re.is_match("xyzabc"));
        assert!(!re.is_match("abcx"));
        let re = Regex::new("^$").unwrap();
        assert!(re.is_match(""));
        assert!(!re.is_match("a"));
    }

    #[test]
    fn word_boundaries() {
        let re = Regex::new(r"\bread\b").unwrap();
        assert!(re.is_match("total read bytes"));
        assert!(!re.is_match("rereading"));
        let re = Regex::new(r"\Bead\B").unwrap();
        assert!(re.is_match("treading"));
        assert!(!re.is_match("ead"));
    }

    #[test]
    fn captures_basic() {
        let re = Regex::new(r"(\w+)=(\d+)").unwrap();
        let m = re.captures("  nproc=16;").unwrap();
        assert_eq!(m.get(0), Some("nproc=16"));
        assert_eq!(m.get(1), Some("nproc"));
        assert_eq!(m.get(2), Some("16"));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn non_capturing_group() {
        let re = Regex::new(r"(?:ab)+(c)").unwrap();
        let m = re.captures("ababc").unwrap();
        assert_eq!(m.get(1), Some("c"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn nested_captures() {
        let re = Regex::new(r"((a+)(b+))c").unwrap();
        let m = re.captures("aabbbc").unwrap();
        assert_eq!(m.get(1), Some("aabbb"));
        assert_eq!(m.get(2), Some("aa"));
        assert_eq!(m.get(3), Some("bbb"));
    }

    #[test]
    fn unmatched_group_is_none() {
        let re = Regex::new(r"(a)|(b)").unwrap();
        let m = re.captures("b").unwrap();
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(2), Some("b"));
    }

    #[test]
    fn greedy_vs_lazy() {
        let re = Regex::new(r"<(.+)>").unwrap();
        assert_eq!(re.captures("<a><b>").unwrap().get(1), Some("a><b"));
        let re = Regex::new(r"<(.+?)>").unwrap();
        assert_eq!(re.captures("<a><b>").unwrap().get(1), Some("a"));
    }

    #[test]
    fn dot_excludes_newline() {
        let re = Regex::new("a.c").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("a\nc"));
    }

    #[test]
    fn case_insensitive() {
        let re = RegexBuilder::new("MB/s")
            .case_insensitive(true)
            .build()
            .unwrap();
        assert!(re.is_match("12 mb/S"));
        let re = RegexBuilder::new("[a-d]+")
            .case_insensitive(true)
            .build()
            .unwrap();
        assert_eq!(re.find("xxABCDxx").unwrap().as_str(), "ABCD");
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<&str> = re.find_iter("a1b22c333").map(|m| m.as_str()).collect();
        assert_eq!(all, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_empty_match_progresses() {
        let re = Regex::new("a*").unwrap();
        let n = re.find_iter("bbb").count();
        assert_eq!(n, 4); // empty match before each char + at end
    }

    #[test]
    fn split_and_replace() {
        let re = Regex::new(r"\s*,\s*").unwrap();
        assert_eq!(re.split("a , b,c"), vec!["a", "b", "c"]);
        assert_eq!(re.replace("a , b,c", ";"), "a;b,c");
    }

    #[test]
    fn unicode_text_is_handled() {
        let re = Regex::new("é+").unwrap();
        let m = re.find("caféé au lait").unwrap();
        assert_eq!(m.as_str(), "éé");
        let re = Regex::new(".").unwrap();
        assert_eq!(re.find("ü").unwrap().as_str(), "ü");
    }

    #[test]
    fn escapes_in_pattern() {
        let re = Regex::new(r"1\.5\+x\*\(y\)").unwrap();
        assert!(re.is_match("=1.5+x*(y)="));
        let re = Regex::new(r"a\tb").unwrap();
        assert!(re.is_match("a\tb"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("a{3,2}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"a\").is_err());
    }

    #[test]
    fn paper_style_patterns() {
        // Patterns similar to those used in the Fig. 6 input description.
        let re = Regex::new(r"b_eff_io of these measurements\s*=\s*([\d.]+)\s*MB/s").unwrap();
        let line = "b_eff_io of these measurements = 214.516 MB/s on 4 processes";
        assert_eq!(re.captures(line).unwrap().get(1), Some("214.516"));

        let re = Regex::new(r"^\s*(\d+) PEs\s+(\d+)\s+(\d+)\s+(\w+)").unwrap();
        let line = "  4 PEs 5   32776 rewrite 66.642 32.040";
        let m = re.captures(line).unwrap();
        assert_eq!(m.get(1), Some("4"));
        assert_eq!(m.get(2), Some("5"));
        assert_eq!(m.get(3), Some("32776"));
        assert_eq!(m.get(4), Some("rewrite"));
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // (a+)+b against a^n — classic exponential case for backtrackers;
        // the Pike VM must finish instantly.
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(2000);
        assert!(!re.is_match(&text));
    }

    #[test]
    fn capture_count_reported() {
        let re = Regex::new(r"(a)(?:b)(c(d))").unwrap();
        assert_eq!(re.capture_count(), 4); // groups 0,1,2,3
    }
}
