//! Compilation of the [`Ast`] into a flat instruction program for the
//! Pike VM. The construction is the classic Thompson one: each AST node
//! becomes a small fragment of instructions with `Split`/`Jmp` wiring.

use crate::ast::{Ast, ClassItem};

/// A single VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Match one specific character.
    Char(char),
    /// Match any character except `\n`.
    Any,
    /// Match a character class.
    Class {
        /// True for negated classes.
        negated: bool,
        /// Member items.
        items: Vec<ClassItem>,
    },
    /// Unconditional jump.
    Jmp(usize),
    /// Fork execution; `a` is the preferred branch.
    Split(usize, usize),
    /// Record the current input position into capture slot `slot`.
    Save(usize),
    /// Assert beginning of input.
    AssertStart,
    /// Assert end of input.
    AssertEnd,
    /// Assert a word boundary (`true`) or non-boundary (`false`).
    AssertWord(bool),
    /// Accept.
    MatchEnd,
}

/// A compiled program plus metadata.
#[derive(Debug, Clone)]
pub struct Program {
    /// Flat instruction list.
    pub insts: Vec<Inst>,
    /// Number of capture slots (2 × number of groups incl. group 0).
    pub num_slots: usize,
    /// Case-insensitive matching flag.
    pub case_insensitive: bool,
}

/// Compile `ast` into a [`Program`].
pub fn compile(ast: &Ast, case_insensitive: bool) -> Program {
    let groups = ast.capture_groups() as usize;
    let mut c = Compiler { insts: Vec::new() };
    // Group 0 wraps the whole pattern.
    c.push(Inst::Save(0));
    c.node(ast);
    c.push(Inst::Save(1));
    c.push(Inst::MatchEnd);
    Program {
        insts: c.insts,
        num_slots: 2 * (groups + 1),
        case_insensitive,
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn push(&mut self, i: Inst) -> usize {
        self.insts.push(i);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn node(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                self.push(Inst::Char(*c));
            }
            Ast::AnyChar => {
                self.push(Inst::Any);
            }
            Ast::Class { negated, items } => {
                self.push(Inst::Class {
                    negated: *negated,
                    items: items.clone(),
                });
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.node(p);
                }
            }
            Ast::Alternate(branches) => self.alternate(branches),
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.repeat(node, *min, *max, *greedy),
            Ast::Group { index, node } => {
                if let Some(i) = index {
                    let i = *i as usize;
                    self.push(Inst::Save(2 * i));
                    self.node(node);
                    self.push(Inst::Save(2 * i + 1));
                } else {
                    self.node(node);
                }
            }
            Ast::AnchorStart => {
                self.push(Inst::AssertStart);
            }
            Ast::AnchorEnd => {
                self.push(Inst::AssertEnd);
            }
            Ast::WordBoundary(b) => {
                self.push(Inst::AssertWord(*b));
            }
        }
    }

    fn alternate(&mut self, branches: &[Ast]) {
        // split b1, (split b2, (... bn))  with jumps to a common end.
        let mut jmp_fixups = Vec::new();
        for (k, b) in branches.iter().enumerate() {
            if k + 1 < branches.len() {
                let split = self.push(Inst::Split(0, 0));
                let start = self.here();
                self.node(b);
                jmp_fixups.push(self.push(Inst::Jmp(0)));
                let next = self.here();
                self.insts[split] = Inst::Split(start, next);
            } else {
                self.node(b);
            }
        }
        let end = self.here();
        for j in jmp_fixups {
            self.insts[j] = Inst::Jmp(end);
        }
    }

    fn repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        match (min, max) {
            (0, None) => self.star(node, greedy),
            (1, None) => {
                self.node(node);
                self.star(node, greedy);
            }
            (0, Some(1)) => self.question(node, greedy),
            (m, None) => {
                for _ in 0..m {
                    self.node(node);
                }
                self.star(node, greedy);
            }
            (m, Some(x)) => {
                for _ in 0..m {
                    self.node(node);
                }
                for _ in m..x {
                    self.question(node, greedy);
                }
            }
        }
    }

    /// `e*` — split over a loop body.
    fn star(&mut self, node: &Ast, greedy: bool) {
        let split = self.push(Inst::Split(0, 0));
        let body = self.here();
        self.node(node);
        self.push(Inst::Jmp(split));
        let after = self.here();
        self.insts[split] = if greedy {
            Inst::Split(body, after)
        } else {
            Inst::Split(after, body)
        };
    }

    /// `e?` — optional fragment.
    fn question(&mut self, node: &Ast, greedy: bool) {
        let split = self.push(Inst::Split(0, 0));
        let body = self.here();
        self.node(node);
        let after = self.here();
        self.insts[split] = if greedy {
            Inst::Split(body, after)
        } else {
            Inst::Split(after, body)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(p: &str) -> Program {
        compile(&parse(p).unwrap(), false)
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        // Save(0) Char(a) Char(b) Save(1) Match
        assert_eq!(p.insts.len(), 5);
        assert_eq!(p.num_slots, 2);
        assert!(matches!(p.insts[0], Inst::Save(0)));
        assert!(matches!(p.insts.last(), Some(Inst::MatchEnd)));
    }

    #[test]
    fn star_has_split_loop() {
        let p = prog("a*");
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split(..)))
            .count();
        let jmps = p.insts.iter().filter(|i| matches!(i, Inst::Jmp(_))).count();
        assert_eq!(splits, 1);
        assert_eq!(jmps, 1);
    }

    #[test]
    fn counted_expansion() {
        // a{2,4} = a a a? a?
        let p = prog("a{2,4}");
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 4);
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split(..)))
            .count();
        assert_eq!(splits, 2);
    }

    #[test]
    fn capture_slots_counted() {
        let p = prog("(a)(b(c))");
        assert_eq!(p.num_slots, 8); // groups 0..=3
        let saves = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Save(_)))
            .count();
        assert_eq!(saves, 8);
    }

    #[test]
    fn lazy_star_prefers_exit() {
        let p = prog("a*?");
        let split = p
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Split(a, b) => Some((*a, *b)),
                _ => None,
            })
            .unwrap();
        // preferred branch (first) must be the exit, which is after the loop
        assert!(split.0 > split.1 || split.0 > 2);
    }
}
