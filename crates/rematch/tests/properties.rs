//! Property-based tests for the regex engine.

use proptest::prelude::*;
use rematch::{Regex, RegexBuilder};

/// Escape every regex metacharacter in `s` so it matches literally.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    /// An escaped literal always matches itself, with the span equal to the
    /// first occurrence.
    #[test]
    fn escaped_literal_matches_itself(s in "[ -~]{1,24}") {
        let re = Regex::new(&escape(&s)).unwrap();
        let m = re.find(&s).expect("literal must match itself");
        prop_assert_eq!(m.as_str(), s.as_str());
        prop_assert_eq!(m.start(), 0);
    }

    /// Matching inside a larger haystack finds the first occurrence.
    #[test]
    fn literal_found_at_first_occurrence(prefix in "[a-z]{0,10}", needle in "[A-Z]{1,6}", suffix in "[a-z]{0,10}") {
        let hay = format!("{prefix}{needle}{suffix}");
        let re = Regex::new(&escape(&needle)).unwrap();
        let m = re.find(&hay).unwrap();
        prop_assert_eq!(m.start(), prefix.len());
        prop_assert_eq!(m.as_str(), needle.as_str());
    }

    /// `\d+` matches exactly when a digit is present, and the matched text is
    /// all digits.
    #[test]
    fn digit_class_consistency(s in "[a-z0-9 ]{0,32}") {
        let re = Regex::new(r"\d+").unwrap();
        let has_digit = s.chars().any(|c| c.is_ascii_digit());
        match re.find(&s) {
            Some(m) => {
                prop_assert!(has_digit);
                prop_assert!(m.as_str().chars().all(|c| c.is_ascii_digit()));
                // Maximal munch: chars around the match are not digits.
                let before = s[..m.start()].chars().next_back();
                let after = s[m.end()..].chars().next();
                prop_assert!(before.is_none_or(|c| !c.is_ascii_digit()));
                prop_assert!(after.is_none_or(|c| !c.is_ascii_digit()));
            }
            None => prop_assert!(!has_digit),
        }
    }

    /// Spans produced by `find_iter` are in order and non-overlapping.
    #[test]
    fn find_iter_spans_ordered(s in "[ab ]{0,40}") {
        let re = Regex::new("a+").unwrap();
        let mut last_end = 0usize;
        for m in re.find_iter(&s) {
            prop_assert!(m.start() >= last_end);
            prop_assert!(m.end() > m.start());
            last_end = m.end();
        }
    }

    /// split + rejoin round-trips the input.
    #[test]
    fn split_roundtrip(parts in proptest::collection::vec("[a-z]{0,5}", 1..6)) {
        let joined = parts.join(",");
        let re = Regex::new(",").unwrap();
        let split = re.split(&joined);
        let rejoined = split.join(",");
        prop_assert_eq!(rejoined, joined);
    }

    /// Case-insensitive matching is invariant under case changes of the
    /// haystack for alphabetic literals.
    #[test]
    fn case_insensitive_invariance(word in "[a-zA-Z]{1,10}") {
        let re = RegexBuilder::new(&escape(&word)).case_insensitive(true).build().unwrap();
        prop_assert!(re.is_match(&word.to_uppercase()));
        prop_assert!(re.is_match(&word.to_lowercase()));
    }

    /// Group 0 always equals the full match and nested group spans lie
    /// inside it.
    #[test]
    fn groups_nest_inside_whole_match(a in "[a-c]{1,4}", b in "[x-z]{1,4}") {
        let hay = format!("--{a}{b}--");
        let re = Regex::new("([a-c]+)([x-z]+)").unwrap();
        let m = re.captures(&hay).unwrap();
        let whole = m.get(0).unwrap();
        let g1 = m.get(1).unwrap();
        let g2 = m.get(2).unwrap();
        let concat = format!("{g1}{g2}");
        prop_assert_eq!(whole, concat.as_str());
        prop_assert_eq!(g1, a.as_str());
        prop_assert_eq!(g2, b.as_str());
    }

    /// The engine is total: arbitrary (possibly invalid) patterns either fail
    /// to compile or run without panicking on arbitrary text.
    #[test]
    fn never_panics(pat in "[ -~]{0,16}", text in "[ -~]{0,32}") {
        if let Ok(re) = Regex::new(&pat) {
            let _ = re.find(&text);
        }
    }
}
