//! Randomized tests for the regex engine, driven by a seeded splitmix64
//! generator (reproducible, offline).

use rematch::{Regex, RegexBuilder};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    fn string(&mut self, alphabet: &[u8], min: usize, max: usize) -> String {
        let len = min + self.below((max - min) as u64 + 1) as usize;
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize] as char)
            .collect()
    }

    fn printable(&mut self, min: usize, max: usize) -> String {
        let len = min + self.below((max - min) as u64 + 1) as usize;
        (0..len)
            .map(|_| (b' ' + self.below(95) as u8) as char)
            .collect()
    }
}

/// Escape every regex metacharacter in `s` so it matches literally.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\.+*?()|[]{}^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// An escaped literal always matches itself, with the span equal to the
/// first occurrence.
#[test]
fn escaped_literal_matches_itself() {
    let mut rng = Rng(0x11);
    for _ in 0..200 {
        let s = rng.printable(1, 24);
        let re = Regex::new(&escape(&s)).unwrap();
        let m = re.find(&s).expect("literal must match itself");
        assert_eq!(m.as_str(), s.as_str());
        assert_eq!(m.start(), 0);
    }
}

/// Matching inside a larger haystack finds the first occurrence.
#[test]
fn literal_found_at_first_occurrence() {
    let mut rng = Rng(0x22);
    for _ in 0..200 {
        let prefix = rng.string(b"abcdefghijklmnopqrstuvwxyz", 0, 10);
        let needle = rng.string(b"ABCDEFGHIJKLMNOPQRSTUVWXYZ", 1, 6);
        let suffix = rng.string(b"abcdefghijklmnopqrstuvwxyz", 0, 10);
        let hay = format!("{prefix}{needle}{suffix}");
        let re = Regex::new(&escape(&needle)).unwrap();
        let m = re.find(&hay).unwrap();
        assert_eq!(m.start(), prefix.len());
        assert_eq!(m.as_str(), needle.as_str());
    }
}

/// `\d+` matches exactly when a digit is present, and the matched text is
/// all digits.
#[test]
fn digit_class_consistency() {
    let mut rng = Rng(0x33);
    let re = Regex::new(r"\d+").unwrap();
    for _ in 0..300 {
        let s = rng.string(b"abcdefghijklmnopqrstuvwxyz0123456789 ", 0, 32);
        let has_digit = s.chars().any(|c| c.is_ascii_digit());
        match re.find(&s) {
            Some(m) => {
                assert!(has_digit);
                assert!(m.as_str().chars().all(|c| c.is_ascii_digit()));
                // Maximal munch: chars around the match are not digits.
                let before = s[..m.start()].chars().next_back();
                let after = s[m.end()..].chars().next();
                assert!(before.is_none_or(|c| !c.is_ascii_digit()));
                assert!(after.is_none_or(|c| !c.is_ascii_digit()));
            }
            None => assert!(!has_digit),
        }
    }
}

/// Spans produced by `find_iter` are in order and non-overlapping.
#[test]
fn find_iter_spans_ordered() {
    let mut rng = Rng(0x44);
    let re = Regex::new("a+").unwrap();
    for _ in 0..300 {
        let s = rng.string(b"ab ", 0, 40);
        let mut last_end = 0usize;
        for m in re.find_iter(&s) {
            assert!(m.start() >= last_end);
            assert!(m.end() > m.start());
            last_end = m.end();
        }
    }
}

/// split + rejoin round-trips the input.
#[test]
fn split_roundtrip() {
    let mut rng = Rng(0x55);
    let re = Regex::new(",").unwrap();
    for _ in 0..200 {
        let n = 1 + rng.below(5) as usize;
        let parts: Vec<String> = (0..n)
            .map(|_| rng.string(b"abcdefghijklmnopqrstuvwxyz", 0, 5))
            .collect();
        let joined = parts.join(",");
        let split = re.split(&joined);
        let rejoined = split.join(",");
        assert_eq!(rejoined, joined);
    }
}

/// Case-insensitive matching is invariant under case changes of the
/// haystack for alphabetic literals.
#[test]
fn case_insensitive_invariance() {
    let mut rng = Rng(0x66);
    for _ in 0..200 {
        let word = rng.string(
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
            1,
            10,
        );
        let re = RegexBuilder::new(&escape(&word))
            .case_insensitive(true)
            .build()
            .unwrap();
        assert!(re.is_match(&word.to_uppercase()));
        assert!(re.is_match(&word.to_lowercase()));
    }
}

/// Group 0 always equals the full match and nested group spans lie
/// inside it.
#[test]
fn groups_nest_inside_whole_match() {
    let mut rng = Rng(0x77);
    let re = Regex::new("([a-c]+)([x-z]+)").unwrap();
    for _ in 0..200 {
        let a = rng.string(b"abc", 1, 4);
        let b = rng.string(b"xyz", 1, 4);
        let hay = format!("--{a}{b}--");
        let m = re.captures(&hay).unwrap();
        let whole = m.get(0).unwrap();
        let g1 = m.get(1).unwrap();
        let g2 = m.get(2).unwrap();
        let concat = format!("{g1}{g2}");
        assert_eq!(whole, concat.as_str());
        assert_eq!(g1, a.as_str());
        assert_eq!(g2, b.as_str());
    }
}

/// The engine is total: arbitrary (possibly invalid) patterns either fail
/// to compile or run without panicking on arbitrary text.
#[test]
fn never_panics() {
    let mut rng = Rng(0x88);
    for _ in 0..500 {
        let pat = rng.printable(0, 16);
        let text = rng.printable(0, 32);
        if let Ok(re) = Regex::new(&pat) {
            let _ = re.find(&text);
        }
    }
}
