//! `xmlite` — a small XML 1.0 subset parser, DOM, serializer and DTD-lite
//! validator.
//!
//! All perfbase control files — experiment definitions, input descriptions
//! and query specifications — are XML documents conforming to a
//! perfbase-specific DTD (paper §3.1–§3.3). This crate is the substrate that
//! parses those documents into a DOM, validates them against declared content
//! models, and serializes them back out.
//!
//! Supported XML subset:
//!
//! * prolog (`<?xml ... ?>`), processing instructions (skipped)
//! * `<!DOCTYPE ...>` with an optional internal DTD subset, which is parsed
//!   into a [`dtd::Dtd`] for validation
//! * elements, attributes (single- or double-quoted), self-closing tags
//! * text with the five predefined entities plus decimal/hex char references
//! * comments and CDATA sections
//!
//! # Example
//!
//! ```
//! let doc = xmlite::parse("<experiment><name>b_eff_io</name></experiment>").unwrap();
//! assert_eq!(doc.root.name, "experiment");
//! assert_eq!(doc.root.child_text("name"), Some("b_eff_io".to_string()));
//! ```

pub mod dtd;
mod escape;
mod node;
mod parser;
mod writer;

pub use escape::{escape_attr, escape_text, unescape};
pub use node::{Document, Element, Node};
pub use parser::{parse, ParseError};
pub use writer::{to_string, to_string_pretty};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_requery_roundtrip() {
        let src = r#"<?xml version="1.0"?>
<experiment>
  <name>b_eff_io</name>
  <parameter occurence="once">
    <name>T</name>
    <datatype>integer</datatype>
  </parameter>
  <parameter>
    <name>S_chunk</name>
  </parameter>
</experiment>"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.root.name, "experiment");
        let params: Vec<&Element> = doc.root.children_named("parameter").collect();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].attr("occurence"), Some("once"));
        assert_eq!(params[1].attr("occurence"), None);
        assert_eq!(params[0].child_text("name").as_deref(), Some("T"));

        // Round trip through the serializer.
        let out = to_string_pretty(&doc);
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn entities_roundtrip() {
        let src = "<o name=\"a&amp;b\">x &lt; y &gt; z &quot;q&quot; &apos;s&apos; &#65;&#x42;</o>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.root.attr("name"), Some("a&b"));
        assert_eq!(doc.root.text(), "x < y > z \"q\" 's' AB");
        let out = to_string(&doc);
        let doc2 = parse(&out).unwrap();
        assert_eq!(doc.root.text(), doc2.root.text());
    }

    #[test]
    fn cdata_and_comments() {
        let src = "<a><!-- note --><![CDATA[1 < 2 && 3 > 2]]></a>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.root.text(), "1 < 2 && 3 > 2");
        // Comments survive in the DOM but do not contribute text.
        assert!(doc
            .root
            .children
            .iter()
            .any(|n| matches!(n, Node::Comment(_))));
    }
}
