//! DOM types: [`Document`], [`Element`] and [`Node`].

/// A parsed XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The document element.
    pub root: Element,
    /// The internal DTD subset, if a `<!DOCTYPE ... [ ... ]>` was present.
    pub dtd: Option<crate::dtd::Dtd>,
}

/// One node in element content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (entities already resolved).
    Text(String),
    /// A comment (without the `<!--`/`-->` markers).
    Comment(String),
}

/// An XML element: name, attributes in document order, children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an empty element named `name`.
    pub fn new(name: &str) -> Self {
        Element {
            name: name.to_string(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add or replace an attribute.
    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Builder: append a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: append a text node.
    pub fn with_text(mut self, text: &str) -> Self {
        self.children.push(Node::Text(text.to_string()));
        self
    }

    /// Builder: append `<name>text</name>` as a child.
    pub fn with_text_child(self, name: &str, text: &str) -> Self {
        self.with_child(Element::new(name).with_text(text))
    }

    /// Look up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, key: &str, value: &str) {
        match self.attributes.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.to_string(),
            None => self.attributes.push((key.to_string(), value.to_string())),
        }
    }

    /// Iterate over child elements (skipping text/comments).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Iterate over child elements with tag `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// First child element with tag `name`.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Concatenated, whitespace-trimmed text content of this element
    /// (direct text children only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Text content of the first child element named `name`.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(Element::text)
    }

    /// Depth-first search for all descendant elements named `name`
    /// (not including `self`).
    pub fn descendants_named<'a>(&'a self, name: &'a str) -> Vec<&'a Element> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Element, name: &str, out: &mut Vec<&'a Element>) {
            for c in e.elements() {
                if c.name == name {
                    out.push(c);
                }
                walk(c, name, out);
            }
        }
        walk(self, name, &mut out);
        out
    }
}

impl Document {
    /// Wrap an element as a document without a DTD.
    pub fn from_root(root: Element) -> Self {
        Document { root, dtd: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("run")
            .with_attr("id", "7")
            .with_text_child("host", "grisu0")
            .with_child(
                Element::new("metric")
                    .with_attr("name", "bw")
                    .with_text("214.5"),
            )
            .with_child(
                Element::new("metric")
                    .with_attr("name", "lat")
                    .with_text("4.2"),
            )
    }

    #[test]
    fn builder_and_accessors() {
        let e = sample();
        assert_eq!(e.attr("id"), Some("7"));
        assert_eq!(e.attr("nope"), None);
        assert_eq!(e.child_text("host").as_deref(), Some("grisu0"));
        assert_eq!(e.children_named("metric").count(), 2);
        assert_eq!(e.child("metric").unwrap().attr("name"), Some("bw"));
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("x").with_attr("a", "1");
        e.set_attr("a", "2");
        e.set_attr("b", "3");
        assert_eq!(e.attr("a"), Some("2"));
        assert_eq!(e.attr("b"), Some("3"));
        assert_eq!(e.attributes.len(), 2);
    }

    #[test]
    fn text_trims_and_concatenates() {
        let e = Element::new("x")
            .with_text("  a ")
            .with_child(Element::new("y").with_text("ignored"))
            .with_text(" b  ");
        assert_eq!(e.text(), "a  b");
    }

    #[test]
    fn descendants_search() {
        let tree = Element::new("top").with_child(
            Element::new("mid")
                .with_child(Element::new("leaf").with_text("1"))
                .with_child(Element::new("leaf").with_text("2")),
        );
        let leaves = tree.descendants_named("leaf");
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[1].text(), "2");
    }
}
