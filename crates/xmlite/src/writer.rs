//! Serialization of the DOM back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::node::{Document, Element, Node};

/// Serialize `doc` compactly (no added whitespace).
pub fn to_string(doc: &Document) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>");
    write_element(&doc.root, &mut out, None, 0);
    out
}

/// Serialize `doc` with two-space indentation.
///
/// Elements whose content is pure text are kept on one line so that
/// `<name>b_eff_io</name>` round-trips byte-identically in spirit.
pub fn to_string_pretty(doc: &Document) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n");
    write_element(&doc.root, &mut out, Some(0), 0);
    out.push('\n');
    out
}

fn write_element(el: &Element, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(step) = indent {
            for _ in 0..depth * (step + 2) {
                out.push(' ');
            }
        }
    };

    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');

    let only_text = el.children.iter().all(|n| matches!(n, Node::Text(_)));
    for child in &el.children {
        if indent.is_some() && !only_text {
            out.push('\n');
            pad(out, depth + 1);
        }
        match child {
            Node::Element(e) => write_element(e, out, indent, depth + 1),
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
        }
    }
    if indent.is_some() && !only_text {
        out.push('\n');
        pad(out, depth);
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_serialization() {
        let doc = parse("<a x=\"1\"><b>t</b><c/></a>").unwrap();
        let s = to_string(&doc);
        assert!(s.ends_with("<a x=\"1\"><b>t</b><c/></a>"));
    }

    #[test]
    fn pretty_keeps_text_inline() {
        let doc = parse("<a><name>b_eff_io</name></a>").unwrap();
        let s = to_string_pretty(&doc);
        assert!(s.contains("<name>b_eff_io</name>"));
    }

    #[test]
    fn escaping_applied_on_write() {
        let doc = Document::from_root(
            crate::Element::new("x")
                .with_attr("a", "1<2")
                .with_text("3>2 & true"),
        );
        let s = to_string(&doc);
        assert!(s.contains("a=\"1&lt;2\""));
        assert!(s.contains("3&gt;2 &amp; true"));
        // And it must re-parse to the same values.
        let doc2 = parse(&s).unwrap();
        assert_eq!(doc2.root.attr("a"), Some("1<2"));
        assert_eq!(doc2.root.text(), "3>2 & true");
    }

    #[test]
    fn roundtrip_stability() {
        let src = "<q><source id=\"s1\"><parameter name=\"fs\" value=\"ufs\"/></source><operator type=\"max\"/></q>";
        let d1 = parse(src).unwrap();
        let d2 = parse(&to_string(&d1)).unwrap();
        let d3 = parse(&to_string_pretty(&d2)).unwrap();
        assert_eq!(d1, d3);
    }
}
