//! DTD-lite: declaration parsing and document validation.
//!
//! perfbase control files conform to a perfbase DTD (paper §3.1). Full DTD
//! content-model semantics (ordered sequences, `+`/`?` cardinalities) are
//! more than the control files need, so this validator implements the useful
//! core, documented as *DTD-lite*:
//!
//! * `<!ELEMENT name EMPTY | ANY | (#PCDATA) | (#PCDATA|a|b)* | (a,b,c*)>` —
//!   the child names mentioned in the model become the set of *allowed*
//!   children; `#PCDATA` controls whether text content is allowed.
//! * `<!ATTLIST name attr CDATA #REQUIRED|#IMPLIED|"default">` — required
//!   attributes are enforced, undeclared attributes are rejected, defaults
//!   are filled in by [`Dtd::apply_defaults`].
//!
//! Schemas can also be built programmatically, which is how perfbase-core
//! ships its built-in experiment/input/query document schemas.

use crate::node::{Element, Node};
use std::collections::BTreeMap;

/// Content model of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Model {
    /// `EMPTY` — no children, no text.
    Empty,
    /// `ANY` — anything goes.
    Any,
    /// Text only (`(#PCDATA)`).
    Text,
    /// Mixed content: text plus the named child elements.
    Mixed(Vec<String>),
    /// Element content: only the named child elements, no text.
    Children(Vec<String>),
}

/// Declared attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Whether a document is invalid without it.
    pub required: bool,
    /// Default value applied when absent.
    pub default: Option<String>,
}

/// Declaration for one element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Content model.
    pub model: Model,
    /// Declared attributes.
    pub attrs: Vec<AttrDecl>,
}

/// A parsed or programmatically built DTD-lite schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dtd {
    elements: BTreeMap<String, ElementDecl>,
    /// When true, elements not declared at all are accepted (lenient mode).
    pub allow_undeclared_elements: bool,
}

/// One validation problem, with a path like `experiment/parameter[2]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Location of the offending node.
    pub path: String,
    /// Description of the violation.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl Dtd {
    /// Empty schema builder.
    pub fn new() -> Self {
        Dtd::default()
    }

    /// Declare an element with its content model.
    pub fn declare(mut self, name: &str, model: Model) -> Self {
        self.elements
            .entry(name.to_string())
            .or_insert(ElementDecl {
                model: Model::Any,
                attrs: Vec::new(),
            })
            .model = model;
        self
    }

    /// Declare an attribute on an element.
    pub fn attribute(mut self, element: &str, attr: AttrDecl) -> Self {
        self.elements
            .entry(element.to_string())
            .or_insert(ElementDecl {
                model: Model::Any,
                attrs: Vec::new(),
            })
            .attrs
            .push(attr);
        self
    }

    /// Accept elements that have no declaration.
    pub fn lenient(mut self) -> Self {
        self.allow_undeclared_elements = true;
        self
    }

    /// Look up a declaration.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.get(name)
    }

    /// Parse the internal DTD subset text (the part between `[` and `]`).
    pub fn parse(subset: &str) -> Result<Dtd, String> {
        let mut dtd = Dtd::new();
        let mut rest = subset;
        loop {
            rest = rest.trim_start();
            if rest.is_empty() {
                break;
            }
            if rest.starts_with("<!--") {
                let end = rest.find("-->").ok_or("unterminated comment in DTD")?;
                rest = &rest[end + 3..];
                continue;
            }
            if !rest.starts_with("<!") {
                return Err(format!("unexpected content in DTD subset: {:.20}...", rest));
            }
            let end = rest.find('>').ok_or("unterminated declaration in DTD")?;
            let decl = &rest[2..end];
            rest = &rest[end + 1..];
            if let Some(body) = decl.strip_prefix("ELEMENT") {
                let (name, model) = parse_element_decl(body.trim())?;
                dtd = dtd.declare(&name, model);
            } else if let Some(body) = decl.strip_prefix("ATTLIST") {
                let (element, attrs) = parse_attlist_decl(body.trim())?;
                for a in attrs {
                    dtd = dtd.attribute(&element, a);
                }
            } else if decl.starts_with("ENTITY") || decl.starts_with("NOTATION") {
                // Accepted but ignored by DTD-lite.
            } else {
                return Err(format!("unknown declaration <!{:.12}...", decl));
            }
        }
        Ok(dtd)
    }

    /// Validate `root` against this schema, collecting all violations.
    pub fn validate(&self, root: &Element) -> Result<(), Vec<ValidationError>> {
        let mut errors = Vec::new();
        self.check(root, root.name.clone(), &mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    fn check(&self, el: &Element, path: String, errors: &mut Vec<ValidationError>) {
        let decl = match self.elements.get(&el.name) {
            Some(d) => d,
            None => {
                if !self.allow_undeclared_elements {
                    errors.push(ValidationError {
                        path: path.clone(),
                        message: format!("element '{}' is not declared", el.name),
                    });
                }
                // Recurse anyway so nested declared elements get checked.
                for (i, c) in el.elements().enumerate() {
                    self.check(c, format!("{}/{}[{}]", path, c.name, i), errors);
                }
                return;
            }
        };

        // Attribute checks.
        for a in &decl.attrs {
            if a.required && el.attr(&a.name).is_none() {
                errors.push(ValidationError {
                    path: path.clone(),
                    message: format!("missing required attribute '{}'", a.name),
                });
            }
        }
        for (k, _) in &el.attributes {
            if !decl.attrs.iter().any(|a| &a.name == k) {
                errors.push(ValidationError {
                    path: path.clone(),
                    message: format!("undeclared attribute '{k}'"),
                });
            }
        }

        // Content checks.
        let has_text = el
            .children
            .iter()
            .any(|n| matches!(n, Node::Text(t) if !t.trim().is_empty()));
        let allowed: Option<&[String]> = match &decl.model {
            Model::Empty => {
                if !el.children.iter().all(|n| matches!(n, Node::Comment(_))) {
                    errors.push(ValidationError {
                        path: path.clone(),
                        message: "element declared EMPTY has content".into(),
                    });
                }
                Some(&[])
            }
            Model::Any => None,
            Model::Text => {
                if el.elements().next().is_some() {
                    errors.push(ValidationError {
                        path: path.clone(),
                        message: "text-only element has child elements".into(),
                    });
                }
                Some(&[])
            }
            Model::Mixed(names) => Some(names.as_slice()),
            Model::Children(names) => {
                if has_text {
                    errors.push(ValidationError {
                        path: path.clone(),
                        message: "element-content element contains text".into(),
                    });
                }
                Some(names.as_slice())
            }
        };
        if let Some(allowed) = allowed {
            for c in el.elements() {
                if !allowed.iter().any(|n| n == &c.name) {
                    errors.push(ValidationError {
                        path: path.clone(),
                        message: format!("child '{}' not allowed here", c.name),
                    });
                }
            }
        }

        for (i, c) in el.elements().enumerate() {
            self.check(c, format!("{}/{}[{}]", path, c.name, i), errors);
        }
    }

    /// Fill in declared attribute defaults on a mutable tree.
    pub fn apply_defaults(&self, el: &mut Element) {
        if let Some(decl) = self.elements.get(&el.name) {
            for a in &decl.attrs {
                if let Some(d) = &a.default {
                    if el.attr(&a.name).is_none() {
                        el.set_attr(&a.name, d);
                    }
                }
            }
        }
        for n in &mut el.children {
            if let Node::Element(c) = n {
                self.apply_defaults(c);
            }
        }
    }
}

fn parse_element_decl(body: &str) -> Result<(String, Model), String> {
    let mut parts = body.splitn(2, char::is_whitespace);
    let name = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or("ELEMENT without a name")?;
    let spec = parts.next().map(str::trim).unwrap_or("ANY");
    let model = match spec {
        "EMPTY" => Model::Empty,
        "ANY" => Model::Any,
        _ => {
            let inner = spec
                .trim_start_matches('(')
                .trim_end_matches(['*', '+', '?'])
                .trim_end_matches(')');
            let names: Vec<String> = inner
                .split([',', '|'])
                .map(|s| s.trim().trim_end_matches(['*', '+', '?']).to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let has_pcdata = names.iter().any(|n| n == "#PCDATA");
            let children: Vec<String> = names.into_iter().filter(|n| n != "#PCDATA").collect();
            match (has_pcdata, children.is_empty()) {
                (true, true) => Model::Text,
                (true, false) => Model::Mixed(children),
                (false, _) => Model::Children(children),
            }
        }
    };
    Ok((name.to_string(), model))
}

fn parse_attlist_decl(body: &str) -> Result<(String, Vec<AttrDecl>), String> {
    let mut tokens = tokenize_attlist(body);
    if tokens.is_empty() {
        return Err("ATTLIST without an element name".into());
    }
    let element = tokens.remove(0);
    let mut attrs = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() + 1 {
        if i + 2 > tokens.len() {
            break;
        }
        let name = tokens[i].clone();
        let _ty = &tokens[i + 1]; // CDATA / NMTOKEN / enumeration — not enforced
        let disp = tokens.get(i + 2).cloned().unwrap_or_default();
        let (required, default, used) = match disp.as_str() {
            "#REQUIRED" => (true, None, 3),
            "#IMPLIED" => (false, None, 3),
            "#FIXED" => {
                let v = tokens.get(i + 3).cloned().ok_or("#FIXED without value")?;
                (false, Some(unquote(&v)), 4)
            }
            v if v.starts_with('"') || v.starts_with('\'') => (false, Some(unquote(v)), 3),
            _ => return Err(format!("malformed ATTLIST for '{element}'")),
        };
        attrs.push(AttrDecl {
            name,
            required,
            default,
        });
        i += used;
    }
    Ok((element, attrs))
}

fn tokenize_attlist(body: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' || c == '\'' {
            let q = c;
            chars.next();
            let mut t = String::from(q);
            for x in chars.by_ref() {
                t.push(x);
                if x == q {
                    break;
                }
            }
            tokens.push(t);
        } else if c == '(' {
            let mut t = String::new();
            for x in chars.by_ref() {
                t.push(x);
                if x == ')' {
                    break;
                }
            }
            tokens.push(t);
        } else {
            let mut t = String::new();
            while let Some(&x) = chars.peek() {
                if x.is_whitespace() {
                    break;
                }
                t.push(x);
                chars.next();
            }
            tokens.push(t);
        }
    }
    tokens
}

fn unquote(s: &str) -> String {
    s.trim_matches(['"', '\'']).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn schema() -> Dtd {
        Dtd::new()
            .declare(
                "experiment",
                Model::Children(vec!["name".into(), "parameter".into()]),
            )
            .declare("name", Model::Text)
            .declare(
                "parameter",
                Model::Children(vec!["name".into(), "datatype".into()]),
            )
            .declare("datatype", Model::Text)
            .attribute(
                "parameter",
                AttrDecl {
                    name: "occurence".into(),
                    required: false,
                    default: Some("multiple".into()),
                },
            )
    }

    #[test]
    fn valid_document_passes() {
        let doc =
            parse("<experiment><name>x</name><parameter><name>T</name></parameter></experiment>")
                .unwrap();
        schema().validate(&doc.root).unwrap();
    }

    #[test]
    fn unknown_child_rejected() {
        let doc = parse("<experiment><bogus/></experiment>").unwrap();
        let errs = schema().validate(&doc.root).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not allowed")));
        assert!(errs.iter().any(|e| e.message.contains("not declared")));
    }

    #[test]
    fn text_in_element_content_rejected() {
        let doc = parse("<experiment>loose text<name>x</name></experiment>").unwrap();
        let errs = schema().validate(&doc.root).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("contains text")));
    }

    #[test]
    fn required_attribute_enforced() {
        let dtd = Dtd::new().declare("q", Model::Any).attribute(
            "q",
            AttrDecl {
                name: "id".into(),
                required: true,
                default: None,
            },
        );
        let doc = parse("<q/>").unwrap();
        let errs = dtd.validate(&doc.root).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("required attribute 'id'"));
        let ok = parse("<q id=\"1\"/>").unwrap();
        dtd.validate(&ok.root).unwrap();
    }

    #[test]
    fn undeclared_attribute_rejected() {
        let doc = parse("<experiment zzz=\"1\"><name>x</name></experiment>").unwrap();
        let errs = schema().validate(&doc.root).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("undeclared attribute 'zzz'")));
    }

    #[test]
    fn defaults_applied() {
        let mut doc =
            parse("<experiment><name>x</name><parameter><name>T</name></parameter></experiment>")
                .unwrap();
        schema().apply_defaults(&mut doc.root);
        assert_eq!(
            doc.root.child("parameter").unwrap().attr("occurence"),
            Some("multiple")
        );
    }

    #[test]
    fn parse_internal_subset() {
        let dtd = Dtd::parse(
            r#"
            <!ELEMENT experiment (name, parameter*)>
            <!ELEMENT name (#PCDATA)>
            <!ELEMENT parameter (name, datatype?)>
            <!ELEMENT datatype (#PCDATA)>
            <!ATTLIST parameter occurence CDATA "multiple">
            <!ATTLIST experiment version CDATA #REQUIRED>
        "#,
        )
        .unwrap();
        assert_eq!(dtd.element("name").unwrap().model, Model::Text);
        match &dtd.element("experiment").unwrap().model {
            Model::Children(c) => assert_eq!(c, &vec!["name".to_string(), "parameter".to_string()]),
            m => panic!("{m:?}"),
        }
        let pa = &dtd.element("parameter").unwrap().attrs[0];
        assert_eq!(pa.default.as_deref(), Some("multiple"));
        assert!(dtd.element("experiment").unwrap().attrs[0].required);
    }

    #[test]
    fn parse_mixed_model() {
        let dtd = Dtd::parse("<!ELEMENT d (#PCDATA|em)*>").unwrap();
        assert_eq!(
            dtd.element("d").unwrap().model,
            Model::Mixed(vec!["em".into()])
        );
    }

    #[test]
    fn empty_model_enforced() {
        let dtd = Dtd::parse("<!ELEMENT br EMPTY>").unwrap();
        let ok = parse("<br/>").unwrap();
        dtd.validate(&ok.root).unwrap();
        let bad = parse("<br>x</br>").unwrap();
        assert!(dtd.validate(&bad.root).is_err());
    }

    #[test]
    fn lenient_mode_allows_undeclared() {
        let dtd = Dtd::new().lenient();
        let doc = parse("<whatever><inner/></whatever>").unwrap();
        dtd.validate(&doc.root).unwrap();
    }
}
