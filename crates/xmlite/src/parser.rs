//! Hand-written recursive-descent XML parser.

use crate::dtd::Dtd;
use crate::escape::unescape;
use crate::node::{Document, Element, Node};
use std::fmt;

/// Parse failure with line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse an XML document from `src`.
pub fn parse(src: &str) -> Result<Document, ParseError> {
    let mut p = P {
        chars: src.chars().collect(),
        pos: 0,
    };
    p.skip_misc()?;
    let dtd = p.maybe_doctype()?;
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos < p.chars.len() {
        return Err(p.err("content after document element"));
    }
    Ok(Document { root, dtd })
}

struct P {
    chars: Vec<char>,
    pos: usize,
}

impl P {
    fn err(&self, msg: &str) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &c in &self.chars[..self.pos.min(self.chars.len())] {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            message: msg.to_string(),
            line,
            column: col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(i, c)| self.chars.get(self.pos + i) == Some(&c))
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.chars().count();
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_str(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, prolog, processing instructions and comments that may
    /// appear outside the document element.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.scan_until("?>")?;
            } else if self.starts_with("<!--") {
                self.scan_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Advance past `end`, returning the content in between.
    fn scan_until(&mut self, end: &str) -> Result<String, ParseError> {
        let mut content = String::new();
        while self.pos < self.chars.len() {
            if self.starts_with(end) {
                self.pos += end.chars().count();
                return Ok(content);
            }
            content.push(self.chars[self.pos]);
            self.pos += 1;
        }
        Err(self.err(&format!("unterminated construct, expected '{end}'")))
    }

    fn maybe_doctype(&mut self) -> Result<Option<Dtd>, ParseError> {
        if !self.starts_with("<!DOCTYPE") {
            return Ok(None);
        }
        self.pos += "<!DOCTYPE".chars().count();
        // Scan the doctype; an internal subset is delimited by [ ... ].
        let mut internal = String::new();
        let mut depth = 0usize;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated <!DOCTYPE")),
                Some('[') => depth += 1,
                Some(']') => depth = depth.saturating_sub(1),
                Some('>') if depth == 0 => break,
                Some(c) if depth > 0 => internal.push(c),
                Some(_) => {}
            }
        }
        if internal.trim().is_empty() {
            Ok(None)
        } else {
            Dtd::parse(&internal).map(Some).map_err(|m| self.err(&m))
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || "_-.:".contains(c)) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        self.expect_str("<")?;
        let name = self.name()?;
        let mut el = Element::new(&name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.expect_str("/>")?;
                    return Ok(el);
                }
                Some('>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let (k, v) = self.attribute()?;
                    if el.attr(&k).is_some() {
                        return Err(self.err(&format!("duplicate attribute '{k}'")));
                    }
                    el.attributes.push((k, v));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content until matching close tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                self.expect_str(">")?;
                return Ok(el);
            } else if self.starts_with("<!--") {
                self.pos += 4;
                let c = self.scan_until("-->")?;
                el.children.push(Node::Comment(c));
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let c = self.scan_until("]]>")?;
                el.children.push(Node::Text(c));
            } else if self.starts_with("<?") {
                self.scan_until("?>")?;
            } else if self.starts_with("<") {
                el.children.push(Node::Element(self.element()?));
            } else if self.peek().is_none() {
                return Err(self.err(&format!("unexpected end of input inside <{name}>")));
            } else {
                let mut text = String::new();
                while let Some(c) = self.peek() {
                    if c == '<' {
                        break;
                    }
                    text.push(c);
                    self.pos += 1;
                }
                // Whitespace-only text is insignificant in perfbase control
                // files; dropping it makes parse∘serialize idempotent.
                if !text.trim().is_empty() {
                    el.children.push(Node::Text(unescape(&text)));
                }
            }
        }
    }

    fn attribute(&mut self) -> Result<(String, String), ParseError> {
        let key = self.name()?;
        self.skip_ws();
        self.expect_str("=")?;
        self.skip_ws();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.err("attribute value must be quoted")),
        };
        let mut value = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => break,
                Some('<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(c) => value.push(c),
            }
        }
        Ok((key, unescape(&value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert!(doc.root.children.is_empty());
    }

    #[test]
    fn attributes_both_quote_styles() {
        let doc = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(doc.root.attr("x"), Some("1"));
        assert_eq!(doc.root.attr("y"), Some("two"));
    }

    #[test]
    fn nested_elements_and_text() {
        let doc = parse("<a><b>hi</b><b>ho</b></a>").unwrap();
        let bs: Vec<_> = doc.root.children_named("b").collect();
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].text(), "hi");
        assert_eq!(bs[1].text(), "ho");
    }

    #[test]
    fn prolog_and_pi_skipped() {
        let doc = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<?pi data?><a/>").unwrap();
        assert_eq!(doc.root.name, "a");
    }

    #[test]
    fn doctype_without_subset() {
        let doc = parse("<!DOCTYPE experiment SYSTEM \"pb.dtd\"><experiment/>").unwrap();
        assert!(doc.dtd.is_none());
    }

    #[test]
    fn doctype_with_internal_subset() {
        let src = r#"<!DOCTYPE a [
            <!ELEMENT a (b*)>
            <!ELEMENT b (#PCDATA)>
        ]><a><b>x</b></a>"#;
        let doc = parse(src).unwrap();
        let dtd = doc.dtd.as_ref().expect("internal subset parsed");
        assert!(dtd.element("a").is_some());
        assert!(dtd.element("b").is_some());
    }

    #[test]
    fn error_reporting_has_position() {
        let err = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a x=1/>").is_err());
        assert!(parse("<a x=\"1\" x=\"2\"/>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("text only").is_err());
    }

    #[test]
    fn whitespace_only_text_dropped_at_element_start() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root.elements().count(), 1);
    }

    #[test]
    fn names_with_punctuation() {
        let doc = parse("<performed_by><org.unit x-id='1'/></performed_by>").unwrap();
        assert_eq!(doc.root.child("org.unit").unwrap().attr("x-id"), Some("1"));
    }
}
