//! Entity escaping and unescaping.

/// Escape character data for use in text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape character data for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolve the five predefined entities and numeric character references.
/// Unknown entities are left verbatim (lenient mode, matching perfbase's
/// tolerance for hand-written control files).
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        match rest.find(';') {
            Some(semi) if semi <= 12 => {
                let ent = &rest[1..semi];
                let resolved = match ent {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                        u32::from_str_radix(&ent[2..], 16)
                            .ok()
                            .and_then(char::from_u32)
                    }
                    _ if ent.starts_with('#') => {
                        ent[1..].parse::<u32>().ok().and_then(char::from_u32)
                    }
                    _ => None,
                };
                match resolved {
                    Some(c) => {
                        out.push(c);
                        rest = &rest[semi + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr(r#"a"b'c"#), "a&quot;b&apos;c");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(unescape("&lt;&gt;&amp;&quot;&apos;"), "<>&\"'");
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#X43;"), "ABC");
        assert_eq!(unescape("&#x20AC;"), "\u{20AC}");
    }

    #[test]
    fn unknown_entity_left_verbatim() {
        assert_eq!(unescape("a &nbsp; b & c"), "a &nbsp; b & c");
        assert_eq!(unescape("tail&"), "tail&");
    }

    #[test]
    fn escape_unescape_roundtrip() {
        let original = "C&C Research <Labs> \"NEC\" 'Europe'";
        assert_eq!(unescape(&escape_attr(original)), original);
        assert_eq!(unescape(&escape_text(original)), original);
    }
}
