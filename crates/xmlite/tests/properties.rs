//! Randomized tests: serialization/parsing round trips on random trees,
//! driven by a seeded splitmix64 generator (reproducible, offline).

use xmlite::{parse, to_string, to_string_pretty, Document, Element};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    fn string(&mut self, alphabet: &[u8], min: usize, max: usize) -> String {
        let len = min + self.below((max - min) as u64 + 1) as usize;
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len() as u64) as usize] as char)
            .collect()
    }
}

const NAME_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const NAME_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
// Printable ASCII minus '<' and '&' (text) resp. minus '<', '&', '"' (attrs).
const TEXT_CHARS: &[u8] =
    b" !#$%'()*+,-./0123456789:;=?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[]^_abcdefghijklmnopqrstuvwxyz{|}~";

fn name(rng: &mut Rng) -> String {
    format!(
        "{}{}",
        rng.string(NAME_FIRST, 1, 1),
        rng.string(NAME_REST, 0, 8)
    )
}

/// Random element tree of bounded depth and width.
fn arb_element(rng: &mut Rng, depth: usize) -> Element {
    let mut e = Element::new(&name(rng));
    for _ in 0..rng.below(3) {
        // set_attr dedupes keys, which parsing requires.
        e.set_attr(&name(rng), &rng.string(TEXT_CHARS, 0, 10));
    }
    if depth == 0 || rng.below(3) == 0 {
        let t = rng.string(TEXT_CHARS, 0, 16);
        if !t.trim().is_empty() {
            return e.with_text(&t);
        }
        return e;
    }
    for _ in 0..rng.below(4) {
        e = e.with_child(arb_element(rng, depth - 1));
    }
    e
}

/// parse(to_string(t)) == t for arbitrary trees.
#[test]
fn compact_roundtrip() {
    let mut rng = Rng(0xC0);
    for _ in 0..200 {
        let doc = Document::from_root(arb_element(&mut rng, 3));
        let s = to_string(&doc);
        let back = parse(&s).expect("serializer must emit well-formed XML");
        assert_eq!(back, doc);
    }
}

/// Pretty-printing parses back to the same tree (whitespace-only text is
/// insignificant by design).
#[test]
fn pretty_roundtrip() {
    let mut rng = Rng(0xC1);
    for _ in 0..200 {
        let doc = Document::from_root(arb_element(&mut rng, 3));
        let s = to_string_pretty(&doc);
        let back = parse(&s).expect("pretty serializer must emit well-formed XML");
        assert_eq!(back, doc);
    }
}

/// Escaping is total: any attribute value and text survives a round trip.
#[test]
fn hostile_content_roundtrip() {
    let mut rng = Rng(0xC2);
    for _ in 0..300 {
        let attr: String = (0..rng.below(21))
            .map(|_| (b' ' + rng.below(95) as u8) as char)
            .collect();
        let text: String = (0..1 + rng.below(20))
            .map(|_| (b' ' + rng.below(95) as u8) as char)
            .collect();
        let root = Element::new("x").with_attr("a", &attr).with_text(&text);
        let expect_text = text.trim().to_string();
        let doc = Document::from_root(root);
        let back = parse(&to_string(&doc)).unwrap();
        assert_eq!(back.root.attr("a").unwrap(), attr.as_str());
        assert_eq!(back.root.text(), expect_text);
    }
}

/// The parser never panics on arbitrary input.
#[test]
fn parser_total() {
    let mut rng = Rng(0xC3);
    for _ in 0..500 {
        let junk: String = (0..rng.below(65))
            .map(|_| {
                if rng.below(20) == 0 {
                    '\n'
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            })
            .collect();
        let _ = parse(&junk);
    }
}
