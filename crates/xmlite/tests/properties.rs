//! Property-based tests: serialization/parsing round trips on random trees.

use proptest::prelude::*;
use xmlite::{parse, to_string, to_string_pretty, Document, Element};

/// Strategy producing random element trees of bounded depth and width.
fn arb_element() -> impl Strategy<Value = Element> {
    let name = "[a-z][a-z0-9_]{0,8}";
    let text = "[ -%'-;=-~]{0,16}"; // printable ASCII minus '<' and '&'
    let leaf = (name, text).prop_map(|(n, t)| {
        let e = Element::new(&n);
        if t.trim().is_empty() {
            e
        } else {
            e.with_text(&t)
        }
    });
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            "[a-z][a-z0-9_]{0,8}",
            proptest::collection::vec(("[a-z][a-z0-9]{0,5}", "[ !#-%'-;=-~]{0,10}"), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(n, attrs, children)| {
                let mut e = Element::new(&n);
                for (k, v) in attrs {
                    // set_attr dedupes keys, which parsing requires.
                    e.set_attr(&k, &v);
                }
                for c in children {
                    e = e.with_child(c);
                }
                e
            })
    })
}

proptest! {
    /// parse(to_string(t)) == t for arbitrary trees.
    #[test]
    fn compact_roundtrip(root in arb_element()) {
        let doc = Document::from_root(root);
        let s = to_string(&doc);
        let back = parse(&s).expect("serializer must emit well-formed XML");
        prop_assert_eq!(back, doc);
    }

    /// Pretty-printing parses back to the same tree (whitespace-only text is
    /// insignificant by design).
    #[test]
    fn pretty_roundtrip(root in arb_element()) {
        let doc = Document::from_root(root);
        let s = to_string_pretty(&doc);
        let back = parse(&s).expect("pretty serializer must emit well-formed XML");
        prop_assert_eq!(back, doc);
    }

    /// Escaping is total: any attribute value and text survives a round trip.
    #[test]
    fn hostile_content_roundtrip(attr in "[ -~]{0,20}", text in "[ -~]{1,20}") {
        let root = Element::new("x").with_attr("a", &attr).with_text(&text);
        let expect_text = text.trim().to_string();
        let doc = Document::from_root(root);
        let back = parse(&to_string(&doc)).unwrap();
        prop_assert_eq!(back.root.attr("a").unwrap(), attr.as_str());
        prop_assert_eq!(back.root.text(), expect_text);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(junk in "[ -~\\n]{0,64}") {
        let _ = parse(&junk);
    }
}
