//! Property-based tests of the extraction → storage → query pipeline:
//! whatever the workload prints, perfbase must read back exactly, and the
//! query engine's statistics must match independently computed oracles.

use perfbase_core::experiment::{ExperimentDb, ExperimentDef, Meta, Variable, VarKind};
use perfbase_core::import::Importer;
use perfbase_core::input::{
    input_description_from_str, InputDescription, Location, Pattern, TabularColumn, TabularSpec,
};
use perfbase_core::query::spec::query_from_str;
use perfbase_core::query::QueryRunner;
use proptest::prelude::*;
use sqldb::{DataType, Engine, Value};
use std::sync::Arc;

fn definition() -> ExperimentDef {
    let mut def = ExperimentDef::new(Meta { name: "prop".into(), ..Meta::default() }, "u");
    def.add_variable(Variable::new("tag", VarKind::Parameter, DataType::Text).once()).unwrap();
    def.add_variable(Variable::new("idx", VarKind::Parameter, DataType::Int)).unwrap();
    def.add_variable(Variable::new("val", VarKind::ResultValue, DataType::Float)).unwrap();
    def
}

fn tabular_desc() -> InputDescription {
    InputDescription::new()
        .with_location(Location::Named {
            variable: "tag".into(),
            pattern: Pattern::Literal("tag:".into()),
            direction: perfbase_core::input::Direction::After,
            occurrence: 1,
        })
        .with_location(Location::Tabular(TabularSpec {
            start: Pattern::Literal("--data--".into()),
            offset: 0,
            end: None,
            skip_mismatch: false,
            columns: vec![
                TabularColumn { index: 1, variable: "idx".into() },
                TabularColumn { index: 2, variable: "val".into() },
            ],
        }))
}

proptest! {
    /// Render a random table to text, extract it back: every (idx, val)
    /// tuple must survive bit-exactly.
    #[test]
    fn tabular_extraction_roundtrip(
        tag in "[a-z]{1,8}",
        data in proptest::collection::vec((0i64..10_000, -1e6f64..1e6), 1..40),
    ) {
        let mut text = format!("tag: {tag}\n--data--\n");
        for (i, v) in &data {
            text.push_str(&format!("{i} {v:?}\n"));
        }
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        let report = Importer::new(&db).import_file(&tabular_desc(), "f.out", &text).unwrap();
        prop_assert_eq!(report.runs_created.len(), 1);

        let s = db.run_summary(report.runs_created[0]).unwrap();
        prop_assert_eq!(
            s.once_values.iter().find(|(n, _)| n == "tag").map(|(_, v)| v.clone()),
            Some(Value::Text(tag))
        );
        let (cols, rows) = db.run_datasets(report.runs_created[0]).unwrap();
        prop_assert_eq!(cols, vec!["idx".to_string(), "val".to_string()]);
        prop_assert_eq!(rows.len(), data.len());
        for (row, (i, v)) in rows.iter().zip(&data) {
            prop_assert_eq!(&row[0], &Value::Int(*i));
            prop_assert_eq!(&row[1], &Value::Float(*v));
        }
    }

    /// The avg/min/max/count query operators agree with oracles computed
    /// straight from the generated data.
    #[test]
    fn query_statistics_match_oracle(
        values in proptest::collection::vec(-1e3f64..1e3, 2..30),
    ) {
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        let mut text = String::from("tag: x\n--data--\n");
        for v in &values {
            text.push_str(&format!("7 {v:?}\n"));
        }
        Importer::new(&db).import_file(&tabular_desc(), "f.out", &text).unwrap();

        let q = query_from_str(
            r#"<query name="q">
              <source id="s"><parameter name="idx" carry="true"/><value name="val"/></source>
              <operator id="a" type="avg" input="s"/>
              <operator id="mn" type="min" input="s"/>
              <operator id="mx" type="max" input="s"/>
              <operator id="n" type="count" input="s"/>
              <combiner id="c1" input="a,mn" suffixes="_avg,_min"/>
              <combiner id="c2" input="mx,n" suffixes="_max,_n"/>
              <combiner id="all" input="c1,c2"/>
              <output id="o" input="all" format="csv"/>
            </query>"#,
        )
        .unwrap();
        let out = QueryRunner::new(&db).run(q).unwrap();
        let csv = &out.artifacts["o"];
        let line = csv.lines().nth(1).expect("one data row");
        let fields: Vec<f64> = line.split(',').skip(1).map(|x| x.parse().unwrap()).collect();
        let (avg, min, max, count) = (fields[0], fields[1], fields[2], fields[3]);

        // The CSV renderer prints 6 decimal places, so compare within that.
        let tol = |x: f64| 1e-6 * (1.0 + x.abs());
        let o_avg = values.iter().sum::<f64>() / values.len() as f64;
        let o_min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let o_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((avg - o_avg).abs() < tol(o_avg), "avg {avg} vs {o_avg}");
        prop_assert!((min - o_min).abs() < tol(o_min), "min {min} vs {o_min}");
        prop_assert!((max - o_max).abs() < tol(o_max), "max {max} vs {o_max}");
        prop_assert_eq!(count as usize, values.len());
    }

    /// Filters never let a non-matching run through, and matching runs are
    /// never lost (source-element completeness).
    #[test]
    fn source_filter_partition(
        tags in proptest::collection::vec(prop::sample::select(vec!["red", "blue"]), 1..12),
    ) {
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        for (k, tag) in tags.iter().enumerate() {
            let text = format!("tag: {tag}\n--data--\n{k} 1.0\n");
            Importer::new(&db).import_file(&tabular_desc(), &format!("f{k}"), &text).unwrap();
        }
        let count_for = |tag: &str| -> usize {
            let q = query_from_str(&format!(
                r#"<query name="q">
                  <source id="s">
                    <parameter name="tag" value="{tag}"/>
                    <parameter name="idx" carry="true"/>
                    <value name="val"/>
                  </source>
                  <output id="o" input="s" format="csv"/>
                </query>"#
            ))
            .unwrap();
            let out = QueryRunner::new(&db).run(q).unwrap();
            out.artifacts["o"].lines().count() - 1
        };
        let red = count_for("red");
        let blue = count_for("blue");
        prop_assert_eq!(red, tags.iter().filter(|t| **t == "red").count());
        prop_assert_eq!(red + blue, tags.len());
    }

    /// Input descriptions round-trip through their XML serialization and
    /// extract identically afterwards.
    #[test]
    fn description_serialization_preserves_extraction(
        data in proptest::collection::vec((0i64..100, -10.0f64..10.0), 1..10),
    ) {
        let desc = tabular_desc();
        let xml = perfbase_core::input::input_description_to_string(&desc);
        let desc2 = input_description_from_str(&xml).unwrap();

        let mut text = String::from("tag: t\n--data--\n");
        for (i, v) in &data {
            text.push_str(&format!("{i} {v:?}\n"));
        }
        let def = definition();
        let runs1 =
            perfbase_core::input::extract_runs(&desc, &def, "f", &text).unwrap();
        let runs2 =
            perfbase_core::input::extract_runs(&desc2, &def, "f", &text).unwrap();
        prop_assert_eq!(runs1, runs2);
    }

    /// Importing the same content twice never creates a second run, no
    /// matter the content.
    #[test]
    fn duplicate_protection_total(tag in "[a-z]{1,6}", n in 1usize..10) {
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        let mut text = format!("tag: {tag}\n--data--\n");
        for k in 0..n {
            text.push_str(&format!("{k} 1.5\n"));
        }
        let imp = Importer::new(&db);
        let r1 = imp.import_file(&tabular_desc(), "a", &text).unwrap();
        let r2 = imp.import_file(&tabular_desc(), "b", &text).unwrap();
        prop_assert_eq!(r1.runs_created.len(), 1);
        prop_assert_eq!(r2.runs_created.len(), 0);
        prop_assert_eq!(r2.duplicates_skipped, 1);
        prop_assert_eq!(db.run_ids().unwrap().len(), 1);
    }
}
