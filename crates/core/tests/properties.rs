//! Randomized tests of the extraction → storage → query pipeline: whatever
//! the workload prints, perfbase must read back exactly, and the query
//! engine's statistics must match independently computed oracles. Driven by
//! a seeded splitmix64 generator (reproducible, offline).

use perfbase_core::experiment::{ExperimentDb, ExperimentDef, Meta, VarKind, Variable};
use perfbase_core::import::Importer;
use perfbase_core::input::{
    input_description_from_str, InputDescription, Location, Pattern, TabularColumn, TabularSpec,
};
use perfbase_core::query::spec::query_from_str;
use perfbase_core::query::QueryRunner;
use sqldb::{DataType, Engine, Value};
use std::sync::Arc;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    fn float(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }

    fn lower_word(&mut self, min: usize, max: usize) -> String {
        let len = min + self.below((max - min) as u64 + 1) as usize;
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }
}

fn definition() -> ExperimentDef {
    let mut def = ExperimentDef::new(
        Meta {
            name: "prop".into(),
            ..Meta::default()
        },
        "u",
    );
    def.add_variable(Variable::new("tag", VarKind::Parameter, DataType::Text).once())
        .unwrap();
    def.add_variable(Variable::new("idx", VarKind::Parameter, DataType::Int))
        .unwrap();
    def.add_variable(Variable::new("val", VarKind::ResultValue, DataType::Float))
        .unwrap();
    def
}

fn tabular_desc() -> InputDescription {
    InputDescription::new()
        .with_location(Location::Named {
            variable: "tag".into(),
            pattern: Pattern::Literal("tag:".into()),
            direction: perfbase_core::input::Direction::After,
            occurrence: 1,
        })
        .with_location(Location::Tabular(TabularSpec {
            start: Pattern::Literal("--data--".into()),
            offset: 0,
            end: None,
            skip_mismatch: false,
            columns: vec![
                TabularColumn {
                    index: 1,
                    variable: "idx".into(),
                },
                TabularColumn {
                    index: 2,
                    variable: "val".into(),
                },
            ],
        }))
}

/// Render a random table to text, extract it back: every (idx, val)
/// tuple must survive bit-exactly.
#[test]
fn tabular_extraction_roundtrip() {
    let mut rng = Rng(0x01);
    for _ in 0..25 {
        let tag = rng.lower_word(1, 8);
        let n = 1 + rng.below(39) as usize;
        let data: Vec<(i64, f64)> = (0..n)
            .map(|_| (rng.below(10_000) as i64, rng.float(-1e6, 1e6)))
            .collect();
        let mut text = format!("tag: {tag}\n--data--\n");
        for (i, v) in &data {
            text.push_str(&format!("{i} {v:?}\n"));
        }
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        let report = Importer::new(&db)
            .import_file(&tabular_desc(), "f.out", &text)
            .unwrap();
        assert_eq!(report.runs_created.len(), 1);

        let s = db.run_summary(report.runs_created[0]).unwrap();
        assert_eq!(
            s.once_values
                .iter()
                .find(|(n, _)| n == "tag")
                .map(|(_, v)| v.clone()),
            Some(Value::Text(tag))
        );
        let (cols, rows) = db.run_datasets(report.runs_created[0]).unwrap();
        assert_eq!(cols, vec!["idx".to_string(), "val".to_string()]);
        assert_eq!(rows.len(), data.len());
        for (row, (i, v)) in rows.iter().zip(&data) {
            assert_eq!(&row[0], &Value::Int(*i));
            assert_eq!(&row[1], &Value::Float(*v));
        }
    }
}

/// The avg/min/max/count query operators agree with oracles computed
/// straight from the generated data.
#[test]
fn query_statistics_match_oracle() {
    let mut rng = Rng(0x02);
    for _ in 0..15 {
        let n = 2 + rng.below(28) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.float(-1e3, 1e3)).collect();
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        let mut text = String::from("tag: x\n--data--\n");
        for v in &values {
            text.push_str(&format!("7 {v:?}\n"));
        }
        Importer::new(&db)
            .import_file(&tabular_desc(), "f.out", &text)
            .unwrap();

        let q = query_from_str(
            r#"<query name="q">
              <source id="s"><parameter name="idx" carry="true"/><value name="val"/></source>
              <operator id="a" type="avg" input="s"/>
              <operator id="mn" type="min" input="s"/>
              <operator id="mx" type="max" input="s"/>
              <operator id="n" type="count" input="s"/>
              <combiner id="c1" input="a,mn" suffixes="_avg,_min"/>
              <combiner id="c2" input="mx,n" suffixes="_max,_n"/>
              <combiner id="all" input="c1,c2"/>
              <output id="o" input="all" format="csv"/>
            </query>"#,
        )
        .unwrap();
        let out = QueryRunner::new(&db).run(q).unwrap();
        let csv = &out.artifacts["o"];
        let line = csv.lines().nth(1).expect("one data row");
        let fields: Vec<f64> = line
            .split(',')
            .skip(1)
            .map(|x| x.parse().unwrap())
            .collect();
        let (avg, min, max, count) = (fields[0], fields[1], fields[2], fields[3]);

        // The CSV renderer prints 6 decimal places, so compare within that.
        let tol = |x: f64| 1e-6 * (1.0 + x.abs());
        let o_avg = values.iter().sum::<f64>() / values.len() as f64;
        let o_min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let o_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((avg - o_avg).abs() < tol(o_avg), "avg {avg} vs {o_avg}");
        assert!((min - o_min).abs() < tol(o_min), "min {min} vs {o_min}");
        assert!((max - o_max).abs() < tol(o_max), "max {max} vs {o_max}");
        assert_eq!(count as usize, values.len());
    }
}

/// Filters never let a non-matching run through, and matching runs are
/// never lost (source-element completeness).
#[test]
fn source_filter_partition() {
    let mut rng = Rng(0x03);
    for _ in 0..10 {
        let n = 1 + rng.below(11) as usize;
        let tags: Vec<&str> = (0..n)
            .map(|_| if rng.below(2) == 0 { "red" } else { "blue" })
            .collect();
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        for (k, tag) in tags.iter().enumerate() {
            let text = format!("tag: {tag}\n--data--\n{k} 1.0\n");
            Importer::new(&db)
                .import_file(&tabular_desc(), &format!("f{k}"), &text)
                .unwrap();
        }
        let count_for = |tag: &str| -> usize {
            let q = query_from_str(&format!(
                r#"<query name="q">
                  <source id="s">
                    <parameter name="tag" value="{tag}"/>
                    <parameter name="idx" carry="true"/>
                    <value name="val"/>
                  </source>
                  <output id="o" input="s" format="csv"/>
                </query>"#
            ))
            .unwrap();
            let out = QueryRunner::new(&db).run(q).unwrap();
            out.artifacts["o"].lines().count() - 1
        };
        let red = count_for("red");
        let blue = count_for("blue");
        assert_eq!(red, tags.iter().filter(|t| **t == "red").count());
        assert_eq!(red + blue, tags.len());
    }
}

/// Input descriptions round-trip through their XML serialization and
/// extract identically afterwards.
#[test]
fn description_serialization_preserves_extraction() {
    let mut rng = Rng(0x04);
    for _ in 0..25 {
        let n = 1 + rng.below(9) as usize;
        let data: Vec<(i64, f64)> = (0..n)
            .map(|_| (rng.below(100) as i64, rng.float(-10.0, 10.0)))
            .collect();
        let desc = tabular_desc();
        let xml = perfbase_core::input::input_description_to_string(&desc);
        let desc2 = input_description_from_str(&xml).unwrap();

        let mut text = String::from("tag: t\n--data--\n");
        for (i, v) in &data {
            text.push_str(&format!("{i} {v:?}\n"));
        }
        let def = definition();
        let runs1 = perfbase_core::input::extract_runs(&desc, &def, "f", &text).unwrap();
        let runs2 = perfbase_core::input::extract_runs(&desc2, &def, "f", &text).unwrap();
        assert_eq!(runs1, runs2);
    }
}

/// Importing the same content twice never creates a second run, no
/// matter the content.
#[test]
fn duplicate_protection_total() {
    let mut rng = Rng(0x05);
    for _ in 0..25 {
        let tag = rng.lower_word(1, 6);
        let n = 1 + rng.below(9) as usize;
        let db = ExperimentDb::create(Arc::new(Engine::new()), definition()).unwrap();
        let mut text = format!("tag: {tag}\n--data--\n");
        for k in 0..n {
            text.push_str(&format!("{k} 1.5\n"));
        }
        let imp = Importer::new(&db);
        let r1 = imp.import_file(&tabular_desc(), "a", &text).unwrap();
        let r2 = imp.import_file(&tabular_desc(), "b", &text).unwrap();
        assert_eq!(r1.runs_created.len(), 1);
        assert_eq!(r2.runs_created.len(), 0);
        assert_eq!(r2.duplicates_skipped, 1);
        assert_eq!(db.run_ids().unwrap().len(), 1);
    }
}
