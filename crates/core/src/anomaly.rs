//! Automatic result analysis (paper §6, outlook): "the capability to
//! analyse results automatically and only show suspicious or unusual
//! results or deviations from previous runs".
//!
//! The detector works on one result value grouped by a set of parameters:
//! for every parameter combination it computes the historical mean and
//! sample standard deviation, then flags
//!
//! * **run deviations** — runs whose value lies more than `threshold`
//!   standard deviations from the combination's mean (a transient I/O
//!   glitch, a mis-configured node, …);
//! * **unstable combinations** — combinations whose relative standard
//!   deviation exceeds `max_rel_stddev` (the §5 situation where "some
//!   configurations required additional runs to reduce the standard
//!   deviation").
//!
//! The input is any [`DataVector`]-shaped table, so the detector composes
//! with the query engine: run a query, then screen its source vector.

use crate::error::{Error, Result};
use crate::experiment::ExperimentDb;
use crate::query::spec::SourceSpec;
use crate::query::{exec, DataVector};
use sqldb::Value;
use std::collections::HashMap;

/// One screening bucket: the parameter combination plus its samples.
type Bucket = (Vec<(String, Value)>, Vec<f64>);

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Flag values beyond this many sample standard deviations.
    pub threshold: f64,
    /// Flag combinations whose stddev/|mean| exceeds this.
    pub max_rel_stddev: f64,
    /// Combinations need at least this many samples to be judged.
    pub min_samples: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            threshold: 3.0,
            max_rel_stddev: 0.25,
            min_samples: 3,
        }
    }
}

/// A value that deviates from its combination's history.
///
/// Deviations are judged against **robust** statistics — the median and
/// the scaled median absolute deviation (MAD × 1.4826, which estimates σ
/// for normal data) — because a strong outlier inflates the plain standard
/// deviation enough to mask itself when only a handful of runs exist.
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// The parameter combination `(name, content)`.
    pub combination: Vec<(String, Value)>,
    /// The suspicious value.
    pub value: f64,
    /// Median of the combination.
    pub median: f64,
    /// Robust spread (1.4826 × MAD).
    pub spread: f64,
    /// Signed distance from the median in robust-σ units.
    pub sigma: f64,
}

/// A combination whose spread is too large to trust.
#[derive(Debug, Clone, PartialEq)]
pub struct UnstableCombination {
    /// The parameter combination `(name, content)`.
    pub combination: Vec<(String, Value)>,
    /// Number of samples seen.
    pub samples: usize,
    /// Mean of the samples.
    pub mean: f64,
    /// Relative standard deviation (stddev / |mean|).
    pub rel_stddev: f64,
}

/// Full report of a screening pass.
#[derive(Debug, Clone, Default)]
pub struct AnomalyReport {
    /// Values that deviate from their combination's history.
    pub deviations: Vec<Deviation>,
    /// Combinations that need more runs.
    pub unstable: Vec<UnstableCombination>,
    /// Combinations with too few samples to judge.
    pub undersampled: usize,
}

impl AnomalyReport {
    /// Is everything ordinary?
    pub fn is_clean(&self) -> bool {
        self.deviations.is_empty() && self.unstable.is_empty()
    }

    /// Human-readable rendering (the `perfbase suspect` command).
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!(
                "no anomalies ({} combination(s) with too few samples to judge)\n",
                self.undersampled
            );
        }
        let mut out = String::new();
        if !self.deviations.is_empty() {
            out.push_str(&format!("{} deviating value(s):\n", self.deviations.len()));
            for d in &self.deviations {
                let combo: Vec<String> = d
                    .combination
                    .iter()
                    .map(|(p, v)| format!("{p}={v}"))
                    .collect();
                out.push_str(&format!(
                    "  [{}] value {:.4} is {:+.1}σ from median {:.4} (robust σ = {:.4})\n",
                    combo.join(", "),
                    d.value,
                    d.sigma,
                    d.median,
                    d.spread
                ));
            }
        }
        if !self.unstable.is_empty() {
            out.push_str(&format!(
                "{} unstable combination(s) — consider additional runs:\n",
                self.unstable.len()
            ));
            for u in &self.unstable {
                let combo: Vec<String> = u
                    .combination
                    .iter()
                    .map(|(p, v)| format!("{p}={v}"))
                    .collect();
                out.push_str(&format!(
                    "  [{}] rel. stddev {:.1}% over {} samples (mean {:.4})\n",
                    combo.join(", "),
                    u.rel_stddev * 100.0,
                    u.samples,
                    u.mean
                ));
            }
        }
        out
    }
}

/// Screen one result value of an experiment, grouped by `group_by`
/// parameters. Runs a source element internally, so all the §3.3.1 filters
/// apply.
pub fn screen_experiment(
    db: &ExperimentDb,
    source: &SourceSpec,
    config: &AnomalyConfig,
) -> Result<AnomalyReport> {
    if source.values.len() != 1 {
        return Err(Error::Query(
            "anomaly screening expects exactly one result value".into(),
        ));
    }
    let engine = db.engine().clone();
    let vector = exec::run_source(db, &engine, source, "pb_tmp_anomaly_screen")?;
    let report = screen_vector(&engine, &vector, config);
    engine.drop_table("pb_tmp_anomaly_screen", true)?;
    report
}

/// Screen an already-materialised vector.
pub fn screen_vector(
    engine: &sqldb::Engine,
    vector: &DataVector,
    config: &AnomalyConfig,
) -> Result<AnomalyReport> {
    let (cols, rows) = engine
        .read_snapshot(&vector.table)
        .map_err(Error::from)
        .map(|(schema, rows)| (schema.names(), rows))?;
    let pidx: Vec<usize> = vector
        .params
        .iter()
        .map(|p| {
            cols.iter()
                .position(|c| c == p)
                .ok_or_else(|| Error::Query(format!("vector lost parameter column '{p}'")))
        })
        .collect::<Result<_>>()?;
    let vcol = vector
        .values
        .first()
        .and_then(|v| cols.iter().position(|c| c == v))
        .ok_or_else(|| Error::Query("vector has no value column".into()))?;

    // Bucket samples per combination.
    let mut buckets: HashMap<String, Bucket> = HashMap::new();
    for row in &rows {
        let Some(x) = row[vcol].as_f64() else {
            continue;
        };
        let key: String = pidx
            .iter()
            .map(|&i| format!("{}", row[i]))
            .collect::<Vec<_>>()
            .join("\u{1}");
        let entry = buckets.entry(key).or_insert_with(|| {
            (
                vector
                    .params
                    .iter()
                    .zip(&pidx)
                    .map(|(p, &i)| (p.clone(), row[i].clone()))
                    .collect(),
                Vec::new(),
            )
        });
        entry.1.push(x);
    }

    let mut report = AnomalyReport::default();
    let mut ordered: Vec<&Bucket> = buckets.values().collect();
    ordered.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));

    for (combination, samples) in ordered {
        if samples.len() < config.min_samples {
            report.undersampled += 1;
            continue;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        let stddev = var.sqrt();

        if mean.abs() > f64::EPSILON && stddev / mean.abs() > config.max_rel_stddev {
            report.unstable.push(UnstableCombination {
                combination: combination.clone(),
                samples: samples.len(),
                mean,
                rel_stddev: stddev / mean.abs(),
            });
        }

        // Robust per-value screening: median / MAD resist the masking
        // effect a strong outlier has on mean/stddev in small samples.
        let med = median(samples);
        let deviations_abs: Vec<f64> = samples.iter().map(|x| (x - med).abs()).collect();
        let spread = 1.4826 * median(&deviations_abs);
        for &x in samples {
            let dist = x - med;
            let sigma = if spread > 0.0 {
                dist / spread
            } else if dist == 0.0 {
                0.0
            } else {
                // All other samples identical: any difference is infinitely
                // suspicious; report a large finite score.
                dist.signum() * f64::MAX.sqrt()
            };
            if sigma.abs() > config.threshold {
                report.deviations.push(Deviation {
                    combination: combination.clone(),
                    value: x,
                    median: med,
                    spread,
                    sigma,
                });
            }
        }
    }
    Ok(report)
}

/// Median of a non-empty slice (copies; inputs are small).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentDef, Meta, VarKind, Variable};
    use crate::query::spec::{Filter, FilterOp, RunFilter};
    use sqldb::{DataType, Engine};
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn db_with(values: &[(&str, i64, f64)]) -> ExperimentDb {
        let mut def = ExperimentDef::new(
            Meta {
                name: "a".into(),
                ..Meta::default()
            },
            "u",
        );
        def.add_variable(Variable::new("fs", VarKind::Parameter, DataType::Text).once())
            .unwrap();
        def.add_variable(Variable::new("chunk", VarKind::Parameter, DataType::Int))
            .unwrap();
        def.add_variable(Variable::new("bw", VarKind::ResultValue, DataType::Float))
            .unwrap();
        let db = ExperimentDb::create(Arc::new(Engine::new()), def).unwrap();
        for (fs, chunk, bw) in values {
            let once: Map<String, Value> = [("fs".to_string(), Value::Text(fs.to_string()))].into();
            let ds: Map<String, Value> = [
                ("chunk".to_string(), Value::Int(*chunk)),
                ("bw".to_string(), Value::Float(*bw)),
            ]
            .into();
            db.add_run(&once, &[ds], 0).unwrap();
        }
        db
    }

    fn source() -> SourceSpec {
        SourceSpec {
            filters: Vec::new(),
            run_filter: RunFilter::default(),
            carry: vec!["fs".into(), "chunk".into()],
            values: vec!["bw".into()],
        }
    }

    #[test]
    fn clean_data_reports_clean() {
        let db = db_with(&[
            ("ufs", 1024, 100.0),
            ("ufs", 1024, 101.0),
            ("ufs", 1024, 99.5),
            ("ufs", 1024, 100.5),
        ]);
        let report = screen_experiment(&db, &source(), &AnomalyConfig::default()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert!(report.render().contains("no anomalies"));
        // The screening temp table is cleaned up.
        assert!(!db.engine().has_table("pb_tmp_anomaly_screen"));
    }

    #[test]
    fn outlier_flagged_with_sigma() {
        // Eleven tight samples, one wild one.
        let mut vals: Vec<(&str, i64, f64)> = (0..11)
            .map(|i| ("ufs", 1024i64, 100.0 + (i % 3) as f64 * 0.5))
            .collect();
        vals.push(("ufs", 1024, 250.0));
        let db = db_with(&vals);
        let report = screen_experiment(&db, &source(), &AnomalyConfig::default()).unwrap();
        assert_eq!(report.deviations.len(), 1);
        let d = &report.deviations[0];
        assert_eq!(d.value, 250.0);
        assert!(d.sigma > 3.0);
        assert!(report.render().contains("deviating value"));
    }

    #[test]
    fn unstable_combination_flagged() {
        let db = db_with(&[
            ("nfs", 1024, 10.0),
            ("nfs", 1024, 30.0),
            ("nfs", 1024, 5.0),
            ("nfs", 1024, 42.0),
        ]);
        let report = screen_experiment(&db, &source(), &AnomalyConfig::default()).unwrap();
        assert_eq!(report.unstable.len(), 1);
        assert!(report.unstable[0].rel_stddev > 0.25);
        assert!(report.render().contains("additional runs"));
    }

    #[test]
    fn undersampled_combinations_counted_not_judged() {
        let db = db_with(&[("ufs", 1024, 100.0), ("ufs", 2048, 900.0)]);
        let report = screen_experiment(&db, &source(), &AnomalyConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.undersampled, 2);
    }

    #[test]
    fn combinations_screened_independently() {
        // A value normal for nfs would be an outlier for ufs; per-combination
        // statistics must keep them apart.
        let mut vals = Vec::new();
        for i in 0..5 {
            vals.push(("ufs", 1024i64, 100.0 + i as f64 * 0.4));
            vals.push(("nfs", 1024, 10.0 + i as f64 * 0.4));
        }
        let db = db_with(&vals);
        let report = screen_experiment(&db, &source(), &AnomalyConfig::default()).unwrap();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn filters_apply_before_screening() {
        let mut vals: Vec<(&str, i64, f64)> = (0..4)
            .map(|i| ("ufs", 1024i64, 100.0 + i as f64 * 0.2))
            .collect();
        vals.extend((0..4).map(|i| ("nfs", 1024i64, if i == 3 { 400.0 } else { 10.0 })));
        let db = db_with(&vals);
        let mut src = source();
        src.filters.push(Filter {
            parameter: "fs".into(),
            op: FilterOp::Eq,
            value: "ufs".into(),
        });
        src.carry = vec!["chunk".into()];
        let report = screen_experiment(&db, &src, &AnomalyConfig::default()).unwrap();
        assert!(
            report.is_clean(),
            "nfs outlier must be filtered out: {report:?}"
        );
    }

    #[test]
    fn config_thresholds_respected() {
        let db = db_with(&[
            ("ufs", 1024, 100.0),
            ("ufs", 1024, 110.0),
            ("ufs", 1024, 90.0),
            ("ufs", 1024, 105.0),
        ]);
        let strict = AnomalyConfig {
            threshold: 1.0,
            max_rel_stddev: 0.01,
            min_samples: 2,
        };
        let report = screen_experiment(&db, &source(), &strict).unwrap();
        assert!(!report.deviations.is_empty());
        assert!(!report.unstable.is_empty());
    }

    #[test]
    fn multi_value_source_rejected() {
        let db = db_with(&[("ufs", 1024, 1.0)]);
        let mut src = source();
        src.values.push("bw".into());
        assert!(screen_experiment(&db, &src, &AnomalyConfig::default()).is_err());
    }
}
