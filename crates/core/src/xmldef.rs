//! XML form of the experiment definition (paper §3.1, Fig. 5).
//!
//! The definition is an XML document conforming to a perfbase DTD. This
//! module provides the parser, the serializer (used to persist the
//! definition into `pb_meta`), and the built-in DTD-lite schema the document
//! is validated against.

use crate::error::{Error, Result};
use crate::experiment::{AccessLevel, ExperimentDef, Meta, Occurrence, Person, VarKind, Variable};
use crate::units::Unit;
use sqldb::DataType;
use xmlite::dtd::{AttrDecl, Dtd, Model};
use xmlite::{Document, Element};

/// The DTD-lite schema for experiment definitions.
pub fn definition_schema() -> Dtd {
    let var_children = vec![
        "name".to_string(),
        "synopsis".to_string(),
        "description".to_string(),
        "datatype".to_string(),
        "unit".to_string(),
        "valid".to_string(),
        "default".to_string(),
    ];
    Dtd::new()
        .declare(
            "experiment",
            Model::Children(vec![
                "name".into(),
                "info".into(),
                "user".into(),
                "parameter".into(),
                "result".into(),
            ]),
        )
        .declare("name", Model::Text)
        .declare(
            "info",
            Model::Children(vec![
                "performed_by".into(),
                "project".into(),
                "synopsis".into(),
                "description".into(),
            ]),
        )
        .declare(
            "performed_by",
            Model::Children(vec!["name".into(), "organization".into()]),
        )
        .declare("organization", Model::Text)
        .declare("project", Model::Text)
        .declare("synopsis", Model::Text)
        .declare("description", Model::Text)
        .declare("user", Model::Text)
        .attribute(
            "user",
            AttrDecl {
                name: "access".into(),
                required: true,
                default: None,
            },
        )
        .declare("parameter", Model::Children(var_children.clone()))
        .attribute(
            "parameter",
            AttrDecl {
                name: "occurence".into(),
                required: false,
                default: Some("multiple".into()),
            },
        )
        .declare("result", Model::Children(var_children))
        .attribute(
            "result",
            AttrDecl {
                name: "occurence".into(),
                required: false,
                default: Some("multiple".into()),
            },
        )
        .declare("datatype", Model::Text)
        .declare("valid", Model::Text)
        .declare("default", Model::Text)
        .declare(
            "unit",
            Model::Children(vec![
                "base_unit".into(),
                "scaling".into(),
                "fraction".into(),
            ]),
        )
        .declare(
            "fraction",
            Model::Children(vec!["dividend".into(), "divisor".into()]),
        )
        .declare(
            "dividend",
            Model::Children(vec!["base_unit".into(), "scaling".into()]),
        )
        .declare(
            "divisor",
            Model::Children(vec!["base_unit".into(), "scaling".into()]),
        )
        .declare("base_unit", Model::Text)
        .declare("scaling", Model::Text)
}

/// Parse a definition from XML text.
pub fn definition_from_str(xml: &str) -> Result<ExperimentDef> {
    let doc = xmlite::parse(xml)?;
    definition_from_xml(&doc.root)
}

/// Parse a definition from a parsed `<experiment>` element.
pub fn definition_from_xml(root: &Element) -> Result<ExperimentDef> {
    if root.name != "experiment" {
        return Err(Error::ControlFile(format!(
            "expected <experiment> document element, found <{}>",
            root.name
        )));
    }
    if let Err(errors) = definition_schema().validate(root) {
        let msgs: Vec<String> = errors.iter().take(5).map(|e| e.to_string()).collect();
        return Err(Error::ControlFile(format!(
            "experiment definition does not validate: {}",
            msgs.join("; ")
        )));
    }

    let mut meta = Meta {
        name: root
            .child_text("name")
            .ok_or_else(|| Error::ControlFile("experiment without <name>".into()))?,
        ..Meta::default()
    };
    if let Some(info) = root.child("info") {
        meta.project = info.child_text("project").unwrap_or_default();
        meta.synopsis = info.child_text("synopsis").unwrap_or_default();
        meta.description = normalize_ws(&info.child_text("description").unwrap_or_default());
        if let Some(p) = info.child("performed_by") {
            meta.performed_by = Person {
                name: p.child_text("name").unwrap_or_default(),
                organization: p.child_text("organization").unwrap_or_default(),
            };
        }
    }

    let mut users = Vec::new();
    for u in root.children_named("user") {
        let level = AccessLevel::parse(u.attr("access").unwrap_or("query"))?;
        users.push((u.text(), level));
    }
    if users.is_empty() {
        // The author is always at least an admin.
        users.push((meta.performed_by.name.clone(), AccessLevel::Admin));
    }

    let mut def = ExperimentDef {
        meta,
        variables: Vec::new(),
        users,
    };
    for el in root.elements() {
        let kind = match el.name.as_str() {
            "parameter" => VarKind::Parameter,
            "result" => VarKind::ResultValue,
            _ => continue,
        };
        def.add_variable(variable_from_xml(el, kind)?)?;
    }
    Ok(def)
}

fn variable_from_xml(el: &Element, kind: VarKind) -> Result<Variable> {
    let name = el
        .child_text("name")
        .ok_or_else(|| Error::ControlFile("variable without <name>".into()))?;
    let dt_text = el
        .child_text("datatype")
        .unwrap_or_else(|| "string".to_string());
    let datatype = datatype_from_name(&dt_text)
        .ok_or_else(|| Error::ControlFile(format!("unknown datatype '{dt_text}'")))?;
    let occurrence = match el.attr("occurence").unwrap_or("multiple") {
        "once" => Occurrence::Once,
        "multiple" => Occurrence::Multiple,
        other => {
            return Err(Error::ControlFile(format!(
                "invalid occurence '{other}' on variable '{name}'"
            )))
        }
    };
    let unit = match el.child("unit") {
        Some(u) => Unit::from_xml(u)?,
        None => Unit::Dimensionless,
    };
    let mut var = Variable {
        name,
        kind,
        occurrence,
        synopsis: el.child_text("synopsis").unwrap_or_default(),
        description: el.child_text("description").unwrap_or_default(),
        datatype,
        unit,
        valid: el.children_named("valid").map(Element::text).collect(),
        default: None,
    };
    if let Some(d) = el.child_text("default") {
        var.default =
            Some(var.parse_content(&d).map_err(|e| {
                Error::ControlFile(format!("bad <default> for '{}': {e}", var.name))
            })?);
    }
    Ok(var)
}

/// The `<datatype>` vocabulary of Fig. 5.
pub fn datatype_from_name(s: &str) -> Option<DataType> {
    match s.trim().to_ascii_lowercase().as_str() {
        "integer" | "int" => Some(DataType::Int),
        "float" | "double" => Some(DataType::Float),
        "string" | "text" => Some(DataType::Text),
        "boolean" | "bool" => Some(DataType::Bool),
        "timestamp" | "date" => Some(DataType::Timestamp),
        _ => None,
    }
}

/// Inverse of [`datatype_from_name`].
pub fn datatype_name(t: DataType) -> &'static str {
    match t {
        DataType::Int => "integer",
        DataType::Float => "float",
        DataType::Text => "string",
        DataType::Bool => "boolean",
        DataType::Timestamp => "timestamp",
    }
}

/// Serialize a definition to an `<experiment>` element.
pub fn definition_to_xml(def: &ExperimentDef) -> Element {
    let mut root = Element::new("experiment").with_text_child("name", &def.meta.name);
    let info = Element::new("info")
        .with_child(
            Element::new("performed_by")
                .with_text_child("name", &def.meta.performed_by.name)
                .with_text_child("organization", &def.meta.performed_by.organization),
        )
        .with_text_child("project", &def.meta.project)
        .with_text_child("synopsis", &def.meta.synopsis)
        .with_text_child("description", &def.meta.description);
    root = root.with_child(info);
    for (user, level) in &def.users {
        root = root.with_child(
            Element::new("user")
                .with_attr("access", level.name())
                .with_text(user),
        );
    }
    for v in &def.variables {
        root = root.with_child(variable_to_xml(v));
    }
    root
}

fn variable_to_xml(v: &Variable) -> Element {
    let tag = match v.kind {
        VarKind::Parameter => "parameter",
        VarKind::ResultValue => "result",
    };
    let occ = match v.occurrence {
        Occurrence::Once => "once",
        Occurrence::Multiple => "multiple",
    };
    let mut el = Element::new(tag)
        .with_attr("occurence", occ)
        .with_text_child("name", &v.name);
    if !v.synopsis.is_empty() {
        el = el.with_text_child("synopsis", &v.synopsis);
    }
    if !v.description.is_empty() {
        el = el.with_text_child("description", &v.description);
    }
    el = el.with_text_child("datatype", datatype_name(v.datatype));
    if let Some(u) = v.unit.to_xml() {
        el = el.with_child(u);
    }
    for val in &v.valid {
        el = el.with_text_child("valid", val);
    }
    if let Some(d) = &v.default {
        el = el.with_text_child("default", &d.to_string());
    }
    el
}

/// Serialize a definition to XML text.
pub fn definition_to_string(def: &ExperimentDef) -> String {
    xmlite::to_string_pretty(&Document::from_root(definition_to_xml(def)))
}

fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{ScaledUnit, Scaling};
    use sqldb::Value;

    /// The Fig. 5 excerpt, verbatim in structure.
    pub(crate) const FIG5: &str = r#"<experiment>
  <name>b_eff_io</name>
  <info>
    <performed_by>
      <name>Joachim Worringen</name>
      <organization>C&amp;C Research Laboratories, NEC Europe Ltd.</organization>
    </performed_by>
    <project>Optimization of MPI I/O Operations</project>
    <synopsis>Results of b_eff_io Benchmark</synopsis>
    <description> We want to track the performance changes that we achieve with
     new algorithms and parameter optimization I/O operations. </description>
  </info>
  <parameter occurence="once">
    <name>T</name>
    <synopsis>specified runtime of the test</synopsis>
    <datatype>integer</datatype>
    <unit> <base_unit>s</base_unit> </unit>
  </parameter>
  <parameter occurence="once">
    <name>fs</name>
    <synopsis>type of file system for the used path</synopsis>
    <datatype>string</datatype>
    <valid>ufs</valid> <valid>nfs</valid> <valid>pvfs</valid> <valid>sfs</valid> <valid>unknown</valid>
    <default>unknown</default>
  </parameter>
  <parameter occurence="once">
    <name>date_run</name>
    <synopsis>date and time the run was performed</synopsis>
    <datatype>timestamp</datatype>
  </parameter>
  <parameter>
    <name>S_chunk</name>
    <synopsis>amount of data that is written or read</synopsis>
    <datatype>integer</datatype>
    <unit> <base_unit>byte</base_unit> </unit>
  </parameter>
  <parameter>
    <name>N_proc</name>
    <synopsis>number of processes involved in the operation</synopsis>
    <datatype>integer</datatype>
    <unit> <base_unit>process</base_unit> </unit>
  </parameter>
  <result>
    <name>B_scatter</name>
    <synopsis>bandwidth for access type 0 (scatter)</synopsis>
    <datatype>float</datatype>
    <unit> <fraction>
             <dividend> <base_unit>byte</base_unit> <scaling>Mega</scaling> </dividend>
             <divisor> <base_unit>s</base_unit> </divisor>
    </fraction> </unit>
  </result>
</experiment>"#;

    #[test]
    fn parses_fig5() {
        let def = definition_from_str(FIG5).unwrap();
        assert_eq!(def.meta.name, "b_eff_io");
        assert_eq!(def.meta.performed_by.name, "Joachim Worringen");
        assert!(def.meta.performed_by.organization.contains("C&C"));
        assert_eq!(def.variables.len(), 6);

        let t = def.variable("T").unwrap();
        assert_eq!(t.occurrence, Occurrence::Once);
        assert_eq!(t.datatype, DataType::Int);
        assert_eq!(t.unit.to_string(), "s");

        let fs = def.variable("fs").unwrap();
        assert_eq!(fs.valid.len(), 5);
        assert_eq!(fs.default, Some(Value::Text("unknown".into())));

        let chunk = def.variable("S_chunk").unwrap();
        assert_eq!(chunk.occurrence, Occurrence::Multiple);

        let b = def.variable("B_scatter").unwrap();
        assert_eq!(b.kind, VarKind::ResultValue);
        assert_eq!(
            b.unit,
            Unit::fraction(
                ScaledUnit::scaled("byte", Scaling::Mega),
                ScaledUnit::base("s")
            )
        );
        assert_eq!(b.unit.to_string(), "MB/s");

        // Author becomes admin when no explicit user list is given.
        def.check_access("Joachim Worringen", AccessLevel::Admin)
            .unwrap();
    }

    #[test]
    fn roundtrip_preserves_definition() {
        let def = definition_from_str(FIG5).unwrap();
        let xml = definition_to_string(&def);
        let def2 = definition_from_str(&xml).unwrap();
        assert_eq!(def, def2);
    }

    #[test]
    fn users_roundtrip() {
        let mut def = definition_from_str(FIG5).unwrap();
        def.grant("alice", AccessLevel::Input);
        def.grant("bob", AccessLevel::Query);
        let def2 = definition_from_str(&definition_to_string(&def)).unwrap();
        def2.check_access("alice", AccessLevel::Input).unwrap();
        assert!(def2.check_access("bob", AccessLevel::Input).is_err());
    }

    #[test]
    fn schema_rejects_unknown_elements() {
        let bad = "<experiment><name>x</name><bogus/></experiment>";
        let err = definition_from_str(bad).unwrap_err();
        assert!(err.to_string().contains("does not validate"));
    }

    #[test]
    fn rejects_bad_datatype_and_occurrence() {
        let bad = "<experiment><name>x</name><parameter><name>p</name><datatype>quux</datatype></parameter></experiment>";
        assert!(definition_from_str(bad).is_err());
        let bad = "<experiment><name>x</name><parameter occurence=\"sometimes\"><name>p</name><datatype>integer</datatype></parameter></experiment>";
        assert!(definition_from_str(bad).is_err());
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(definition_from_str("<query/>").is_err());
    }

    #[test]
    fn default_validated_against_type() {
        let bad = "<experiment><name>x</name><parameter><name>p</name><datatype>integer</datatype><default>abc</default></parameter></experiment>";
        assert!(definition_from_str(bad).is_err());
    }

    #[test]
    fn datatype_vocabulary() {
        assert_eq!(datatype_from_name("integer"), Some(DataType::Int));
        assert_eq!(datatype_from_name("String"), Some(DataType::Text));
        assert_eq!(datatype_from_name("date"), Some(DataType::Timestamp));
        assert_eq!(datatype_from_name("complex"), None);
        for t in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Timestamp,
        ] {
            assert_eq!(datatype_from_name(datatype_name(t)), Some(t));
        }
    }
}
