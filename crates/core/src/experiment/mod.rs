//! The experiment model (paper §3, §3.1).
//!
//! An *experiment* is the system under evaluation. It is defined by meta
//! information, a set of typed *input parameters* and *result values*
//! (collectively: variables), and an access-control list. Each execution of
//! the experiment is a *run*, stored as a set of parameter and result
//! contents; variables are either constant per run (*unique occurrence*) or
//! vectors (*multiple occurrence*) whose element tuples form *data sets*.

mod db;
pub mod shard;

pub(crate) use db::rundata_table as rundata_table_name;
pub use db::{ExperimentDb, RunSummary};
pub use shard::Sharding;

use crate::error::{Error, Result};
use crate::units::Unit;
use sqldb::{parse_timestamp, DataType, Value};

/// Is a variable an input parameter or a result value?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Input parameter: a constraint the experiment ran under.
    Parameter,
    /// Result value: something the run produced.
    ResultValue,
}

/// How often content occurs within one run (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Occurrence {
    /// Constant throughout the run.
    Once,
    /// A vector of content; tuples of such vectors form data sets.
    #[default]
    Multiple,
}

/// One experiment variable (a `<parameter>` or `<result>` in Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Unique name (a valid identifier).
    pub name: String,
    /// Parameter or result.
    pub kind: VarKind,
    /// Unique or multiple occurrence.
    pub occurrence: Occurrence,
    /// One-line summary.
    pub synopsis: String,
    /// Longer description.
    pub description: String,
    /// Data type.
    pub datatype: DataType,
    /// Physical/logical unit.
    pub unit: Unit,
    /// Whitelist of valid content; empty = anything goes (Fig. 5:
    /// "specification of valid content. All other content will be
    /// rejected").
    pub valid: Vec<String>,
    /// Default content used when an input file provides none.
    pub default: Option<Value>,
}

impl Variable {
    /// Minimal constructor; fill optional fields via struct update.
    pub fn new(name: &str, kind: VarKind, datatype: DataType) -> Self {
        Variable {
            name: name.to_string(),
            kind,
            occurrence: Occurrence::default(),
            synopsis: String::new(),
            description: String::new(),
            datatype,
            unit: Unit::Dimensionless,
            valid: Vec::new(),
            default: None,
        }
    }

    /// Builder: set unique occurrence.
    pub fn once(mut self) -> Self {
        self.occurrence = Occurrence::Once;
        self
    }

    /// Builder: set synopsis.
    pub fn with_synopsis(mut self, s: &str) -> Self {
        self.synopsis = s.to_string();
        self
    }

    /// Builder: set unit.
    pub fn with_unit(mut self, u: Unit) -> Self {
        self.unit = u;
        self
    }

    /// Builder: restrict valid content.
    pub fn with_valid(mut self, valid: &[&str]) -> Self {
        self.valid = valid.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builder: set default content.
    pub fn with_default(mut self, v: Value) -> Self {
        self.default = Some(v);
        self
    }

    /// Parse raw text content for this variable, honouring the data type
    /// and the valid-content whitelist. This is the "smart parsing" sitting
    /// behind every location type (paper §3.2): numbers may carry trailing
    /// unit text, which is stripped.
    pub fn parse_content(&self, raw: &str) -> Result<Value> {
        let raw = raw.trim();
        if raw.is_empty() {
            return Ok(Value::Null);
        }
        if !self.valid.is_empty() && !self.valid.iter().any(|v| v == raw) {
            return Err(Error::Extraction(format!(
                "content '{raw}' is not in the valid set of variable '{}'",
                self.name
            )));
        }
        let bad = |what: &str| {
            Error::Extraction(format!(
                "cannot parse '{raw}' as {what} for variable '{}'",
                self.name
            ))
        };
        match self.datatype {
            DataType::Int => {
                let tok = leading_number_token(raw);
                tok.parse::<i64>()
                    .map(Value::Int)
                    .or_else(|_| {
                        // Allow float-shaped integers like "4.0" or "1e3".
                        tok.parse::<f64>()
                            .ok()
                            .filter(|f| f.fract() == 0.0)
                            .map(|f| Value::Int(f as i64))
                            .ok_or(())
                    })
                    .map_err(|_| bad("integer"))
            }
            DataType::Float => leading_number_token(raw)
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| bad("float")),
            DataType::Text => Ok(Value::Text(raw.to_string())),
            DataType::Bool => match raw.to_ascii_lowercase().as_str() {
                "true" | "yes" | "on" | "1" | "t" => Ok(Value::Bool(true)),
                "false" | "no" | "off" | "0" | "f" => Ok(Value::Bool(false)),
                _ => Err(bad("boolean")),
            },
            DataType::Timestamp => parse_timestamp(raw)
                .map(Value::Timestamp)
                .or_else(|| parse_ctime(raw).map(Value::Timestamp))
                .ok_or_else(|| bad("timestamp")),
        }
    }
}

/// The leading numeric token of `raw`: strips trailing unit text
/// ("2.000 MBytes" → "2.000") and thousands separators ("1,048,576").
fn leading_number_token(raw: &str) -> String {
    let cleaned: String = raw.chars().filter(|c| *c != ',').collect();
    let mut end = 0;
    for (i, c) in cleaned.char_indices() {
        if c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
            end = i + c.len_utf8();
        } else {
            break;
        }
    }
    // Trailing 'e'/'E' without exponent digits belongs to unit text ("2 E").
    let mut tok = &cleaned[..end];
    while tok.ends_with(['e', 'E', '+', '-', '.']) && !tok.is_empty() {
        let last_is_exp_start = tok.ends_with(['e', 'E']);
        let body = &tok[..tok.len() - 1];
        if (last_is_exp_start || tok.ends_with(['+', '-']) || tok.ends_with('.'))
            && (body.parse::<f64>().is_ok() || body.is_empty())
        {
            tok = body;
            continue;
        }
        break;
    }
    tok.to_string()
}

/// Parse a ctime-style date as produced by `b_eff_io`:
/// `Tue Nov 23 18:30:30 2004`.
fn parse_ctime(raw: &str) -> Option<i64> {
    let parts: Vec<&str> = raw.split_whitespace().collect();
    if parts.len() != 5 {
        return None;
    }
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    let month = MONTHS.iter().position(|m| *m == parts[1])? as u32 + 1;
    let day: u32 = parts[2].parse().ok()?;
    let year: i64 = parts[4].parse().ok()?;
    parse_timestamp(&format!("{year:04}-{month:02}-{day:02} {}", parts[3]))
}

/// Who performed the experiment (Fig. 5 `<performed_by>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Person {
    /// Author name.
    pub name: String,
    /// Affiliation.
    pub organization: String,
}

/// Experiment meta information (paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Meta {
    /// Experiment name — also the namespace for its database tables.
    pub name: String,
    /// Project this experiment belongs to.
    pub project: String,
    /// One-line summary.
    pub synopsis: String,
    /// Long description.
    pub description: String,
    /// Author.
    pub performed_by: Person,
}

/// User classes (paper §4.2): query ⊂ input ⊂ admin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessLevel {
    /// May only run queries.
    Query,
    /// May additionally import new runs.
    Input,
    /// Full access, including definition changes.
    Admin,
}

impl AccessLevel {
    /// Parse the textual form stored in `pb_users`.
    pub fn parse(s: &str) -> Result<AccessLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "query" => Ok(AccessLevel::Query),
            "input" => Ok(AccessLevel::Input),
            "admin" => Ok(AccessLevel::Admin),
            other => Err(Error::Definition(format!("unknown access level '{other}'"))),
        }
    }

    /// Textual form.
    pub fn name(&self) -> &'static str {
        match self {
            AccessLevel::Query => "query",
            AccessLevel::Input => "input",
            AccessLevel::Admin => "admin",
        }
    }
}

/// A complete experiment definition: meta info + variables + users.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDef {
    /// Meta information.
    pub meta: Meta,
    /// All variables in declaration order.
    pub variables: Vec<Variable>,
    /// Access-control list (user name → level).
    pub users: Vec<(String, AccessLevel)>,
}

impl ExperimentDef {
    /// New definition with no variables; the creator becomes admin.
    pub fn new(meta: Meta, creator: &str) -> Self {
        ExperimentDef {
            meta,
            variables: Vec::new(),
            users: vec![(creator.to_string(), AccessLevel::Admin)],
        }
    }

    /// Look up a variable.
    pub fn variable(&self, name: &str) -> Option<&Variable> {
        self.variables.iter().find(|v| v.name == name)
    }

    /// Variables filtered by occurrence.
    pub fn variables_with(&self, occ: Occurrence) -> impl Iterator<Item = &Variable> {
        self.variables.iter().filter(move |v| v.occurrence == occ)
    }

    /// Add a variable (experiment evolution, paper §3.1). Name must be a
    /// fresh valid identifier.
    pub fn add_variable(&mut self, v: Variable) -> Result<()> {
        if !is_identifier(&v.name) {
            return Err(Error::Definition(format!(
                "variable name '{}' is not a valid identifier",
                v.name
            )));
        }
        if self.variable(&v.name).is_some() {
            return Err(Error::Definition(format!(
                "variable '{}' already exists",
                v.name
            )));
        }
        if let Some(d) = &v.default {
            if !d.is_null() && d.clone().coerce(v.datatype).is_err() {
                return Err(Error::Definition(format!(
                    "default value for '{}' does not fit its type",
                    v.name
                )));
            }
        }
        self.variables.push(v);
        Ok(())
    }

    /// Replace an existing variable's definition (evolution: "values and
    /// parameters can be … modified").
    pub fn modify_variable(&mut self, v: Variable) -> Result<()> {
        match self.variables.iter_mut().find(|x| x.name == v.name) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(Error::Definition(format!(
                "variable '{}' does not exist",
                v.name
            ))),
        }
    }

    /// Remove a variable.
    pub fn remove_variable(&mut self, name: &str) -> Result<Variable> {
        match self.variables.iter().position(|v| v.name == name) {
            Some(i) => Ok(self.variables.remove(i)),
            None => Err(Error::Definition(format!(
                "variable '{name}' does not exist"
            ))),
        }
    }

    /// Grant (or change) a user's access level.
    pub fn grant(&mut self, user: &str, level: AccessLevel) {
        match self.users.iter_mut().find(|(u, _)| u == user) {
            Some(slot) => slot.1 = level,
            None => self.users.push((user.to_string(), level)),
        }
    }

    /// Revoke a user's access entirely.
    pub fn revoke(&mut self, user: &str) -> Result<()> {
        let admins = self
            .users
            .iter()
            .filter(|(_, l)| *l == AccessLevel::Admin)
            .count();
        if admins == 1
            && self
                .users
                .iter()
                .any(|(u, l)| u == user && *l == AccessLevel::Admin)
        {
            return Err(Error::Access("cannot revoke the last admin".to_string()));
        }
        let before = self.users.len();
        self.users.retain(|(u, _)| u != user);
        if self.users.len() == before {
            return Err(Error::Definition(format!(
                "user '{user}' has no access to revoke"
            )));
        }
        Ok(())
    }

    /// Check that `user` holds at least `level`.
    pub fn check_access(&self, user: &str, level: AccessLevel) -> Result<()> {
        match self.users.iter().find(|(u, _)| u == user) {
            Some((_, have)) if *have >= level => Ok(()),
            Some((_, have)) => Err(Error::Access(format!(
                "user '{user}' has {} access but {} is required",
                have.name(),
                level.name()
            ))),
            None => Err(Error::Access(format!("user '{user}' is not authorised"))),
        }
    }
}

/// Is `s` a valid variable identifier (letters, digits, `_`, not starting
/// with a digit)?
pub fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_var(name: &str) -> Variable {
        Variable::new(name, VarKind::ResultValue, DataType::Float)
    }

    #[test]
    fn content_parsing_smart() {
        let v = float_var("bw");
        assert_eq!(v.parse_content("214.516").unwrap(), Value::Float(214.516));
        assert_eq!(v.parse_content(" 2.000 MBytes").unwrap(), Value::Float(2.0));
        assert_eq!(v.parse_content("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(v.parse_content("").unwrap(), Value::Null);
        assert!(v.parse_content("n/a").is_err());

        let i = Variable::new("n", VarKind::Parameter, DataType::Int);
        assert_eq!(i.parse_content("256 MBytes").unwrap(), Value::Int(256));
        assert_eq!(i.parse_content("1,048,576").unwrap(), Value::Int(1_048_576));
        assert_eq!(i.parse_content("4.0").unwrap(), Value::Int(4));
        assert!(i.parse_content("4.5").is_err());
    }

    #[test]
    fn content_validation_whitelist() {
        let v = Variable::new("fs", VarKind::Parameter, DataType::Text)
            .with_valid(&["ufs", "nfs", "pvfs", "unknown"]);
        assert_eq!(v.parse_content("ufs").unwrap(), Value::Text("ufs".into()));
        assert!(v.parse_content("ext3").is_err());
    }

    #[test]
    fn timestamp_content_both_formats() {
        let v = Variable::new("date_run", VarKind::Parameter, DataType::Timestamp);
        let iso = v.parse_content("2004-11-23 18:30:30").unwrap();
        let ctime = v.parse_content("Tue Nov 23 18:30:30 2004").unwrap();
        assert_eq!(iso, ctime);
    }

    #[test]
    fn bool_content() {
        let v = Variable::new("valid", VarKind::ResultValue, DataType::Bool);
        assert_eq!(v.parse_content("yes").unwrap(), Value::Bool(true));
        assert_eq!(v.parse_content("OFF").unwrap(), Value::Bool(false));
        assert!(v.parse_content("maybe").is_err());
    }

    #[test]
    fn definition_evolution() {
        let mut def = ExperimentDef::new(Meta::default(), "joachim");
        def.add_variable(float_var("bw").once()).unwrap();
        assert!(def.add_variable(float_var("bw")).is_err()); // duplicate
        assert!(def.add_variable(float_var("not valid!")).is_err()); // bad name

        let mut v2 = float_var("bw");
        v2.synopsis = "bandwidth".into();
        def.modify_variable(v2).unwrap();
        assert_eq!(def.variable("bw").unwrap().synopsis, "bandwidth");

        def.remove_variable("bw").unwrap();
        assert!(def.remove_variable("bw").is_err());
    }

    #[test]
    fn occurrence_filter() {
        let mut def = ExperimentDef::new(Meta::default(), "a");
        def.add_variable(float_var("a").once()).unwrap();
        def.add_variable(float_var("b")).unwrap();
        assert_eq!(def.variables_with(Occurrence::Once).count(), 1);
        assert_eq!(def.variables_with(Occurrence::Multiple).count(), 1);
    }

    #[test]
    fn access_control_hierarchy() {
        let mut def = ExperimentDef::new(Meta::default(), "admin1");
        def.grant("alice", AccessLevel::Input);
        def.grant("bob", AccessLevel::Query);

        def.check_access("admin1", AccessLevel::Admin).unwrap();
        def.check_access("alice", AccessLevel::Query).unwrap();
        def.check_access("alice", AccessLevel::Input).unwrap();
        assert!(def.check_access("alice", AccessLevel::Admin).is_err());
        assert!(def.check_access("bob", AccessLevel::Input).is_err());
        assert!(def.check_access("eve", AccessLevel::Query).is_err());
    }

    #[test]
    fn revocation_rules() {
        let mut def = ExperimentDef::new(Meta::default(), "admin1");
        def.grant("alice", AccessLevel::Query);
        def.revoke("alice").unwrap();
        assert!(def.revoke("alice").is_err());
        // The last admin cannot be removed.
        assert!(def.revoke("admin1").is_err());
        // With a second admin it works.
        def.grant("admin2", AccessLevel::Admin);
        def.revoke("admin1").unwrap();
    }

    #[test]
    fn grant_updates_existing() {
        let mut def = ExperimentDef::new(Meta::default(), "a");
        def.grant("x", AccessLevel::Query);
        def.grant("x", AccessLevel::Input);
        assert_eq!(def.users.iter().filter(|(u, _)| u == "x").count(), 1);
        def.check_access("x", AccessLevel::Input).unwrap();
    }

    #[test]
    fn identifier_rules() {
        assert!(is_identifier("S_chunk"));
        assert!(is_identifier("_x9"));
        assert!(!is_identifier("9x"));
        assert!(!is_identifier("a-b"));
        assert!(!is_identifier(""));
    }

    #[test]
    fn default_must_fit_type() {
        let mut def = ExperimentDef::new(Meta::default(), "a");
        let bad = Variable::new("n", VarKind::Parameter, DataType::Int)
            .with_default(Value::Text("abc".into()));
        assert!(def.add_variable(bad).is_err());
        let ok = Variable::new("n", VarKind::Parameter, DataType::Int)
            .with_default(Value::Text("42".into()));
        def.add_variable(ok).unwrap();
    }
}
