//! Run-data sharding across the simulated cluster (paper Fig. 3 at data
//! scale).
//!
//! When an [`ExperimentDb`](super::ExperimentDb) is attached to a
//! [`Cluster`], each per-run data table (`pb_rundata_<id>`) migrates to the
//! node a [`ShardMap`] deterministically assigns to the run id. The
//! frontend node (index 0) keeps the run index (`pb_runs`), all metadata
//! tables, and the shard map itself — persisted as `pb_shards(run_id,
//! node)` so placements survive re-attachment and stay stable when the
//! cluster grows.
//!
//! The query layer (`core::query::exec`) consults this context to decide
//! where a run's data lives: pushable aggregations run *on the owning
//! node* and ship only reduced partials over the simulated link, while
//! everything else falls back to fetching the remote rows to the frontend
//! (both charged to the cluster's [`TransferStats`](sqldb::cluster::TransferStats)).

use sqldb::cluster::{Cluster, ShardMap};
use sqldb::{Engine, Replicator};
use std::sync::Arc;

/// The sharding context of an experiment database: the attached cluster
/// plus the run-id → node map, and — when replication is enabled — the
/// [`Replicator`] that ships each primary's WAL frames to its replicas
/// and routes reads across them. Handed out as an `Arc` by
/// [`ExperimentDb::sharding`](super::ExperimentDb::sharding).
pub struct Sharding {
    cluster: Arc<Cluster>,
    map: ShardMap,
    repl: Option<Arc<Replicator>>,
}

impl Sharding {
    /// New context over `cluster` with placements from `map`.
    pub(crate) fn new(cluster: Arc<Cluster>, map: ShardMap) -> Self {
        Sharding {
            cluster,
            map,
            repl: None,
        }
    }

    /// New replicated context: `repl` ships WAL frames and routes reads.
    pub(crate) fn with_replication(
        cluster: Arc<Cluster>,
        map: ShardMap,
        repl: Arc<Replicator>,
    ) -> Self {
        Sharding {
            cluster,
            map,
            repl: Some(repl),
        }
    }

    /// The replication controller, when `--replicas` > 0.
    pub fn replicator(&self) -> Option<&Arc<Replicator>> {
        self.repl.as_ref()
    }

    /// The node to *serve a read* of `run_id`'s data: with replication,
    /// round-robin across the owner and its fresh replicas (stale or dead
    /// replicas fall back to the owner); without, the owner itself.
    pub fn read_node_of(&self, run_id: i64) -> usize {
        let owner = self.owner_of(run_id);
        match &self.repl {
            Some(r) => r.read_node_for(owner),
            None => owner,
        }
    }

    /// The attached cluster (for transfer stats and cross-node fetches).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The run-id → node shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The node owning `run_id`'s data table, assigning one deterministically
    /// if the run was never placed.
    pub fn owner_of(&self, run_id: i64) -> usize {
        self.map.place(run_id)
    }

    /// The engine of the node owning `run_id`'s data table.
    pub fn engine_of(&self, run_id: i64) -> &Arc<Engine> {
        &self.cluster.node(self.owner_of(run_id)).engine
    }
}

impl std::fmt::Debug for Sharding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sharding")
            .field("nodes", &self.cluster.len())
            .field("assignments", &self.map.assignments().len())
            .field("replicas", &self.map.replicas())
            .finish()
    }
}
